//! Low-power design study: how does voltage scaling trade off against
//! soft-error rate?
//!
//! This is the scenario the paper's introduction motivates: dynamic power
//! falls quadratically with Vdd, but the SER — especially the
//! proton-induced component — rises steeply, so a low-power design point
//! pays a reliability tax. This example sweeps the supply and prints the
//! power proxy next to the SER for both species.
//!
//! Run with: `cargo run --release --example voltage_scaling`

use finrad::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut config = PipelineConfig::paper_baseline();
    config.variation = Variation::MonteCarlo { samples: 60 };
    config.iterations_per_energy = 5_000;
    config.energy_bins = 8;
    let pipeline = SerPipeline::new(config);

    println!(
        "{:>6}  {:>14}  {:>14}  {:>14}  {:>12}",
        "Vdd", "proton FIT", "alpha FIT", "total FIT", "rel. power"
    );
    let nominal = 0.8f64;
    let mut rows = Vec::new();
    for vdd_v in [0.7, 0.8, 0.9, 1.0, 1.1] {
        let vdd = Voltage::from_volts(vdd_v);
        let table = pipeline.build_pof_table(vdd)?;
        let proton = pipeline.run_with_table(Particle::Proton, vdd, &table);
        let alpha = pipeline.run_with_table(Particle::Alpha, vdd, &table);
        let total = proton.fit_total + alpha.fit_total;
        // CV²f dynamic-power proxy relative to the 0.8 V nominal.
        let power = (vdd_v / nominal).powi(2);
        println!(
            "{vdd_v:>6.2}  {:>14.4e}  {:>14.4e}  {total:>14.4e}  {power:>12.3}",
            proton.fit_total, alpha.fit_total
        );
        rows.push((vdd_v, total, power));
    }

    // The reliability tax of the lowest-power point.
    let (lo_v, lo_fit, lo_p) = rows[0];
    let (hi_v, hi_fit, hi_p) = rows[rows.len() - 1];
    println!();
    println!(
        "dropping {hi_v} V -> {lo_v} V saves {:.0}% dynamic power but multiplies SER by {:.1}x",
        100.0 * (1.0 - lo_p / hi_p),
        lo_fit / hi_fit
    );
    Ok(())
}
