//! Campaign service smoke: run the supervised job-queue daemon in-process,
//! submit the same campaign twice (the second is served from the result
//! cache without re-invoking SPICE), and print the supervision metrics.
//!
//! Run with: `cargo run --release --example campaign_service`
//!
//! With the fault-injection feature the demo also exercises the retry
//! envelope — one bin panics twice and is recovered on its third attempt,
//! leaving the FIT bits untouched:
//! `cargo run --release --features fault-injection --example campaign_service`

use finrad::core::campaign::CampaignConfig;
use finrad::prelude::*;
use finrad_observe::keys;
use std::time::Duration;

fn campaign() -> CampaignConfig {
    let mut pipeline = PipelineConfig::smoke_test();
    pipeline.iterations_per_energy = 2_000;
    CampaignConfig::new(pipeline, Particle::Alpha, Voltage::from_volts(0.8))
}

fn main() {
    let recorder = finrad_observe::install_in_memory().expect("first install");

    let service = CampaignService::start(ServiceConfig {
        workers: 4,
        max_retries: 2,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        job_deadline: Some(Duration::from_secs(120)),
    });

    let mut cfg = campaign();
    #[cfg(feature = "fault-injection")]
    {
        cfg.fault_plan.panic_bins = vec![(2, 2)];
        println!("fault-injection: bin 2 will panic twice before succeeding");
    }

    println!("submitting the campaign to a 4-worker service...");
    let first = service.submit(cfg.clone());
    match service.wait(first) {
        Ok(report) => println!(
            "  {first}: SER = {:.3e} FIT, coverage complete = {}",
            report.fit.total,
            report.coverage.is_complete()
        ),
        Err(e) => println!("  {first} failed: {e}"),
    }

    println!("resubmitting the identical campaign (should be a cache hit)...");
    let second = service.submit(cfg);
    match service.wait(second) {
        Ok(report) => println!("  {second}: SER = {:.3e} FIT", report.fit.total),
        Err(e) => println!("  {second} failed: {e}"),
    }

    for letter in service.dead_letters() {
        println!(
            "  dead letter: {} bin {} after {} attempts: {}",
            letter.job, letter.bin, letter.attempts, letter.error
        );
    }
    service.drain();

    let snap = recorder.snapshot();
    println!("supervision metrics:");
    for key in [
        keys::SERVICE_JOBS_SUBMITTED,
        keys::SERVICE_JOBS_COMPLETED,
        keys::SERVICE_JOBS_FAILED,
        keys::SERVICE_CACHE_HITS,
        keys::SERVICE_CACHE_MISSES,
        keys::SERVICE_BIN_RETRIES,
        keys::SERVICE_BINS_QUARANTINED,
        keys::SERVICE_QUEUE_STEALS,
    ] {
        println!("  {key:<32} {}", snap.counter(key));
    }
}
