//! Device-level study: charged-particle transport through a single fin.
//!
//! Exercises the Geant4-substitute layer on its own: stopping-power curves
//! for protons and alphas in silicon, CSDA ranges, the paper's Eq. 1/2
//! timescale separation, and the electron–hole pair LUT of Fig. 4.
//!
//! Run with: `cargo run --release --example particle_transport`

use finrad::prelude::*;
use finrad::transport::timing;
use finrad_numerics::rng::Xoshiro256pp;

fn main() {
    let model = StoppingModel::silicon();

    println!("## Electronic stopping power of silicon, keV/um");
    println!("{:>10}  {:>10}  {:>10}", "E (MeV)", "proton", "alpha");
    for e_mev in [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0] {
        let e = Energy::from_mev(e_mev);
        println!(
            "{e_mev:>10.1}  {:>10.2}  {:>10.2}",
            model.stopping(Particle::Proton, e).kev_per_um(),
            model.stopping(Particle::Alpha, e).kev_per_um()
        );
    }

    println!();
    println!("## CSDA ranges in silicon");
    for (p, e_mev) in [(Particle::Alpha, 5.0), (Particle::Proton, 1.0)] {
        let r = model.csda_range(p, Energy::from_mev(e_mev));
        println!("  {e_mev} MeV {p}: {:.1} um", r.micrometers());
    }

    println!();
    println!("## Timescales (paper Eqs. 1-2)");
    let fin = FinGeometry::paper_14nm();
    let tau = timing::transit_time(fin.length, Voltage::from_volts(1.0));
    println!(
        "  carrier transit time tau at 1 V: {:.1} fs",
        tau.femtoseconds()
    );
    for (p, e_mev) in [(Particle::Alpha, 5.0), (Particle::Proton, 5.0)] {
        let tp = timing::passage_time(p, Energy::from_mev(e_mev), fin.width);
        println!(
            "  {e_mev} MeV {p} passage time through the fin: {:.3} fs",
            tp.femtoseconds()
        );
    }
    println!("  tau >> tau_p justifies the instantaneous-generation pulse model");

    println!();
    println!("## Electron-hole pair LUT (Fig. 4 kernel, 5000 traversals/point)");
    let sim = FinTraversal::paper_default();
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    for particle in Particle::ALL {
        let lut = EhpLut::build(
            &sim,
            particle,
            Energy::from_mev(0.1),
            Energy::from_mev(100.0),
            7,
            5_000,
            &mut rng,
        );
        print!("  {particle:>7}:");
        for row in lut.rows() {
            print!("  {:.2e}@{:.1}MeV", row.mean_pairs, row.energy_mev);
        }
        println!();
    }
}
