//! Neutron-induced SER — exercising the indirect-ionization extension
//! (the paper's declared future work) and the upset-multiplicity spectrum.
//!
//! Run with: `cargo run --release --example neutron_extension`

use finrad::core::array::{DataPattern, MemoryArray};
use finrad::core::neutron::{NeutronSimulator, NeutronVolume};
use finrad::prelude::*;
use finrad::transport::neutron::NeutronInteraction;

fn main() -> Result<(), CoreError> {
    let tech = Technology::soi_finfet_14nm();
    let vdd = Voltage::from_volts(0.8);

    // Circuit level once (shared with the direct-ionization flow).
    let mut cfg = PipelineConfig::paper_baseline();
    cfg.variation = Variation::MonteCarlo { samples: 60 };
    cfg.iterations_per_energy = 5_000;
    let pipeline = SerPipeline::new(cfg);
    let table = pipeline.build_pof_table(vdd)?;

    // Neutron engine over the same array.
    let array = MemoryArray::build(&tech, 9, 9, DataPattern::Checkerboard);
    let interaction = NeutronInteraction::silicon();
    println!(
        "neutron mean free path at 100 MeV: {:.1} cm",
        interaction
            .mean_free_path(Energy::from_mev(100.0))
            .centimeters()
    );
    let sim = NeutronSimulator::new(&array, interaction, &table, NeutronVolume::default());
    let (fit, bins) = sim.ser(&NeutronSpectrum::sea_level(), 6, 20_000, 17);

    println!();
    println!("per-energy neutron POF (importance-weighted per history):");
    for b in &bins {
        println!(
            "  {:>8.1} MeV: POF = {:.3e}",
            b.spectrum.energy.mev(),
            b.pof_total
        );
    }
    println!(
        "neutron SER at 0.8 V: {:.3e} FIT over a {:.2} um^2 collection area",
        fit.total,
        sim.collection_area().square_micrometers()
    );

    // Context against direct ionization.
    let alpha = pipeline.run_with_table(Particle::Alpha, vdd, &table);
    println!(
        "alpha SER (same array, same table): {:.3e} FIT — SOI suppresses the neutron path by ~{:.0}x",
        alpha.fit_total,
        alpha.fit_total / fit.total.max(1e-300)
    );
    Ok(())
}
