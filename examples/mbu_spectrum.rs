//! Upset-multiplicity spectrum: beyond the paper's single MBU/SEU number,
//! the full distribution of 1-bit / 2-bit / 3-bit / … upsets per particle,
//! computed with the exact Poisson-binomial combination of per-cell flip
//! probabilities. This is the quantity an ECC architect needs (SECDED
//! covers 1-bit; interleaving distance is set by the multi-bit tail).
//!
//! Run with: `cargo run --release --example mbu_spectrum`

use finrad::core::array::{DataPattern, MemoryArray};
use finrad::core::strike::{DepositMode, DirectionLaw, FlipModel, StrikeSimulator};
use finrad::prelude::*;

fn main() -> Result<(), CoreError> {
    let tech = Technology::soi_finfet_14nm();
    let vdd = Voltage::from_volts(0.7); // worst case

    let mut cfg = PipelineConfig::paper_baseline();
    cfg.variation = Variation::MonteCarlo { samples: 60 };
    let pipeline = SerPipeline::new(cfg);
    let table = pipeline.build_pof_table(vdd)?;

    let array = MemoryArray::build(&tech, 9, 9, DataPattern::Checkerboard);
    let sim = StrikeSimulator::new(
        &array,
        FinTraversal::paper_default(),
        &table,
        DirectionLaw::IsotropicDown, // package alphas: isotropic arrival
        DepositMode::ChordExact,
        FlipModel::Expected,
        None,
    );

    println!("## Upset multiplicity per 2 MeV alpha hit (9x9 array, 0.7 V)");
    let pmf = sim.estimate_multiplicity(Particle::Alpha, Energy::from_mev(2.0), 60_000, 4, 7);
    let p_any: f64 = pmf[1..].iter().sum();
    println!(
        "{:>8}  {:>14}  {:>16}",
        "k bits", "P(k | hit)", "share of upsets"
    );
    for (k, &p) in pmf.iter().enumerate().skip(1) {
        let label = if k == pmf.len() - 1 {
            format!(">={k}")
        } else {
            format!("{k}")
        };
        println!(
            "{label:>8}  {p:>14.4e}  {:>15.2}%",
            100.0 * p / p_any.max(1e-300)
        );
    }
    println!();
    println!(
        "# SECDED-per-word leaves the >=2-bit tail ({:.3}% of upsets) to interleaving",
        100.0 * pmf[2..].iter().sum::<f64>() / p_any.max(1e-300)
    );
    Ok(())
}
