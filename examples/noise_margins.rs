//! Static noise margins of the 6T cell across supply voltages — the
//! static counterpart of the paper's "SER is higher at lower Vdd": the
//! same shrinking restoring strength shows up as a shrinking hold SNM.
//!
//! Run with: `cargo run --release --example noise_margins`

use finrad::prelude::*;
use finrad::sram::snm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::soi_finfet_14nm();

    println!("## Static noise margins vs Vdd");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>12}",
        "Vdd", "hold (mV)", "read (mV)", "hold/Vdd (%)"
    );
    for vdd_v in [0.7, 0.8, 0.9, 1.0, 1.1] {
        let vdd = Voltage::from_volts(vdd_v);
        let hold = snm::hold_snm(&tech, vdd, 81)?;
        let read = snm::read_snm(&tech, vdd, 81)?;
        println!(
            "{vdd_v:>6.2}  {:>12.1}  {:>12.1}  {:>12.1}",
            hold.snm.millivolts(),
            read.snm.millivolts(),
            100.0 * hold.snm.volts() / vdd_v
        );
    }

    println!();
    println!("## Butterfly curve at 0.8 V (inverter VTC, 17 samples)");
    let r = snm::hold_snm(&tech, Voltage::from_volts(0.8), 17)?;
    println!("{:>8}  {:>8}", "v_in", "v_out");
    for (vin, vout) in &r.vtc {
        println!("{vin:>8.3}  {vout:>8.3}");
    }

    println!();
    println!("# the same weakening feedback that lowers SNM at low Vdd lowers the");
    println!("# critical charge, which is why the paper's Fig. 9 SER rises there");
    Ok(())
}
