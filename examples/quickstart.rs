//! Quick start: estimate the soft-error rate of a 9×9 SRAM array in
//! 14 nm SOI FinFET technology for both ground-level particle species.
//!
//! Run with: `cargo run --release --example quickstart`

use finrad::prelude::*;

fn main() -> Result<(), CoreError> {
    // The paper's baseline configuration, scaled down for a seconds-scale
    // demo (characterization Monte Carlo and strike iterations are the
    // expensive knobs).
    let mut config = PipelineConfig::paper_baseline();
    config.variation = Variation::MonteCarlo { samples: 60 };
    config.iterations_per_energy = 5_000;
    config.energy_bins = 8;

    let pipeline = SerPipeline::new(config);
    let vdd = Voltage::from_volts(0.8);

    println!("characterizing the 6T cell at {vdd} (this is the SPICE-level step)...");
    let table = pipeline.build_pof_table(vdd)?;
    println!(
        "  critical charge (nominal-median, single strike on the pull-down): {:.4} fC",
        table
            .curve(StrikeCombo::single(StrikeTarget::I1))
            .expect("characterized")
            .median_qcrit()
            .femtocoulombs()
    );

    for particle in Particle::ALL {
        let report = pipeline.run_with_table(particle, vdd, &table);
        println!(
            "{particle:>7}: SER = {:.3e} FIT  (SEU {:.3e}, MBU {:.3e}, MBU/SEU {:.3}%)",
            report.fit_total,
            report.fit_seu,
            report.fit_mbu,
            report.mbu_to_seu_percent()
        );
    }
    Ok(())
}
