//! Circuit-level study: critical charge of the 6T cell.
//!
//! Reproduces the paper's Section 4 observations on a single cell:
//!
//! * Q_crit per strike target (I1/I2/I3) and for combined strikes;
//! * Q_crit vs supply voltage (why low-Vdd operation is soft-error prone);
//! * the pulse-shape study — equal charge in a rectangular vs triangular
//!   pulse, and a 10× wider pulse, all give (nearly) the same Q_crit;
//! * the spread of Q_crit under threshold-voltage variation.
//!
//! Run with: `cargo run --release --example critical_charge`

use finrad::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::soi_finfet_14nm();
    let ch = CellCharacterizer::new(tech.clone(), CharacterizeOptions::default());
    let nominal = HashMap::new();

    println!("## Q_crit per strike target at Vdd = 0.8 V");
    let vdd = Voltage::from_volts(0.8);
    for target in StrikeTarget::ALL {
        let q = ch.critical_charge(vdd, StrikeCombo::single(target), &nominal)?;
        println!(
            "  {target}: {:.4} fC ({:.0} electrons)",
            q.femtocoulombs(),
            q.electrons()
        );
    }
    let q_all = ch.critical_charge(vdd, StrikeCombo::new(&StrikeTarget::ALL), &nominal)?;
    println!(
        "  {{I1+I2+I3}} (total, split equally): {:.4} fC",
        q_all.femtocoulombs()
    );

    println!();
    println!("## Q_crit vs supply voltage (single strike on I1)");
    for vdd_v in [0.7, 0.8, 0.9, 1.0, 1.1] {
        let q = ch.critical_charge(
            Voltage::from_volts(vdd_v),
            StrikeCombo::single(StrikeTarget::I1),
            &nominal,
        )?;
        println!("  {vdd_v:.1} V: {:.4} fC", q.femtocoulombs());
    }

    println!();
    println!("## Pulse-shape study (paper Section 4)");
    for (label, options) in [
        ("rectangular, tau", CharacterizeOptions::default()),
        (
            "rectangular, 10x tau",
            CharacterizeOptions {
                pulse_width: Some(1.6e-13),
                ..CharacterizeOptions::default()
            },
        ),
        (
            "triangular, tau",
            CharacterizeOptions {
                shape: PulseShape::Triangular,
                ..CharacterizeOptions::default()
            },
        ),
    ] {
        let ch2 = CellCharacterizer::new(tech.clone(), options);
        let q = ch2.critical_charge(vdd, StrikeCombo::single(StrikeTarget::I1), &nominal)?;
        println!("  {label:<22}: {:.4} fC", q.femtocoulombs());
    }

    println!();
    println!("## Q_crit spread under Vth variation (60-sample MC)");
    let curve = ch.characterize_combo(
        vdd,
        StrikeCombo::single(StrikeTarget::I1),
        Variation::MonteCarlo { samples: 60 },
        42,
    )?;
    println!(
        "  min {:.4} fC, median {:.4} fC (weak cells dominate the array SER)",
        curve.min_qcrit().femtocoulombs(),
        curve.median_qcrit().femtocoulombs()
    );
    Ok(())
}
