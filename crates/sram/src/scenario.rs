//! Sensitive-transistor analysis and strike scenarios.
//!
//! "The sensitive transistors to radiation in an SRAM cell are the ones
//! which are in OFF state with V_ds = V_dd" (paper, Section 4, Fig. 5(a)).
//! For a cell holding `Q = 1` these are:
//!
//! * **I1** — the left pull-down NMOS (OFF, drain at Q = V_dd); a strike
//!   collects charge that pulls Q low.
//! * **I2** — the right pull-up PMOS (OFF, |V_ds| = V_dd); a strike pulls
//!   QB high.
//! * **I3** — the right pass NMOS (OFF, BLB at V_dd, QB at 0); a strike
//!   pulls QB high from the bit line.
//!
//! All three disturb the cell toward the *same* flip (`1 → 0`), so their
//! charges act constructively. For `Q = 0` the mirrored devices are
//! sensitive.

use crate::cell::{CellState, SramCell, TransistorRole};
use finrad_spice::{NodeId, SourceWaveform};
use finrad_units::Charge;
use std::fmt;

/// Canonical strike injection point, following the paper's Fig. 5(a)
/// labels (defined for a cell holding `Q = 1`; the mapping for `Q = 0`
/// uses the mirrored transistors and is handled by
/// [`StrikeTarget::from_role`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StrikeTarget {
    /// The OFF pull-down on the high node (paper's I1).
    I1,
    /// The OFF pull-up on the low node (paper's I2).
    I2,
    /// The OFF pass gate on the low node (paper's I3).
    I3,
}

impl StrikeTarget {
    /// All targets in a fixed order.
    pub const ALL: [StrikeTarget; 3] = [StrikeTarget::I1, StrikeTarget::I2, StrikeTarget::I3];

    /// The transistor role that realizes this target for a cell in `state`.
    pub fn role(self, state: CellState) -> TransistorRole {
        let canonical = match self {
            StrikeTarget::I1 => TransistorRole::PullDownLeft,
            StrikeTarget::I2 => TransistorRole::PullUpRight,
            StrikeTarget::I3 => TransistorRole::PassRight,
        };
        match state {
            CellState::One => canonical,
            CellState::Zero => canonical.mirrored(),
        }
    }

    /// Maps a struck transistor role to the strike target it realizes for a
    /// cell in `state`, or `None` if that device is not sensitive (it is ON,
    /// or OFF with no drain-source bias).
    pub fn from_role(role: TransistorRole, state: CellState) -> Option<StrikeTarget> {
        StrikeTarget::ALL
            .into_iter()
            .find(|t| t.role(state) == role)
    }

    /// The current-injection terminals for this strike on `cell` in
    /// `state`: conventional current flows `from → to` through the source,
    /// pulling `to` toward `from`'s potential — the drift collection of the
    /// deposited charge across the OFF junction.
    pub fn injection_nodes(self, cell: &SramCell, state: CellState) -> (NodeId, NodeId) {
        let (high, low) = match state {
            CellState::One => (cell.q(), cell.qb()),
            CellState::Zero => (cell.qb(), cell.q()),
        };
        let blb_side = match state {
            CellState::One => cell.blb(),
            CellState::Zero => cell.bl(),
        };
        match self {
            // OFF NMOS on the high node: collected electrons discharge the
            // high node toward ground.
            StrikeTarget::I1 => (high, SramCell::ground()),
            // OFF PMOS on the low node: collected charge pulls the low node
            // up toward VDD.
            StrikeTarget::I2 => (cell.vdd_node(), low),
            // OFF pass device: the precharged bit line pulls the low node up.
            StrikeTarget::I3 => (blb_side, low),
        }
    }
}

impl SramCell {
    /// The ground node (re-exported here for injection bookkeeping).
    pub fn ground() -> NodeId {
        finrad_spice::Circuit::GROUND
    }

    /// The transistors sensitive to particle strikes in `state`: OFF devices
    /// with |V_ds| = V_dd (paper Fig. 5(a)).
    pub fn sensitive_transistors(&self, state: CellState) -> Vec<TransistorRole> {
        StrikeTarget::ALL.iter().map(|t| t.role(state)).collect()
    }
}

impl fmt::Display for StrikeTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrikeTarget::I1 => "I1",
            StrikeTarget::I2 => "I2",
            StrikeTarget::I3 => "I3",
        };
        f.write_str(s)
    }
}

/// A concrete strike: charge injected at each target. Used to build the
/// current sources of one transient simulation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrikeEvent {
    /// Charge per struck target, coulombs.
    pub charges: Vec<(StrikeTarget, f64)>,
    /// Pulse start time, seconds.
    pub t_start: f64,
    /// Pulse width (the transit time τ), seconds.
    pub width: f64,
    /// Pulse shape (rectangular per the paper's model; triangular for the
    /// pulse-shape study).
    pub shape: finrad_spice::PulseShape,
}

impl StrikeEvent {
    /// Builds a rectangular strike with the given `(target, charge)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive, `charges` is empty, or a
    /// target repeats.
    pub fn rectangular(charges: Vec<(StrikeTarget, f64)>, t_start: f64, width: f64) -> Self {
        Self::with_shape(
            charges,
            t_start,
            width,
            finrad_spice::PulseShape::Rectangular,
        )
    }

    /// Builds a strike with an explicit pulse shape.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StrikeEvent::rectangular`].
    pub fn with_shape(
        charges: Vec<(StrikeTarget, f64)>,
        t_start: f64,
        width: f64,
        shape: finrad_spice::PulseShape,
    ) -> Self {
        assert!(width > 0.0, "pulse width must be positive");
        assert!(!charges.is_empty(), "strike needs at least one target");
        for (i, (t, _)) in charges.iter().enumerate() {
            assert!(
                charges[i + 1..].iter().all(|(u, _)| u != t),
                "duplicate strike target {t}"
            );
        }
        Self {
            charges,
            t_start,
            width,
            shape,
        }
    }

    /// Adds this strike's current sources to `cell` (in `state`).
    pub fn inject(&self, cell: &mut SramCell, state: CellState) {
        for &(target, charge) in &self.charges {
            let (from, to) = target.injection_nodes(cell, state);
            let wf = match self.shape {
                finrad_spice::PulseShape::Rectangular => SourceWaveform::rectangular_charge(
                    Charge::from_coulombs(charge),
                    self.t_start,
                    self.width,
                ),
                finrad_spice::PulseShape::Triangular => SourceWaveform::triangular_charge(
                    Charge::from_coulombs(charge),
                    self.t_start,
                    self.width,
                ),
            };
            cell.circuit_mut().add_isource(from, to, wf);
        }
    }

    /// Total injected charge.
    pub fn total_charge(&self) -> Charge {
        Charge::from_coulombs(self.charges.iter().map(|(_, q)| q).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_finfet::Technology;
    use finrad_units::Voltage;

    fn cell() -> SramCell {
        SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8))
    }

    #[test]
    fn paper_fig5a_sensitive_set_for_one() {
        let c = cell();
        let s = c.sensitive_transistors(CellState::One);
        assert_eq!(
            s,
            vec![
                TransistorRole::PullDownLeft,
                TransistorRole::PullUpRight,
                TransistorRole::PassRight
            ]
        );
    }

    #[test]
    fn sensitive_set_mirrors_for_zero() {
        let c = cell();
        let s = c.sensitive_transistors(CellState::Zero);
        assert_eq!(
            s,
            vec![
                TransistorRole::PullDownRight,
                TransistorRole::PullUpLeft,
                TransistorRole::PassLeft
            ]
        );
    }

    #[test]
    fn role_round_trips_through_target() {
        for state in [CellState::One, CellState::Zero] {
            for t in StrikeTarget::ALL {
                let role = t.role(state);
                assert_eq!(StrikeTarget::from_role(role, state), Some(t));
            }
            // Non-sensitive roles map to none.
            let on_devices: Vec<TransistorRole> = TransistorRole::ALL
                .into_iter()
                .filter(|r| !StrikeTarget::ALL.iter().any(|t| t.role(state) == *r))
                .collect();
            assert_eq!(on_devices.len(), 3);
            for r in on_devices {
                assert_eq!(StrikeTarget::from_role(r, state), None);
            }
        }
    }

    #[test]
    fn injection_nodes_push_toward_flip() {
        let c = cell();
        // State One: I1 discharges Q; I2 and I3 charge QB.
        let (f1, t1) = StrikeTarget::I1.injection_nodes(&c, CellState::One);
        assert_eq!((f1, t1), (c.q(), SramCell::ground()));
        let (f2, t2) = StrikeTarget::I2.injection_nodes(&c, CellState::One);
        assert_eq!((f2, t2), (c.vdd_node(), c.qb()));
        let (f3, t3) = StrikeTarget::I3.injection_nodes(&c, CellState::One);
        assert_eq!((f3, t3), (c.blb(), c.qb()));
        // State Zero mirrors.
        let (f1z, t1z) = StrikeTarget::I1.injection_nodes(&c, CellState::Zero);
        assert_eq!((f1z, t1z), (c.qb(), SramCell::ground()));
        let (f3z, t3z) = StrikeTarget::I3.injection_nodes(&c, CellState::Zero);
        assert_eq!((f3z, t3z), (c.bl(), c.q()));
    }

    #[test]
    fn strike_event_construction() {
        let ev = StrikeEvent::rectangular(
            vec![(StrikeTarget::I1, 1.0e-16), (StrikeTarget::I2, 2.0e-16)],
            2.0e-15,
            1.3e-14,
        );
        assert!((ev.total_charge().coulombs() - 3.0e-16).abs() < 1e-30);
        let mut c = cell();
        ev.inject(&mut c, CellState::One);
        // Two current sources were added.
        // (Indirectly observable through a successful simulation; here we
        // simply ensure inject did not panic and the netlist still builds.)
        assert!(c.circuit().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate strike target")]
    fn rejects_duplicate_targets() {
        let _ = StrikeEvent::rectangular(
            vec![(StrikeTarget::I1, 1.0e-16), (StrikeTarget::I1, 2.0e-16)],
            0.0,
            1.0e-14,
        );
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn rejects_empty_strike() {
        let _ = StrikeEvent::rectangular(vec![], 0.0, 1.0e-14);
    }
}
