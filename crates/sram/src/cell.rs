//! The 6T SRAM cell netlist.
//!
//! Standard 6T topology: two cross-coupled CMOS inverters (pull-up PMOS
//! `PU`, pull-down NMOS `PD`) holding complementary values on the internal
//! nodes `Q`/`QB`, plus two NMOS pass gates connecting them to the bit
//! lines under word-line control. The soft-error analysis operates in
//! **hold** mode: word line at 0 V, bit lines precharged to V_dd — exactly
//! the condition of the paper's Fig. 5(a).

use finrad_finfet::{FinFet, Polarity, Technology};
use finrad_spice::{Circuit, MosfetId, NodeId};
use finrad_units::Voltage;
use std::collections::HashMap;
use std::fmt;

/// One of the six transistors of the cell, by position.
///
/// "Left" is the side whose internal node is `Q`, "right" the `QB` side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransistorRole {
    /// Left pull-down NMOS (drain on Q, gate on QB).
    PullDownLeft,
    /// Left pull-up PMOS (drain on Q, gate on QB).
    PullUpLeft,
    /// Right pull-down NMOS (drain on QB, gate on Q).
    PullDownRight,
    /// Right pull-up PMOS (drain on QB, gate on Q).
    PullUpRight,
    /// Left pass-gate NMOS (between BL and Q, gate on WL).
    PassLeft,
    /// Right pass-gate NMOS (between BLB and QB, gate on WL).
    PassRight,
}

impl TransistorRole {
    /// All six roles in a fixed order.
    pub const ALL: [TransistorRole; 6] = [
        TransistorRole::PullDownLeft,
        TransistorRole::PullUpLeft,
        TransistorRole::PullDownRight,
        TransistorRole::PullUpRight,
        TransistorRole::PassLeft,
        TransistorRole::PassRight,
    ];

    /// The mirror-image role (left ↔ right).
    pub fn mirrored(self) -> TransistorRole {
        match self {
            TransistorRole::PullDownLeft => TransistorRole::PullDownRight,
            TransistorRole::PullDownRight => TransistorRole::PullDownLeft,
            TransistorRole::PullUpLeft => TransistorRole::PullUpRight,
            TransistorRole::PullUpRight => TransistorRole::PullUpLeft,
            TransistorRole::PassLeft => TransistorRole::PassRight,
            TransistorRole::PassRight => TransistorRole::PassLeft,
        }
    }

    /// Whether this is an NMOS position.
    pub fn is_nmos(self) -> bool {
        !matches!(
            self,
            TransistorRole::PullUpLeft | TransistorRole::PullUpRight
        )
    }
}

impl fmt::Display for TransistorRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransistorRole::PullDownLeft => "PD-L",
            TransistorRole::PullUpLeft => "PU-L",
            TransistorRole::PullDownRight => "PD-R",
            TransistorRole::PullUpRight => "PU-R",
            TransistorRole::PassLeft => "PASS-L",
            TransistorRole::PassRight => "PASS-R",
        };
        f.write_str(s)
    }
}

/// The stored logic value of the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CellState {
    /// `Q = 0`, `QB = V_dd`.
    Zero,
    /// `Q = V_dd`, `QB = 0`.
    One,
}

impl CellState {
    /// The opposite state.
    pub fn flipped(self) -> CellState {
        match self {
            CellState::Zero => CellState::One,
            CellState::One => CellState::Zero,
        }
    }
}

/// A 6T SRAM cell in hold mode, wrapping a solvable [`Circuit`].
///
/// # Examples
///
/// ```
/// use finrad_finfet::Technology;
/// use finrad_sram::{CellState, SramCell};
/// use finrad_units::Voltage;
///
/// let cell = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8));
/// let ic = cell.initial_conditions(CellState::One);
/// assert_eq!(ic[&cell.q()], 0.8);
/// assert_eq!(ic[&cell.qb()], 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SramCell {
    circuit: Circuit,
    vdd_value: Voltage,
    q: NodeId,
    qb: NodeId,
    vdd: NodeId,
    wl: NodeId,
    bl: NodeId,
    blb: NodeId,
    mosfets: HashMap<TransistorRole, MosfetId>,
}

impl SramCell {
    /// Builds the cell netlist for `tech` at supply `vdd`, with the
    /// paper-standard sizing: single-fin devices throughout (the 14 nm
    /// high-density cell of Wang et al. is 1-1-1 fin).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not strictly positive.
    pub fn new(tech: &Technology, vdd: Voltage) -> Self {
        Self::with_fins(tech, vdd, 1, 1, 1)
    }

    /// Builds the cell with the word line held at `wl` instead of 0 V —
    /// `wl = vdd` gives the read-access condition where the pass gates
    /// fight the latch (read-disturb analysis).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not strictly positive.
    pub fn with_wordline(tech: &Technology, vdd: Voltage, wl: Voltage) -> Self {
        let mut cell = Self::with_fins(tech, vdd, 1, 1, 1);
        // Replace the hold-mode WL source value: rebuild is simplest and
        // cheap, but the source list is private; instead stamp the WL via
        // a dedicated constructor path below.
        cell.set_wordline(wl);
        cell
    }

    /// Overrides the word-line source voltage (the last-added source for
    /// the WL node).
    fn set_wordline(&mut self, wl: Voltage) {
        self.circuit.set_vsource_voltage(self.wl, wl.volts());
    }

    /// Builds the cell with explicit (pull-down, pull-up, pass) fin counts,
    /// for sizing/ablation studies.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not strictly positive or any fin count is zero.
    pub fn with_fins(
        tech: &Technology,
        vdd: Voltage,
        pd_fins: u32,
        pu_fins: u32,
        pass_fins: u32,
    ) -> Self {
        assert!(vdd.volts() > 0.0, "vdd must be positive");
        let mut ckt = Circuit::new();
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        let vdd_n = ckt.node("vdd");
        let wl = ckt.node("wl");
        let bl = ckt.node("bl");
        let blb = ckt.node("blb");

        let v = vdd.volts();
        ckt.add_vsource(vdd_n, Circuit::GROUND, v);
        // Hold mode: word line low, bit lines precharged high.
        ckt.add_vsource(wl, Circuit::GROUND, 0.0);
        ckt.add_vsource(bl, Circuit::GROUND, v);
        ckt.add_vsource(blb, Circuit::GROUND, v);

        let nmos = |fins: u32| FinFet::new(tech, Polarity::Nmos, fins);
        let pmos = |fins: u32| FinFet::new(tech, Polarity::Pmos, fins);

        let mut mosfets = HashMap::new();
        // Left inverter: input QB, output Q.
        mosfets.insert(
            TransistorRole::PullDownLeft,
            ckt.add_mosfet(q, qb, Circuit::GROUND, nmos(pd_fins)),
        );
        mosfets.insert(
            TransistorRole::PullUpLeft,
            ckt.add_mosfet(q, qb, vdd_n, pmos(pu_fins)),
        );
        // Right inverter: input Q, output QB.
        mosfets.insert(
            TransistorRole::PullDownRight,
            ckt.add_mosfet(qb, q, Circuit::GROUND, nmos(pd_fins)),
        );
        mosfets.insert(
            TransistorRole::PullUpRight,
            ckt.add_mosfet(qb, q, vdd_n, pmos(pu_fins)),
        );
        // Pass gates.
        mosfets.insert(
            TransistorRole::PassLeft,
            ckt.add_mosfet(bl, wl, q, nmos(pass_fins)),
        );
        mosfets.insert(
            TransistorRole::PassRight,
            ckt.add_mosfet(blb, wl, qb, nmos(pass_fins)),
        );

        Self {
            circuit: ckt,
            vdd_value: vdd,
            q,
            qb,
            vdd: vdd_n,
            wl,
            bl,
            blb,
            mosfets,
        }
    }

    /// The internal node storing the cell value.
    pub fn q(&self) -> NodeId {
        self.q
    }

    /// The complementary internal node.
    pub fn qb(&self) -> NodeId {
        self.qb
    }

    /// The supply node.
    pub fn vdd_node(&self) -> NodeId {
        self.vdd
    }

    /// The word-line node (held at 0 V).
    pub fn wl(&self) -> NodeId {
        self.wl
    }

    /// The bit-line node (precharged to V_dd).
    pub fn bl(&self) -> NodeId {
        self.bl
    }

    /// The complementary bit-line node.
    pub fn blb(&self) -> NodeId {
        self.blb
    }

    /// The supply voltage the cell was built for.
    pub fn vdd(&self) -> Voltage {
        self.vdd_value
    }

    /// The SPICE id of a transistor by role.
    pub fn mosfet_id(&self, role: TransistorRole) -> MosfetId {
        self.mosfets[&role]
    }

    /// Shared access to the underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access to the underlying circuit (e.g. to add strike current
    /// sources or apply per-device ΔVth).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Initial node voltages that place the cell in `state` (used as the
    /// transient initial conditions — the cell is bistable, so the solver
    /// needs to be told which state it holds).
    pub fn initial_conditions(&self, state: CellState) -> HashMap<NodeId, f64> {
        let v = self.vdd_value.volts();
        let (vq, vqb) = match state {
            CellState::One => (v, 0.0),
            CellState::Zero => (0.0, v),
        };
        let mut ic = HashMap::new();
        ic.insert(self.q, vq);
        ic.insert(self.qb, vqb);
        ic.insert(self.vdd, v);
        ic.insert(self.wl, 0.0);
        ic.insert(self.bl, v);
        ic.insert(self.blb, v);
        ic
    }

    /// Decodes the stored state from final node voltages: `One` if
    /// `V(Q) > V(QB)`.
    pub fn decode_state(&self, v_q: f64, v_qb: f64) -> CellState {
        if v_q > v_qb {
            CellState::One
        } else {
            CellState::Zero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_spice::analysis::{self, NewtonOptions, Phase, TimeStepPlan};

    fn cell() -> SramCell {
        SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8))
    }

    #[test]
    fn roles_and_mirroring() {
        assert_eq!(TransistorRole::ALL.len(), 6);
        for r in TransistorRole::ALL {
            assert_eq!(r.mirrored().mirrored(), r);
        }
        assert!(TransistorRole::PullDownLeft.is_nmos());
        assert!(!TransistorRole::PullUpRight.is_nmos());
        assert!(TransistorRole::PassLeft.is_nmos());
    }

    #[test]
    fn state_flip() {
        assert_eq!(CellState::One.flipped(), CellState::Zero);
        assert_eq!(CellState::Zero.flipped().flipped(), CellState::Zero);
    }

    #[test]
    fn both_states_are_stable_in_hold() {
        // Simulate 20 ps from each state with no strike: state must hold.
        let cell = cell();
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 2.0e-11,
            dt: 1.0e-13,
        }]);
        let opts = NewtonOptions::default();
        for state in [CellState::One, CellState::Zero] {
            let ic = cell.initial_conditions(state);
            let res =
                analysis::transient(cell.circuit(), &plan, &ic, &[cell.q(), cell.qb()], &opts)
                    .unwrap();
            let vq = res.final_voltage(cell.q());
            let vqb = res.final_voltage(cell.qb());
            assert_eq!(cell.decode_state(vq, vqb), state, "state {state:?} drifted");
            // Levels near the rails.
            let (hi, lo) = if state == CellState::One {
                (vq, vqb)
            } else {
                (vqb, vq)
            };
            assert!(hi > 0.7, "high node {hi}");
            assert!(lo < 0.1, "low node {lo}");
        }
    }

    #[test]
    fn dc_operating_point_respects_guess() {
        let cell = cell();
        let opts = NewtonOptions::default();
        let guess = cell.initial_conditions(CellState::One);
        let op = analysis::dc_operating_point_from(cell.circuit(), &opts, &guess).unwrap();
        assert!(op.voltage(cell.q()) > 0.7);
        assert!(op.voltage(cell.qb()) < 0.1);
    }

    #[test]
    fn accessors() {
        let cell = cell();
        assert_eq!(cell.vdd().volts(), 0.8);
        assert_ne!(cell.q(), cell.qb());
        let ic = cell.initial_conditions(CellState::Zero);
        assert_eq!(ic[&cell.q()], 0.0);
        assert_eq!(ic[&cell.bl()], 0.8);
        assert_eq!(ic[&cell.wl()], 0.0);
        let _ = cell.mosfet_id(TransistorRole::PassRight);
        assert_eq!(cell.decode_state(0.8, 0.0), CellState::One);
        assert_eq!(cell.decode_state(0.1, 0.7), CellState::Zero);
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn rejects_zero_vdd() {
        let _ = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::ZERO);
    }
}
