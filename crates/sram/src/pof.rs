//! Probability-Of-Failure look-up tables.
//!
//! The paper stores POF "for different supply voltages, current pulse
//! magnitudes, and all possible combinations of current pulses (for I1, I2,
//! I3 and/or any combination)" (Section 4). Because the cell flip is
//! monotone in injected charge, we store each (V_dd, combination) entry as
//! the empirical distribution of the **critical charge** over the variation
//! Monte Carlo: `POF(q)` is then simply the fraction of sampled cells whose
//! critical charge is below `q`. This is equivalent to the paper's
//! per-magnitude tables but smoother and cheaper to build.

use crate::scenario::StrikeTarget;
use finrad_units::{Charge, Voltage};
use std::collections::BTreeMap;
use std::fmt;

/// A non-empty subset of `{I1, I2, I3}` — which sensitive transistors were
/// struck together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrikeCombo(u8);

impl StrikeCombo {
    /// Builds a combo from targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: &[StrikeTarget]) -> Self {
        assert!(
            !targets.is_empty(),
            "combo must contain at least one target"
        );
        let mut bits = 0u8;
        for t in targets {
            bits |= 1
                << match t {
                    StrikeTarget::I1 => 0,
                    StrikeTarget::I2 => 1,
                    StrikeTarget::I3 => 2,
                };
        }
        Self(bits)
    }

    /// A single-target combo.
    pub fn single(target: StrikeTarget) -> Self {
        Self::new(&[target])
    }

    /// All seven non-empty combinations, in ascending bitmask order.
    pub fn all() -> Vec<StrikeCombo> {
        (1u8..=7).map(StrikeCombo).collect()
    }

    /// The targets in this combo.
    pub fn targets(self) -> Vec<StrikeTarget> {
        let mut out = Vec::new();
        if self.0 & 1 != 0 {
            out.push(StrikeTarget::I1);
        }
        if self.0 & 2 != 0 {
            out.push(StrikeTarget::I2);
        }
        if self.0 & 4 != 0 {
            out.push(StrikeTarget::I3);
        }
        out
    }

    /// Whether the combo contains `target`.
    pub fn contains(self, target: StrikeTarget) -> bool {
        self.targets().contains(&target)
    }

    /// Number of struck targets.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Always false (combos are non-empty by construction).
    pub fn is_empty(self) -> bool {
        false
    }

    /// Splits a total charge equally across the combo's targets — the
    /// convention under which the POF tables are built and queried.
    pub fn split_charge(self, total: Charge) -> Vec<(StrikeTarget, f64)> {
        let targets = self.targets();
        let per = total.coulombs() / targets.len() as f64;
        targets.into_iter().map(|t| (t, per)).collect()
    }
}

impl fmt::Display for StrikeCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.targets().iter().map(|t| t.to_string()).collect();
        write!(f, "{{{}}}", names.join("+"))
    }
}

/// POF as a function of injected charge for one (V_dd, combo) point:
/// the empirical CDF of the critical charge across the characterization
/// Monte Carlo.
///
/// # Examples
///
/// ```
/// use finrad_sram::PofCurve;
/// use finrad_units::Charge;
///
/// // Three sampled cells with critical charges 10/20/30 aC.
/// let curve = PofCurve::from_critical_charges(vec![1.0e-17, 2.0e-17, 3.0e-17]);
/// assert_eq!(curve.pof(Charge::from_coulombs(0.5e-17)), 0.0);
/// assert!((curve.pof(Charge::from_coulombs(2.5e-17)) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(curve.pof(Charge::from_coulombs(9.0e-17)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PofCurve {
    /// Sorted critical-charge samples, coulombs.
    qcrit_sorted: Vec<f64>,
}

impl PofCurve {
    /// Builds a curve from critical-charge samples (coulombs).
    ///
    /// A cell that never flipped within the characterizer's search range is
    /// recorded with the search's upper bound (a *saturated* sample), which
    /// keeps the curve finite while leaving its POF at 0 for every
    /// physically reachable charge.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite or negative
    /// values.
    pub fn from_critical_charges(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples.iter().all(|q| q.is_finite() && *q >= 0.0),
            "critical charges must be finite and non-negative"
        );
        samples.sort_by(|a, b| a.total_cmp(b));
        Self {
            qcrit_sorted: samples,
        }
    }

    /// POF for an injected total charge `q`: the fraction of sampled cells
    /// with critical charge ≤ `q`.
    ///
    /// The result is a probability and is clamped (and, in debug builds,
    /// asserted) to lie in `[0, 1]` — downstream layers combine POFs
    /// multiplicatively and a value outside the unit interval would corrupt
    /// every array-level estimate silently.
    pub fn pof(&self, q: Charge) -> f64 {
        let qc = q.coulombs();
        debug_assert!(qc.is_finite(), "POF queried with non-finite charge {qc}");
        let n = self.qcrit_sorted.len();
        let below = self.qcrit_sorted.partition_point(|&sample| sample <= qc);
        let p = below as f64 / n as f64;
        debug_assert!((0.0..=1.0).contains(&p), "POF {p} outside [0, 1]");
        p.clamp(0.0, 1.0)
    }

    /// Number of Monte-Carlo samples behind the curve.
    pub fn sample_count(&self) -> usize {
        self.qcrit_sorted.len()
    }

    /// The sorted critical-charge samples (coulombs). Exposed so callers
    /// can compute expectations over the critical-charge distribution —
    /// e.g. the conditional-expectation flip probability in `finrad-core`,
    /// `P(flip) = mean_i P(Q_collected ≥ qcrit_i)`.
    pub fn qcrit_samples(&self) -> &[f64] {
        &self.qcrit_sorted
    }

    /// The median critical charge.
    pub fn median_qcrit(&self) -> Charge {
        Charge::from_coulombs(self.qcrit_sorted[self.qcrit_sorted.len() / 2])
    }

    /// The smallest sampled critical charge — the worst-case cell.
    pub fn min_qcrit(&self) -> Charge {
        Charge::from_coulombs(self.qcrit_sorted[0])
    }
}

/// The POF LUT for one supply voltage: a curve per strike combination.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PofTable {
    vdd: Voltage,
    curves: BTreeMap<StrikeCombo, PofCurve>,
}

impl PofTable {
    /// Assembles a table from per-combo curves.
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty.
    pub fn new(vdd: Voltage, curves: BTreeMap<StrikeCombo, PofCurve>) -> Self {
        assert!(!curves.is_empty(), "POF table needs at least one combo");
        Self { vdd, curves }
    }

    /// The supply voltage the table was characterized at.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// POF for `combo` at total injected charge `q`, or `None` if the
    /// combo was never characterized. Callers decide how loudly a miss
    /// fails; the array-level simulators feed the miss into their NaN
    /// quarantine so it is counted instead of crashing a campaign.
    pub fn pof(&self, combo: StrikeCombo, q: Charge) -> Option<f64> {
        Some(self.curves.get(&combo)?.pof(q))
    }

    /// The curve for `combo`, if characterized.
    pub fn curve(&self, combo: StrikeCombo) -> Option<&PofCurve> {
        self.curves.get(&combo)
    }

    /// Characterized combos.
    pub fn combos(&self) -> impl Iterator<Item = StrikeCombo> + '_ {
        self.curves.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_construction_and_queries() {
        let c = StrikeCombo::new(&[StrikeTarget::I1, StrikeTarget::I3]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(StrikeTarget::I1));
        assert!(!c.contains(StrikeTarget::I2));
        assert_eq!(c.targets(), vec![StrikeTarget::I1, StrikeTarget::I3]);
        assert!(!c.is_empty());
        assert_eq!(format!("{c}"), "{I1+I3}");
    }

    #[test]
    fn all_combos_enumerated() {
        let all = StrikeCombo::all();
        assert_eq!(all.len(), 7);
        let sizes: Vec<usize> = all.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 3);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 3);
        assert_eq!(sizes.iter().filter(|&&s| s == 3).count(), 1);
    }

    #[test]
    fn duplicate_targets_collapse() {
        let c = StrikeCombo::new(&[StrikeTarget::I2, StrikeTarget::I2]);
        assert_eq!(c.len(), 1);
        assert_eq!(c, StrikeCombo::single(StrikeTarget::I2));
    }

    #[test]
    fn split_charge_conserves_total() {
        let c = StrikeCombo::new(&StrikeTarget::ALL);
        let parts = c.split_charge(Charge::from_electrons(900.0));
        assert_eq!(parts.len(), 3);
        let total: f64 = parts.iter().map(|(_, q)| q).sum();
        assert!((total - Charge::from_electrons(900.0).coulombs()).abs() < 1e-30);
    }

    #[test]
    fn pof_curve_is_cdf() {
        let curve = PofCurve::from_critical_charges(vec![3.0e-17, 1.0e-17, 2.0e-17]);
        assert_eq!(curve.sample_count(), 3);
        assert_eq!(curve.pof(Charge::ZERO), 0.0);
        assert!((curve.pof(Charge::from_coulombs(1.5e-17)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(curve.pof(Charge::from_coulombs(1.0)), 1.0);
        assert_eq!(curve.min_qcrit().coulombs(), 1.0e-17);
        assert_eq!(curve.median_qcrit().coulombs(), 2.0e-17);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_critical_charge() {
        let _ = PofCurve::from_critical_charges(vec![1.0e-17, -1.0e-18]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite charge")]
    fn pof_rejects_non_finite_query() {
        let curve = PofCurve::from_critical_charges(vec![1.0e-17]);
        let _ = curve.pof(Charge::from_coulombs(f64::NAN));
    }

    #[test]
    fn pof_monotone_in_charge() {
        let curve = PofCurve::from_critical_charges((1..=50).map(|i| i as f64 * 1.0e-18).collect());
        let mut prev = -1.0;
        for k in 0..100 {
            let q = Charge::from_coulombs(k as f64 * 1.0e-18);
            let p = curve.pof(q);
            assert!(p >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn table_lookup() {
        let mut curves = BTreeMap::new();
        curves.insert(
            StrikeCombo::single(StrikeTarget::I1),
            PofCurve::from_critical_charges(vec![1.0e-17]),
        );
        let t = PofTable::new(Voltage::from_volts(0.8), curves);
        assert_eq!(t.vdd().volts(), 0.8);
        assert_eq!(
            t.pof(
                StrikeCombo::single(StrikeTarget::I1),
                Charge::from_coulombs(2.0e-17)
            ),
            Some(1.0)
        );
        assert!(t.curve(StrikeCombo::single(StrikeTarget::I2)).is_none());
        assert_eq!(t.combos().count(), 1);
    }

    #[test]
    fn missing_combo_is_none() {
        let mut curves = BTreeMap::new();
        curves.insert(
            StrikeCombo::single(StrikeTarget::I1),
            PofCurve::from_critical_charges(vec![1.0e-17]),
        );
        let t = PofTable::new(Voltage::from_volts(0.8), curves);
        assert_eq!(
            t.pof(StrikeCombo::single(StrikeTarget::I2), Charge::ZERO),
            None
        );
        assert!(t
            .pof(StrikeCombo::single(StrikeTarget::I1), Charge::ZERO)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_curve_rejected() {
        let _ = PofCurve::from_critical_charges(vec![]);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use finrad_numerics::rng::{Rng, Xoshiro256pp};

    #[test]
    fn pof_bounded_and_monotone() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x90F);
        for _ in 0..200 {
            let n = 1 + (rng.next_u64() % 59) as usize;
            let samples: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0e-19f64..1.0e-15)).collect();
            let curve = PofCurve::from_critical_charges(samples);
            let q1 = rng.gen_range(0.0f64..2.0e-15);
            let q2 = rng.gen_range(0.0f64..2.0e-15);
            let p1 = curve.pof(Charge::from_coulombs(q1));
            let p2 = curve.pof(Charge::from_coulombs(q2));
            assert!((0.0..=1.0).contains(&p1));
            if q1 <= q2 {
                assert!(p1 <= p2);
            }
        }
    }

    #[test]
    fn combo_bitmask_bijection() {
        for bits in 1u8..=7 {
            let combo = StrikeCombo::all()[(bits - 1) as usize];
            let rebuilt = StrikeCombo::new(&combo.targets());
            assert_eq!(combo, rebuilt);
        }
    }
}
