//! 6T SRAM cell soft-error characterization.
//!
//! This crate implements the paper's circuit level (Section 4):
//!
//! * [`cell`] — the 6T SOI FinFET SRAM cell as a `finrad-spice` netlist in
//!   hold mode (word line low, bit lines precharged), with both stable
//!   states and flip detection.
//! * [`scenario`] — sensitive-transistor analysis: the devices that are OFF
//!   with |V_ds| = V_dd (the paper's Fig. 5(a) I1/I2/I3), and the strike
//!   combinations over them.
//! * [`characterize`] — critical-charge extraction by bisection over
//!   transient simulations, nominal and under threshold-voltage variation
//!   Monte Carlo (the paper's 1000-sample characterization).
//! * [`pof`] — the Probability-Of-Failure look-up tables consumed by the
//!   array-level simulation: POF as a function of injected charge, per
//!   supply voltage and strike combination.
//! * [`layout`] — the physical cell layout of the paper's Fig. 5(b): fin
//!   placement of PU/PD/PASS devices, used by the 3-D array analysis.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cell;
pub mod characterize;
pub mod layout;
pub mod pof;
pub mod scenario;
pub mod snm;

pub use cell::{CellState, SramCell, TransistorRole};
pub use characterize::{CellCharacterizer, CharacterizeOptions, Variation};
pub use pof::{PofCurve, PofTable, StrikeCombo};
pub use scenario::StrikeTarget;
