//! Static noise margin (SNM) analysis of the 6T cell.
//!
//! A companion robustness metric to the critical charge: the hold SNM is
//! the side of the largest square that fits between the two inverter
//! voltage-transfer curves (VTCs) of the cross-coupled pair — the maximum
//! DC noise the cell tolerates before losing its state. Like Q_crit it
//! shrinks with Vdd, which is the static face of the paper's "SER is
//! higher for lower supply voltages".
//!
//! The analysis sweeps the VTC of one inverter (loaded exactly as in the
//! hold-mode cell: opposite inverter input plus the OFF pass device) with
//! the DC solver, then measures the maximal embedded square of the
//! butterfly curve in the 45°-rotated frame.

use crate::cell::SramCell;
use finrad_finfet::Technology;
use finrad_spice::analysis::{self, NewtonOptions};
use finrad_spice::{Circuit, SpiceError};
use finrad_units::Voltage;

/// Result of a hold-SNM extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct SnmResult {
    /// The hold static noise margin (side of the maximal square).
    pub snm: Voltage,
    /// The swept inverter VTC: `(v_in, v_out)` samples.
    pub vtc: Vec<(f64, f64)>,
}

/// Computes the inverter VTC of the cell's left inverter under hold-mode
/// loading: input on QB, output on Q, pass gate off against a precharged
/// bit line.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn inverter_vtc(
    tech: &Technology,
    vdd: Voltage,
    points: usize,
) -> Result<Vec<(f64, f64)>, SpiceError> {
    assert!(points >= 2, "need at least two sweep points");
    let v = vdd.volts();
    let mut vtc = Vec::with_capacity(points);
    for k in 0..points {
        let vin = v * k as f64 / (points - 1) as f64;
        // A fresh cell with QB driven by a source: the left inverter sees
        // exactly its in-situ load.
        let mut cell = SramCell::new(tech, vdd);
        let qb = cell.qb();
        cell.circuit_mut().add_vsource(qb, Circuit::GROUND, vin);
        let mut guess = cell.initial_conditions(crate::cell::CellState::One);
        guess.insert(qb, vin);
        // Seed the output on the side the input implies, for convergence.
        if vin > v / 2.0 {
            guess.insert(cell.q(), 0.0);
        }
        let op =
            analysis::dc_operating_point_from(cell.circuit(), &NewtonOptions::default(), &guess)?;
        vtc.push((vin, op.voltage(cell.q())));
    }
    Ok(vtc)
}

/// Extracts the hold SNM at `vdd` by the 45°-rotation method over
/// `points`-sample VTCs.
///
/// # Errors
///
/// Propagates DC-solver failures.
///
/// # Examples
///
/// ```no_run
/// use finrad_finfet::Technology;
/// use finrad_sram::snm::hold_snm;
/// use finrad_units::Voltage;
///
/// let r = hold_snm(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8), 81)?;
/// println!("hold SNM: {:.1} mV", r.snm.millivolts());
/// # Ok::<(), finrad_spice::SpiceError>(())
/// ```
pub fn hold_snm(tech: &Technology, vdd: Voltage, points: usize) -> Result<SnmResult, SpiceError> {
    let vtc = inverter_vtc(tech, vdd, points)?;
    // Butterfly: curve A is (x, f(x)); curve B is the mirrored (f(y), y).
    // In the u = (x − y)/√2 rotated frame, the SNM is the largest vertical
    // gap between the two lobes divided by √2... equivalently, measure for
    // each diagonal offset the separation. A robust discrete method:
    // for each point (x, f(x)) on A, its diagonal coordinate is
    // d = x − f(x); the mirrored curve B has diagonal coordinate
    // d' = f(y) − y at parameter y. The maximal square on one lobe is
    // max over x of min over... We use the standard approach: the SNM of
    // lobe 1 is the max over points of A of the (negative-diagonal)
    // distance to B, evaluated by interpolation.
    let snm_lobe = |a: &[(f64, f64)], b: &[(f64, f64)]| -> f64 {
        // Quick SNM estimator: for each a-point, the horizontal gap to
        // the mirrored curve at equal output, halved. Conservative — it
        // underestimates the exact maximal inscribed square by up to ~2×
        // (e.g. an ideal infinite-gain inverter pair reads V/4 instead of
        // V/2) — but it is monotone in the true margin, which is what the
        // comparative studies here (Vdd trends, hold vs read) consume.
        let mut best = 0.0f64;
        for &(x, y) in a {
            let xb = interp_inverse(b, y);
            best = best.max((xb - x) / 2.0);
        }
        best
    };
    // Curve A: (vin, vout). Mirrored curve B: (vout, vin) of the same VTC
    // (the two inverters are identical).
    let mirrored: Vec<(f64, f64)> = vtc.iter().map(|&(x, y)| (y, x)).collect();
    let s1 = snm_lobe(&vtc, &mirrored);
    let s2 = snm_lobe(&mirrored, &vtc);
    Ok(SnmResult {
        snm: Voltage::from_volts(s1.min(s2)),
        vtc,
    })
}

/// Computes the *read-access* VTC: word line asserted, bit lines held at
/// V_dd — the pass gate fights the pull-down, degrading the low level and
/// shrinking the margin (read disturbs are the classic 6T weakness).
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn read_vtc(
    tech: &Technology,
    vdd: Voltage,
    points: usize,
) -> Result<Vec<(f64, f64)>, SpiceError> {
    assert!(points >= 2, "need at least two sweep points");
    let v = vdd.volts();
    let mut vtc = Vec::with_capacity(points);
    for k in 0..points {
        let vin = v * k as f64 / (points - 1) as f64;
        let mut cell = SramCell::with_wordline(tech, vdd, vdd);
        let qb = cell.qb();
        cell.circuit_mut().add_vsource(qb, Circuit::GROUND, vin);
        let mut guess = cell.initial_conditions(crate::cell::CellState::One);
        guess.insert(qb, vin);
        guess.insert(cell.wl(), v);
        if vin > v / 2.0 {
            guess.insert(cell.q(), 0.0);
        }
        let op =
            analysis::dc_operating_point_from(cell.circuit(), &NewtonOptions::default(), &guess)?;
        vtc.push((vin, op.voltage(cell.q())));
    }
    Ok(vtc)
}

/// Extracts the read-access SNM at `vdd` (word line asserted).
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn read_snm(tech: &Technology, vdd: Voltage, points: usize) -> Result<SnmResult, SpiceError> {
    let vtc = read_vtc(tech, vdd, points)?;
    let mirrored: Vec<(f64, f64)> = vtc.iter().map(|&(x, y)| (y, x)).collect();
    let snm_lobe = |a: &[(f64, f64)], b: &[(f64, f64)]| -> f64 {
        let mut best = 0.0f64;
        for &(x, y) in a {
            let xb = interp_inverse(b, y);
            best = best.max((xb - x) / 2.0);
        }
        best
    };
    let s1 = snm_lobe(&vtc, &mirrored);
    let s2 = snm_lobe(&mirrored, &vtc);
    Ok(SnmResult {
        snm: Voltage::from_volts(s1.min(s2)),
        vtc,
    })
}

/// x-value of the (monotone-decreasing-output) curve at output `y`,
/// by linear scan + interpolation; clamps at the ends.
fn interp_inverse(curve: &[(f64, f64)], y: f64) -> f64 {
    // The mirrored curve's "output" (second coordinate) spans the input
    // axis; find the segment bracketing y on the second coordinate.
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if (y0 - y) * (y1 - y) <= 0.0 && (y1 - y0).abs() > 1e-15 {
            let t = (y - y0) / (y1 - y0);
            return x0 + t * (x1 - x0);
        }
    }
    // Clamp to the nearer end.
    let (x_first, y_first) = curve[0];
    let (x_last, y_last) = curve[curve.len() - 1];
    if (y - y_first).abs() < (y - y_last).abs() {
        x_first
    } else {
        x_last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtc_is_a_falling_inverter_curve() {
        let tech = Technology::soi_finfet_14nm();
        let vtc = inverter_vtc(&tech, Voltage::from_volts(0.8), 33).unwrap();
        assert_eq!(vtc.len(), 33);
        // Rails at the ends.
        assert!(vtc[0].1 > 0.75, "out at vin=0: {}", vtc[0].1);
        assert!(vtc[32].1 < 0.05, "out at vin=vdd: {}", vtc[32].1);
        // Monotone non-increasing.
        for w in vtc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
    }

    #[test]
    fn hold_snm_is_a_healthy_fraction_of_vdd() {
        let tech = Technology::soi_finfet_14nm();
        let r = hold_snm(&tech, Voltage::from_volts(0.8), 65).unwrap();
        let frac = r.snm.volts() / 0.8;
        // Hold SNM of a balanced 6T is typically 25-45% of Vdd.
        assert!(
            (0.15..0.5).contains(&frac),
            "SNM {} mV ({}% of Vdd)",
            r.snm.millivolts(),
            100.0 * frac
        );
    }

    #[test]
    fn snm_shrinks_with_vdd() {
        // The static counterpart of "SER rises at low Vdd".
        let tech = Technology::soi_finfet_14nm();
        let lo = hold_snm(&tech, Voltage::from_volts(0.7), 49).unwrap();
        let hi = hold_snm(&tech, Voltage::from_volts(1.1), 49).unwrap();
        assert!(
            lo.snm.volts() < hi.snm.volts(),
            "SNM(0.7) = {} mV should be below SNM(1.1) = {} mV",
            lo.snm.millivolts(),
            hi.snm.millivolts()
        );
    }

    #[test]
    fn read_snm_below_hold_snm() {
        // The classic 6T weakness: the asserted pass gate degrades the low
        // level, so read margin < hold margin.
        let tech = Technology::soi_finfet_14nm();
        let vdd = Voltage::from_volts(0.8);
        let hold = hold_snm(&tech, vdd, 49).unwrap();
        let read = read_snm(&tech, vdd, 49).unwrap();
        assert!(
            read.snm.volts() < hold.snm.volts(),
            "read SNM {} mV should be below hold SNM {} mV",
            read.snm.millivolts(),
            hold.snm.millivolts()
        );
        assert!(read.snm.volts() > 0.0, "cell must still be readable");
    }

    #[test]
    fn read_vtc_low_level_degraded() {
        // With WL high and BL precharged, the output low level is pulled
        // up by the pass gate: V_out(vin = vdd) > the hold-mode value.
        let tech = Technology::soi_finfet_14nm();
        let vdd = Voltage::from_volts(0.8);
        let hold = inverter_vtc(&tech, vdd, 17).unwrap();
        let read = read_vtc(&tech, vdd, 17).unwrap();
        let hold_low = hold.last().unwrap().1;
        let read_low = read.last().unwrap().1;
        assert!(
            read_low > hold_low + 0.01,
            "read low {read_low} V vs hold low {hold_low} V"
        );
    }

    #[test]
    fn interp_inverse_basics() {
        let curve = vec![(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)];
        assert!((interp_inverse(&curve, 0.75) - 0.25).abs() < 1e-12);
        assert!((interp_inverse(&curve, 0.5) - 0.5).abs() < 1e-12);
        // Clamped outside.
        assert_eq!(interp_inverse(&curve, 2.0), 0.0);
        assert_eq!(interp_inverse(&curve, -1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two sweep points")]
    fn vtc_rejects_single_point() {
        let _ = inverter_vtc(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8), 1);
    }
}
