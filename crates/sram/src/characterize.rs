//! Critical-charge extraction and POF characterization.
//!
//! The paper's Section 4: "to obtain POF, we consider the threshold voltage
//! variation by performing 1000 MC simulations based on accurate SPICE
//! simulations using the current model described in Section 3.3". Because
//! the cell upset is monotone in injected charge, each Monte-Carlo sample
//! is characterized by its **critical charge** (found by bisection over
//! transient simulations); the POF curve is the empirical CDF of those
//! critical charges (see [`crate::pof::PofCurve`]).

use crate::cell::{CellState, SramCell, TransistorRole};
use crate::pof::{PofCurve, PofTable, StrikeCombo};
use crate::scenario::StrikeEvent;
use finrad_finfet::{Technology, VariationModel};
use finrad_numerics::rng::{Rng, Xoshiro256pp};
use finrad_numerics::roots::{itp_from, Endpoint};
use finrad_numerics::NumericsError;
use finrad_spice::analysis::{self, NewtonOptions, TimeStepPlan};
use finrad_spice::sync::lock_recovering;
use finrad_spice::{PulseShape, SpiceError};
use finrad_units::{Charge, Voltage};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Whether (and how) process variation enters the characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variation {
    /// Nominal devices only: POF degenerates to the 0/1 step the paper
    /// describes for the variation-free case.
    Nominal,
    /// Per-transistor ΔVth Monte Carlo with the given sample count
    /// (the paper uses 1000).
    MonteCarlo {
        /// Number of sampled cells.
        samples: usize,
    },
}

/// Tuning knobs for the characterization transients.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeOptions {
    /// Pulse start time, seconds.
    pub t_start: f64,
    /// Pulse width override, seconds. `None` computes the transit time
    /// τ = L²/(µ_fin·V_dd) from the technology (the paper's Eq. 2).
    pub pulse_width: Option<f64>,
    /// Effective fin mobility used for the Eq. 2 default width, cm²/(V·s).
    pub fin_mobility_cm2: f64,
    /// Settling time simulated after the pulse, seconds.
    pub settle: f64,
    /// Pulse shape (rectangular per the paper; triangular for the
    /// pulse-shape study).
    pub shape: PulseShape,
    /// Upper bound of the critical-charge search, coulombs.
    pub q_search_max: f64,
    /// Relative tolerance of the critical-charge bisection.
    pub bisect_rel_tol: f64,
    /// Newton solver options.
    pub newton: NewtonOptions,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        Self {
            t_start: 2.0e-15,
            pulse_width: None,
            fin_mobility_cm2: 300.0,
            settle: 1.0e-11,
            shape: PulseShape::Rectangular,
            q_search_max: 5.0e-14,
            bisect_rel_tol: 0.02,
            newton: NewtonOptions::default(),
        }
    }
}

/// The characterization engine for one technology.
///
/// # Examples
///
/// ```no_run
/// use finrad_finfet::Technology;
/// use finrad_sram::{CellCharacterizer, CharacterizeOptions, StrikeCombo, StrikeTarget, Variation};
/// use finrad_units::Voltage;
///
/// let ch = CellCharacterizer::new(Technology::soi_finfet_14nm(), CharacterizeOptions::default());
/// let q = ch.critical_charge(
///     Voltage::from_volts(0.8),
///     StrikeCombo::single(StrikeTarget::I1),
///     &Default::default(),
/// )?;
/// println!("Qcrit = {} electrons", q.electrons());
/// # Ok::<(), finrad_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CellCharacterizer {
    tech: Technology,
    options: CharacterizeOptions,
    /// Pre-strike DC operating points keyed by `(vdd, deltas)`: the
    /// ~20–30 bracketing/refinement probes of one critical-charge search
    /// all share one identical pre-strike state, so it is solved once and
    /// reused. Clones share the cache (`Arc`), so a characterizer handed
    /// to worker threads keeps one map.
    op_cache: Arc<Mutex<HashMap<OpKey, Arc<Vec<f64>>>>>,
}

/// Sub-block size of the batched Monte-Carlo warm seeding: one
/// [`analysis::warm_seed_batch`] call covers this many ΔVth lanes.
const WARM_SEED_LANES: usize = 32;

/// Cache key for a pre-strike operating point: the supply voltage and the
/// six per-transistor ΔVth values (in fixed role order), all as exact
/// f64 bits — two keys are equal iff the circuits are bit-identical.
type OpKey = [u64; 7];

fn op_key(vdd: Voltage, deltas: &HashMap<TransistorRole, Voltage>) -> OpKey {
    let mut key = [0u64; 7];
    key[0] = vdd.volts().to_bits();
    for (slot, role) in TransistorRole::ALL.into_iter().enumerate() {
        let dv = deltas.get(&role).map(|v| v.volts()).unwrap_or(0.0);
        key[slot + 1] = dv.to_bits();
    }
    key
}

/// Maps a root-search failure with no underlying SPICE error (a non-finite
/// margin, a lost bracket, an iteration blow-up) onto the SPICE error type
/// the characterization API reports.
fn numerics_failure(e: &NumericsError) -> SpiceError {
    SpiceError::NoConvergence {
        context: format!("critical-charge search: {e}"),
        iterations: 0,
        last_delta: f64::INFINITY,
        worst_residual: f64::INFINITY,
        rungs: Vec::new(),
    }
}

impl CellCharacterizer {
    /// Creates a characterizer.
    pub fn new(tech: Technology, options: CharacterizeOptions) -> Self {
        Self {
            tech,
            options,
            op_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The technology being characterized.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The options in use.
    pub fn options(&self) -> &CharacterizeOptions {
        &self.options
    }

    /// The pulse width used at `vdd` (explicit override or Eq. 2).
    pub fn pulse_width(&self, vdd: Voltage) -> f64 {
        self.options.pulse_width.unwrap_or_else(|| {
            let l = self.tech.l_gate.meters();
            let mu = self.options.fin_mobility_cm2 * 1.0e-4;
            l * l / (mu * vdd.volts())
        })
    }

    /// Simulates one strike and reports whether the cell flipped.
    ///
    /// `deltas` holds per-transistor threshold shifts (missing roles are
    /// nominal). The cell holds [`CellState::One`]; by symmetry the result
    /// applies to the mirrored strike on a `Zero` cell.
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis failures.
    pub fn simulate_strike(
        &self,
        vdd: Voltage,
        event: &StrikeEvent,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Result<bool, SpiceError> {
        // Flipped ⇔ the decoded state differs from the held `One`, which
        // `decode_state` defines as vq > vqb — i.e. margin ≤ 0.
        Ok(self.strike_margin(vdd, event, deltas)? <= 0.0)
    }

    /// Pre-strike operating point of the (un-struck) cell with the given
    /// ΔVth assignment, served from the per-`(vdd, deltas)` cache.
    ///
    /// On a miss the solve itself is accelerated: variation samples are
    /// warm-started from this `vdd`'s *nominal* operating point. The warm
    /// seed is always the deterministic nominal state — never "whatever
    /// sample solved last" — so same-seed results cannot depend on thread
    /// scheduling.
    fn pre_strike_state(
        &self,
        vdd: Voltage,
        deltas: &HashMap<TransistorRole, Voltage>,
        cell: &SramCell,
        state: CellState,
    ) -> Result<Arc<Vec<f64>>, SpiceError> {
        let key = op_key(vdd, deltas);
        // Cached values are pure solve results, valid even if another
        // thread panicked mid-insert — recover from poisoning rather than
        // propagate it.
        if let Some(hit) = lock_recovering(&self.op_cache).get(&key) {
            finrad_observe::counter_add(finrad_observe::keys::SRAM_DCOP_CACHE_HITS, 1);
            return Ok(hit.clone());
        }
        finrad_observe::counter_add(finrad_observe::keys::SRAM_DCOP_CACHE_MISSES, 1);
        let op = if deltas.is_empty() {
            // Nominal cell: cold solve seeded from the rail-idealized
            // state, which selects the bistable basin.
            analysis::dc_operating_point_from(
                cell.circuit(),
                &self.options.newton,
                &cell.initial_conditions(state),
            )?
        } else {
            // Variation sample: a near-identical circuit, so warm-start
            // from the nominal operating point at this vdd.
            let nominal_cell = SramCell::new(&self.tech, vdd);
            let nominal = self.pre_strike_state(vdd, &HashMap::new(), &nominal_cell, state)?;
            analysis::dc_operating_point_warm(cell.circuit(), &self.options.newton, &nominal)?
        };
        let entry = Arc::new(op.node_voltages().to_vec());
        lock_recovering(&self.op_cache).insert(key, entry.clone());
        Ok(entry)
    }

    /// Simulates one strike and returns the cell's final normalized state
    /// margin `(v_Q − v_QB)/vdd`: positive = held `One`, ≤ 0 = flipped.
    ///
    /// The transient starts from the cached pre-strike operating point and
    /// exits the settle phase early once the margin is provably
    /// stationary: |margin| beyond half the supply with a per-step change
    /// under 1e-3 sustained over 200 fs of simulated time. The window is
    /// time-based (not step-counted) so it is equally meaningful on the
    /// fixed strike grid and on the sparse LTE-adaptive settle samples;
    /// the exit decision depends only on the trajectory, so results stay
    /// deterministic.
    fn strike_margin(
        &self,
        vdd: Voltage,
        event: &StrikeEvent,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Result<f64, SpiceError> {
        let state = CellState::One;
        let mut cell = SramCell::new(&self.tech, vdd);
        for (&role, &dv) in deltas {
            let id = cell.mosfet_id(role);
            let dev = cell.circuit().mosfet(id).with_delta_vth(dv);
            *cell.circuit_mut().mosfet_mut(id) = dev;
        }
        let pre = self.pre_strike_state(vdd, deltas, &cell, state)?;
        event.inject(&mut cell, state);

        let plan = TimeStepPlan::for_pulse(event.t_start, event.width, self.options.settle);
        let fine_span = event.t_start + event.width * 2.0;
        let vdd_v = vdd.volts();
        let (iq, iqb) = (cell.q().index(), cell.qb().index());
        let mut prev_m = f64::NAN;
        let mut prev_t = f64::NAN;
        let mut stable_time = 0.0f64;
        let (res, stopped) = analysis::transient_until(
            cell.circuit(),
            &plan,
            &pre,
            &[cell.q(), cell.qb()],
            &self.options.newton,
            |t, v| {
                // Only the settle tail may be cut short; the pulse window
                // and its immediate aftermath are always simulated.
                if t <= fine_span {
                    return false;
                }
                let m = (v[iq] - v[iqb]) / vdd_v;
                let stationary = m.abs() > 0.5 && (m - prev_m).abs() < 1.0e-3;
                stable_time = if stationary && prev_t.is_finite() {
                    stable_time + (t - prev_t)
                } else {
                    0.0
                };
                prev_m = m;
                prev_t = t;
                stable_time >= 2.0e-13
            },
        )?;
        if stopped {
            finrad_observe::counter_add(finrad_observe::keys::SRAM_SETTLE_EARLY_EXITS, 1);
        }
        let vq = res.final_voltage(cell.q());
        let vqb = res.final_voltage(cell.qb());
        Ok((vq - vqb) / vdd_v)
    }

    /// Whether a strike of total charge `q` on `combo` (split equally)
    /// flips the cell.
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis failures.
    pub fn flips(
        &self,
        vdd: Voltage,
        combo: StrikeCombo,
        q: Charge,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Result<bool, SpiceError> {
        let event = StrikeEvent::with_shape(
            combo.split_charge(q),
            self.options.t_start,
            self.pulse_width(vdd),
            self.options.shape,
        );
        self.simulate_strike(vdd, &event, deltas)
    }

    /// Finds the critical charge of `combo` at `vdd`: a geometric
    /// bracketing scan followed by ITP refinement (superlinear, bounded by
    /// bisection's worst case) on the flip margin over `ln q`, reusing the
    /// scan's endpoint evaluations instead of recomputing them.
    ///
    /// If even `q_search_max` does not flip the cell, that bound is
    /// returned (a saturated sample: POF stays 0 up to it).
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis failures.
    pub fn critical_charge(
        &self,
        vdd: Voltage,
        combo: StrikeCombo,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Result<Charge, SpiceError> {
        // Upward geometric scan to bracket the *first* flip threshold.
        // The flip response is not globally monotone: extreme charges can
        // drive the struck node so far past the rail that the pass gate
        // turns on from its source side and restores the cell from the
        // precharged bit line. Scanning finds the lower threshold, which is
        // the physically meaningful critical charge.
        let q_floor = 1.0e-18; // ~6 electrons: never flips
        let mut lo = q_floor;
        let mut m_lo: Option<f64> = None; // margin at lo (q_floor is never probed)
        let mut hi = lo;
        let mut bracket = None;
        while hi < self.options.q_search_max {
            hi = (hi * 1.6).min(self.options.q_search_max);
            let m = self.margin_counted(vdd, combo, Charge::from_coulombs(hi), deltas)?;
            if m <= 0.0 {
                bracket = Some(m);
                break;
            }
            lo = hi;
            m_lo = Some(m);
        }
        let Some(m_hi) = bracket else {
            // Saturated sample: never flipped in the search range.
            return Ok(Charge::from_coulombs(self.options.q_search_max));
        };
        let Some(m_lo) = m_lo else {
            // The very first scan probe already flips: the threshold is at
            // or below the floor.
            return Ok(Charge::from_coulombs(lo));
        };

        // Refine in ln-space, threading the scan's endpoint margins
        // through so neither endpoint transient is re-run. The stop width
        // ln(1 + rel_tol) reproduces the retired criterion
        // `hi/lo ≤ 1 + rel_tol`, and the returned bracket midpoint is the
        // geometric mean the retired search returned.
        let mut err: Option<SpiceError> = None;
        let result = itp_from(
            |x: f64| {
                if err.is_some() {
                    // A previous evaluation failed: poison the search so
                    // it stops immediately with a typed error.
                    return f64::NAN;
                }
                match self.margin_counted(vdd, combo, Charge::from_coulombs(x.exp()), deltas) {
                    Ok(m) => m,
                    Err(e) => {
                        err = Some(e);
                        f64::NAN
                    }
                }
            },
            Endpoint::new(lo.ln(), m_lo),
            Endpoint::new(hi.ln(), m_hi),
            (1.0 + self.options.bisect_rel_tol).ln(),
            200,
        );
        if let Some(e) = err {
            return Err(e);
        }
        match result {
            Ok(root) => Ok(Charge::from_coulombs(root.x.exp())),
            // A genuinely non-finite margin (NaN with no underlying SPICE
            // error) or an iteration blow-up: surface it as a typed solver
            // failure instead of a panic or a silent wrong answer.
            Err(e) => Err(numerics_failure(&e)),
        }
    }

    /// Flip margin of one probe charge, plus the bracketing/refinement
    /// transient-evaluation counter (`sram.characterize.bisection_steps`).
    fn margin_counted(
        &self,
        vdd: Voltage,
        combo: StrikeCombo,
        q: Charge,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Result<f64, SpiceError> {
        finrad_observe::counter_add(finrad_observe::keys::SRAM_BISECTION_STEPS, 1);
        let event = StrikeEvent::with_shape(
            combo.split_charge(q),
            self.options.t_start,
            self.pulse_width(vdd),
            self.options.shape,
        );
        self.strike_margin(vdd, &event, deltas)
    }

    /// Draws one per-transistor ΔVth assignment.
    fn sample_deltas<R: Rng + ?Sized>(
        &self,
        var: &VariationModel,
        rng: &mut R,
    ) -> HashMap<TransistorRole, Voltage> {
        TransistorRole::ALL
            .into_iter()
            .map(|role| (role, var.sample_delta_vth(1, rng)))
            .collect()
    }

    /// Pre-seeds the operating-point cache for a block of Monte-Carlo
    /// ΔVth samples using the batched SoA model path: the linear MNA
    /// template is stamped once, every device is evaluated across all
    /// lanes in one [`analysis::warm_seed_batch`] call, and each sample's
    /// DC solve then starts from its own single-Newton-step seed —
    /// typically converging in one confirming iteration.
    ///
    /// Purely an accelerator: any failure (singular lane, non-converged
    /// warm solve) leaves that sample out of the cache and the scalar
    /// path in [`CellCharacterizer::pre_strike_state`] solves it the old
    /// way. Each lane depends only on the nominal state and its own
    /// deltas, so results are independent of thread chunking.
    fn preseed_op_cache(&self, vdd: Voltage, samples: &[HashMap<TransistorRole, Voltage>]) {
        let state = CellState::One;
        let todo: Vec<&HashMap<TransistorRole, Voltage>> = {
            let cache = lock_recovering(&self.op_cache);
            samples
                .iter()
                .filter(|d| !d.is_empty() && !cache.contains_key(&op_key(vdd, d)))
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        let nominal_cell = SramCell::new(&self.tech, vdd);
        let Ok(nominal) = self.pre_strike_state(vdd, &HashMap::new(), &nominal_cell, state) else {
            return;
        };
        // Lane matrix in the circuit's MOSFET-id order: transistor roles
        // map onto ids via the cell, devices outside the role set (none
        // in a 6T cell) get zero-ΔVth lanes.
        let circuit = nominal_cell.circuit();
        let deltas_by_mosfet: Vec<Vec<f64>> = circuit
            .mosfet_ids()
            .map(|id| {
                let role = TransistorRole::ALL
                    .into_iter()
                    .find(|&r| nominal_cell.mosfet_id(r) == id);
                todo.iter()
                    .map(|d| role.and_then(|r| d.get(&r)).map_or(0.0, |dv| dv.volts()))
                    .collect()
            })
            .collect();
        let Ok(seeds) =
            analysis::warm_seed_batch(circuit, &self.options.newton, &nominal, &deltas_by_mosfet)
        else {
            return;
        };
        for (deltas, lane_seed) in todo.iter().zip(&seeds) {
            let mut cell = SramCell::new(&self.tech, vdd);
            for (&role, &dv) in deltas.iter() {
                let id = cell.mosfet_id(role);
                let dev = cell.circuit().mosfet(id).with_delta_vth(dv);
                *cell.circuit_mut().mosfet_mut(id) = dev;
            }
            if let Ok(op) =
                analysis::dc_operating_point_warm(cell.circuit(), &self.options.newton, lane_seed)
            {
                finrad_observe::counter_add(finrad_observe::keys::SRAM_DCOP_CACHE_MISSES, 1);
                lock_recovering(&self.op_cache)
                    .insert(op_key(vdd, deltas), Arc::new(op.node_voltages().to_vec()));
            }
        }
    }

    /// Characterizes one combo: the POF curve at `vdd`.
    ///
    /// For [`Variation::MonteCarlo`] the samples are distributed across
    /// `std::thread::available_parallelism()` workers with independent
    /// deterministic RNG streams derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the first transient-analysis failure encountered.
    pub fn characterize_combo(
        &self,
        vdd: Voltage,
        combo: StrikeCombo,
        variation: Variation,
        seed: u64,
    ) -> Result<PofCurve, SpiceError> {
        let _combo_timer = finrad_observe::span(finrad_observe::keys::SRAM_COMBO_SECONDS);
        finrad_observe::counter_add(finrad_observe::keys::SRAM_COMBOS, 1);
        match variation {
            Variation::Nominal => {
                let q = self.critical_charge(vdd, combo, &HashMap::new())?;
                Ok(PofCurve::from_critical_charges(vec![q.coulombs()]))
            }
            Variation::MonteCarlo { samples } => {
                assert!(samples > 0, "need at least one MC sample");
                let var = VariationModel::pelgrom(&self.tech);
                let n_threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(samples);
                let chunk = samples.div_ceil(n_threads);
                let results: Vec<Result<Vec<f64>, SpiceError>> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for t in 0..n_threads {
                        let start = t * chunk;
                        let end = ((t + 1) * chunk).min(samples);
                        if start >= end {
                            break;
                        }
                        let var = &var;
                        let this = &self;
                        handles.push(scope.spawn(move || {
                            let mut out = Vec::with_capacity(end - start);
                            // Walk the chunk in sub-blocks sized for the
                            // batched SoA seeding; each sample keeps its
                            // own salted RNG stream, so the draws are
                            // identical to the retired one-at-a-time loop.
                            for block in (start..end).collect::<Vec<_>>().chunks(WARM_SEED_LANES) {
                                let block_deltas: Vec<_> = block
                                    .iter()
                                    .map(|&i| {
                                        let mut rng = Xoshiro256pp::salted_stream(
                                            seed,
                                            i as u64,
                                            0x9E37_79B9_7F4A_7C15,
                                        );
                                        this.sample_deltas(var, &mut rng)
                                    })
                                    .collect();
                                this.preseed_op_cache(vdd, &block_deltas);
                                for deltas in &block_deltas {
                                    let q = this.critical_charge(vdd, combo, deltas)?;
                                    out.push(q.coulombs());
                                }
                            }
                            Ok(out)
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            // Forward the worker's own panic payload instead
                            // of replacing it with a generic message.
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
                let mut qs = Vec::with_capacity(samples);
                for r in results {
                    qs.extend(r?);
                }
                Ok(PofCurve::from_critical_charges(qs))
            }
        }
    }

    /// Builds the full POF table at `vdd`: all seven strike combinations.
    ///
    /// # Errors
    ///
    /// Propagates the first transient-analysis failure encountered.
    pub fn build_table(
        &self,
        vdd: Voltage,
        variation: Variation,
        seed: u64,
    ) -> Result<PofTable, SpiceError> {
        let mut curves = BTreeMap::new();
        for (k, combo) in StrikeCombo::all().into_iter().enumerate() {
            let curve =
                self.characterize_combo(vdd, combo, variation, seed.wrapping_add(k as u64))?;
            curves.insert(combo, curve);
        }
        Ok(PofTable::new(vdd, curves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrikeTarget;

    fn characterizer() -> CellCharacterizer {
        CellCharacterizer::new(
            Technology::soi_finfet_14nm(),
            CharacterizeOptions {
                // Coarser settle for debug-mode test speed; flips settle
                // well within 5 ps.
                settle: 5.0e-12,
                bisect_rel_tol: 0.05,
                ..CharacterizeOptions::default()
            },
        )
    }

    #[test]
    fn pulse_width_follows_eq2() {
        let ch = characterizer();
        let w1 = ch.pulse_width(Voltage::from_volts(1.0));
        let w07 = ch.pulse_width(Voltage::from_volts(0.7));
        // tau = L^2/(mu Vds): > 10 fs at 1 V, scaling as 1/Vdd.
        assert!(w1 > 1.0e-14, "tau {w1}");
        assert!((w07 / w1 - 1.0 / 0.7).abs() < 1e-9);
        let ch2 = CellCharacterizer::new(
            Technology::soi_finfet_14nm(),
            CharacterizeOptions {
                pulse_width: Some(5.0e-15),
                ..CharacterizeOptions::default()
            },
        );
        assert_eq!(ch2.pulse_width(Voltage::from_volts(0.8)), 5.0e-15);
    }

    #[test]
    fn tiny_charge_does_not_flip_above_threshold_does() {
        let ch = characterizer();
        let vdd = Voltage::from_volts(0.8);
        let combo = StrikeCombo::single(StrikeTarget::I1);
        let none = HashMap::new();
        assert!(!ch
            .flips(vdd, combo, Charge::from_electrons(5.0), &none)
            .unwrap());
        // Moderately above the ~0.15 fC critical charge: flips. (Extreme
        // charges can *restore* the cell through the source-side-on pass
        // gate — see critical_charge — so "huge" is not the right probe.)
        assert!(ch.flips(vdd, combo, Charge::from_fc(0.25), &none).unwrap());
    }

    #[test]
    fn critical_charge_is_sram_scale() {
        let ch = characterizer();
        let q = ch
            .critical_charge(
                Voltage::from_volts(0.8),
                StrikeCombo::single(StrikeTarget::I1),
                &HashMap::new(),
            )
            .unwrap();
        // 14 nm SRAM critical charge: order 0.01-1 fC.
        let fc = q.femtocoulombs();
        assert!((0.005..2.0).contains(&fc), "Qcrit {fc} fC");
    }

    #[test]
    fn critical_charge_decreases_with_vdd() {
        // The root cause of the paper's "SER is higher at lower supply
        // voltages" (Fig. 9).
        let ch = characterizer();
        let combo = StrikeCombo::single(StrikeTarget::I1);
        let none = HashMap::new();
        let q_07 = ch
            .critical_charge(Voltage::from_volts(0.7), combo, &none)
            .unwrap();
        let q_10 = ch
            .critical_charge(Voltage::from_volts(1.0), combo, &none)
            .unwrap();
        assert!(
            q_07.coulombs() < q_10.coulombs(),
            "Qcrit(0.7V) = {} fC should be below Qcrit(1.0V) = {} fC",
            q_07.femtocoulombs(),
            q_10.femtocoulombs()
        );
    }

    #[test]
    fn combined_strike_flips_easier_than_single() {
        let ch = characterizer();
        let vdd = Voltage::from_volts(0.8);
        let none = HashMap::new();
        let q_single = ch
            .critical_charge(vdd, StrikeCombo::single(StrikeTarget::I2), &none)
            .unwrap();
        let q_all = ch
            .critical_charge(vdd, StrikeCombo::new(&StrikeTarget::ALL), &none)
            .unwrap();
        // The three-way strike attacks both nodes at once; per-target charge
        // is a third, but the combined disturbance should not need more
        // than ~2x the single-target total charge (and typically less).
        assert!(
            q_all.coulombs() < 2.0 * q_single.coulombs(),
            "q_all {} vs q_single {}",
            q_all.femtocoulombs(),
            q_single.femtocoulombs()
        );
    }

    #[test]
    fn nominal_curve_is_step() {
        let ch = characterizer();
        let curve = ch
            .characterize_combo(
                Voltage::from_volts(0.8),
                StrikeCombo::single(StrikeTarget::I1),
                Variation::Nominal,
                1,
            )
            .unwrap();
        assert_eq!(curve.sample_count(), 1);
        let qc = curve.median_qcrit();
        assert_eq!(curve.pof(qc * 0.9), 0.0);
        assert_eq!(curve.pof(qc * 1.1), 1.0);
    }

    #[test]
    fn variation_curve_spreads_around_nominal() {
        let ch = characterizer();
        let vdd = Voltage::from_volts(0.8);
        let combo = StrikeCombo::single(StrikeTarget::I1);
        let nominal = ch
            .characterize_combo(vdd, combo, Variation::Nominal, 1)
            .unwrap();
        let mc = ch
            .characterize_combo(vdd, combo, Variation::MonteCarlo { samples: 12 }, 2)
            .unwrap();
        assert_eq!(mc.sample_count(), 12);
        // The MC minimum is (weakly) below the nominal Qcrit and the max
        // above — variation spreads the distribution.
        let q_nom = nominal.median_qcrit().coulombs();
        assert!(
            mc.min_qcrit().coulombs() < q_nom * 1.05,
            "mc min {} vs nominal {}",
            mc.min_qcrit().coulombs(),
            q_nom
        );
        // POF transitions over a band rather than a step: at nominal Qcrit
        // it is strictly between 0 and 1 for a healthy sigma.
        let p = mc.pof(Charge::from_coulombs(q_nom));
        assert!(p > 0.0 && p < 1.0, "pof at nominal {p}");
    }

    /// The geometric bisection this PR retired, kept here verbatim as the
    /// golden reference: scan up by ×1.6 to bracket the first flip, then
    /// halve the bracket in log-space to `bisect_rel_tol`.
    fn retired_geometric_bisection(
        ch: &CellCharacterizer,
        vdd: Voltage,
        combo: StrikeCombo,
        deltas: &HashMap<TransistorRole, Voltage>,
    ) -> Charge {
        let q_floor = 1.0e-18;
        let mut lo = q_floor;
        let mut hi = lo;
        let mut bracketed = false;
        while hi < ch.options().q_search_max {
            hi = (hi * 1.6).min(ch.options().q_search_max);
            if ch
                .flips(vdd, combo, Charge::from_coulombs(hi), deltas)
                .unwrap()
            {
                bracketed = true;
                break;
            }
            lo = hi;
        }
        if !bracketed {
            return Charge::from_coulombs(ch.options().q_search_max);
        }
        if lo <= q_floor {
            return Charge::from_coulombs(lo);
        }
        while hi / lo > 1.0 + ch.options().bisect_rel_tol {
            let mid = (lo * hi).sqrt();
            if ch
                .flips(vdd, combo, Charge::from_coulombs(mid), deltas)
                .unwrap()
            {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Charge::from_coulombs((lo * hi).sqrt())
    }

    #[test]
    fn golden_itp_matches_retired_bisection_within_tolerance() {
        // Satellite guarantee of this PR: the ITP-based search returns a
        // critical charge within `bisect_rel_tol` of the retired geometric
        // bisection, nominal and under variation alike.
        let ch = characterizer();
        let vdd = Voltage::from_volts(0.8);
        let tol = ch.options().bisect_rel_tol;
        let mut rng = Xoshiro256pp::salted_stream(7, 0, 0x9E37_79B9_7F4A_7C15);
        let var = VariationModel::pelgrom(ch.technology());
        let cases: Vec<(StrikeCombo, HashMap<TransistorRole, Voltage>)> = vec![
            (StrikeCombo::single(StrikeTarget::I1), HashMap::new()),
            (StrikeCombo::new(&StrikeTarget::ALL), HashMap::new()),
            (
                StrikeCombo::single(StrikeTarget::I1),
                ch.sample_deltas(&var, &mut rng),
            ),
        ];
        for (combo, deltas) in cases {
            let golden = retired_geometric_bisection(&ch, vdd, combo, &deltas);
            let new = ch.critical_charge(vdd, combo, &deltas).unwrap();
            let ratio = new.coulombs() / golden.coulombs();
            assert!(
                (1.0 - tol..=1.0 + tol).contains(&ratio),
                "{combo:?}: itp {} fC vs retired {} fC (ratio {ratio})",
                new.femtocoulombs(),
                golden.femtocoulombs()
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ch = characterizer();
        let vdd = Voltage::from_volts(0.8);
        let combo = StrikeCombo::single(StrikeTarget::I3);
        let a = ch
            .characterize_combo(vdd, combo, Variation::MonteCarlo { samples: 6 }, 42)
            .unwrap();
        let b = ch
            .characterize_combo(vdd, combo, Variation::MonteCarlo { samples: 6 }, 42)
            .unwrap();
        assert_eq!(a, b);
    }
}
