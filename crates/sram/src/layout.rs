//! The physical 6T cell layout of the paper's Fig. 5(b).
//!
//! The classic FinFET 6T floorplan: four vertical fins (outer NMOS fins
//! shared by a pull-down and a pass gate; two inner PMOS fins in the
//! n-well), crossed by two horizontal gate lines (each gate line forms one
//! inverter's common gate plus the opposite side's pass gate). Each
//! transistor's *sensitive volume* — the gated fin segment where deposited
//! charge is collected by source/drain drift — is modelled as an axis-
//! aligned box of `w_fin × l_gate × h_fin`, sitting on the buried oxide
//! (`z = 0`). Charge deposited outside the gated segments is not collected
//! (no field; and the BOX suppresses substrate diffusion in SOI — the
//! paper's Section 3.3).

use crate::cell::TransistorRole;
use finrad_finfet::Technology;
use finrad_geometry::{Aabb, Vec3};
use finrad_units::Length;

/// Fin and gate placement of one 6T cell, in cell-local coordinates
/// (metres; origin at the cell's lower-left corner, z = 0 at the BOX top).
///
/// # Examples
///
/// ```
/// use finrad_finfet::Technology;
/// use finrad_sram::layout::CellLayout;
/// use finrad_sram::TransistorRole;
///
/// let layout = CellLayout::paper_fig5b(&Technology::soi_finfet_14nm());
/// assert_eq!(layout.boxes().len(), 6);
/// let pd = layout.device_box(TransistorRole::PullDownLeft).unwrap();
/// assert!(pd.volume() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellLayout {
    /// Cell footprint in x (bit-line direction).
    pub width: Length,
    /// Cell footprint in y (word-line direction).
    pub depth: Length,
    /// Fin height (z extent of the sensitive boxes).
    pub fin_height: Length,
    boxes: Vec<(TransistorRole, Aabb)>,
}

impl CellLayout {
    /// Builds the Fig. 5(b) floorplan from technology dimensions, with
    /// 48 nm fin pitch and 70 nm gate pitch (14 nm-node class).
    pub fn paper_fig5b(tech: &Technology) -> Self {
        Self::with_pitches(tech, Length::from_nm(48.0), Length::from_nm(70.0))
    }

    /// Builds the floorplan with explicit fin and gate pitches.
    ///
    /// # Panics
    ///
    /// Panics if a pitch is not larger than the corresponding device
    /// dimension.
    pub fn with_pitches(tech: &Technology, fin_pitch: Length, gate_pitch: Length) -> Self {
        assert!(
            fin_pitch.meters() > tech.w_fin.meters(),
            "fin pitch must exceed fin width"
        );
        assert!(
            gate_pitch.meters() > tech.l_gate.meters(),
            "gate pitch must exceed gate length"
        );
        let fp = fin_pitch.meters();
        let gp = gate_pitch.meters();
        let w = tech.w_fin.meters();
        let l = tech.l_gate.meters();
        let h = tech.h_fin.meters();

        // Four fins at half-pitch offsets; two gate lines at half-pitch.
        let fin_x = [0.5 * fp, 1.5 * fp, 2.5 * fp, 3.5 * fp];
        let gate_y = [0.5 * gp, 1.5 * gp];

        let device = |fin: usize, gate: usize| {
            Aabb::from_min_size(
                Vec3::new(fin_x[fin] - 0.5 * w, gate_y[gate] - 0.5 * l, 0.0),
                Vec3::new(w, l, h),
            )
        };

        // Gate line 0 (y low): left-inverter gate (PD-L, PU-L) + PASS-R.
        // Gate line 1 (y high): right-inverter gate (PU-R, PD-R) + PASS-L.
        let boxes = vec![
            (TransistorRole::PullDownLeft, device(0, 0)),
            (TransistorRole::PassLeft, device(0, 1)),
            (TransistorRole::PullUpLeft, device(1, 0)),
            (TransistorRole::PullUpRight, device(2, 1)),
            (TransistorRole::PullDownRight, device(3, 1)),
            (TransistorRole::PassRight, device(3, 0)),
        ];

        Self {
            width: Length::from_meters(4.0 * fp),
            depth: Length::from_meters(2.0 * gp),
            fin_height: tech.h_fin,
            boxes,
        }
    }

    /// All six sensitive boxes with their roles.
    pub fn boxes(&self) -> &[(TransistorRole, Aabb)] {
        &self.boxes
    }

    /// The sensitive box of one transistor, or `None` if the role is
    /// absent (constructed layouts always place all six roles, but
    /// deserialized ones are not trusted to).
    pub fn device_box(&self, role: TransistorRole) -> Option<Aabb> {
        self.boxes.iter().find(|(r, _)| *r == role).map(|(_, b)| *b)
    }

    /// The cell's bounding box (full footprint, fin height in z).
    pub fn cell_box(&self) -> Aabb {
        Aabb::from_min_size(
            Vec3::ZERO,
            Vec3::new(
                self.width.meters(),
                self.depth.meters(),
                self.fin_height.meters(),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> CellLayout {
        CellLayout::paper_fig5b(&Technology::soi_finfet_14nm())
    }

    #[test]
    fn six_devices_inside_cell() {
        let lay = layout();
        let cell = lay.cell_box();
        assert_eq!(lay.boxes().len(), 6);
        for (role, b) in lay.boxes() {
            assert!(
                cell.contains(b.min_corner()) && cell.contains(b.max_corner()),
                "{role} outside cell"
            );
        }
    }

    #[test]
    fn devices_do_not_overlap() {
        let lay = layout();
        let boxes = lay.boxes();
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                let (_, a) = boxes[i];
                let (_, b) = boxes[j];
                let overlap_x =
                    a.min_corner().x < b.max_corner().x && b.min_corner().x < a.max_corner().x;
                let overlap_y =
                    a.min_corner().y < b.max_corner().y && b.min_corner().y < a.max_corner().y;
                assert!(
                    !(overlap_x && overlap_y),
                    "{:?} overlaps {:?}",
                    boxes[i].0,
                    boxes[j].0
                );
            }
        }
    }

    #[test]
    fn device_dimensions_match_technology() {
        let tech = Technology::soi_finfet_14nm();
        let lay = layout();
        for (_, b) in lay.boxes() {
            let s = b.size();
            assert!((s.x - tech.w_fin.meters()).abs() < 1e-18);
            assert!((s.y - tech.l_gate.meters()).abs() < 1e-18);
            assert!((s.z - tech.h_fin.meters()).abs() < 1e-18);
        }
    }

    #[test]
    fn fig5b_topology() {
        // PD-L and PASS-L share the leftmost fin (same x extent);
        // PD-R and PASS-R share the rightmost; PU fins are interior.
        let lay = layout();
        let pdl = lay.device_box(TransistorRole::PullDownLeft).unwrap();
        let passl = lay.device_box(TransistorRole::PassLeft).unwrap();
        assert_eq!(pdl.min_corner().x, passl.min_corner().x);
        assert_ne!(pdl.min_corner().y, passl.min_corner().y);

        let pdr = lay.device_box(TransistorRole::PullDownRight).unwrap();
        let passr = lay.device_box(TransistorRole::PassRight).unwrap();
        assert_eq!(pdr.min_corner().x, passr.min_corner().x);

        let pul = lay.device_box(TransistorRole::PullUpLeft).unwrap();
        let pur = lay.device_box(TransistorRole::PullUpRight).unwrap();
        assert!(pul.min_corner().x > pdl.max_corner().x);
        assert!(pur.max_corner().x < pdr.min_corner().x);
        assert!(pul.min_corner().x < pur.min_corner().x);
    }

    #[test]
    fn cell_footprint() {
        let lay = layout();
        assert!((lay.width.nanometers() - 192.0).abs() < 1e-9);
        assert!((lay.depth.nanometers() - 140.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fin pitch must exceed")]
    fn rejects_undersized_pitch() {
        let tech = Technology::soi_finfet_14nm();
        let _ = CellLayout::with_pitches(&tech, Length::from_nm(5.0), Length::from_nm(70.0));
    }
}
