//! Fault-tolerant campaign runtime around [`SerPipeline`].
//!
//! A *campaign* is one (particle, V_dd) FIT computation run with
//! robustness guarantees the bare pipeline does not make:
//!
//! - **Checkpoint/resume** — per-energy-bin POF tallies are snapshotted
//!   to a versioned on-disk [`Checkpoint`] at bin boundaries, and
//!   [`CampaignRunner::resume`] continues an interrupted run to a FIT
//!   rate bit-identical to an uninterrupted one (bins reuse the exact
//!   per-bin seed `seed + 0xB10C + k·6271` the pipeline derives, and
//!   checkpointed POFs round-trip as raw f64 bit patterns).
//! - **Degraded coverage instead of aborts** — a bin whose Monte Carlo
//!   panics (or is forced to fail by the fault-injection plan) becomes an
//!   error-tagged [`BinOutcome::Failed`] record excluded from the Eq. 8
//!   integration; the report carries an explicit [`Coverage`] summary so
//!   an under-integrated FIT is never mistaken for a complete one.
//! - **NaN quarantine surfaced** — poisoned iterations rejected at the
//!   accumulator boundary and non-finite bins excluded by
//!   [`fit_rate_checked`] are both counted in the report.
//!
//! Everything that can go wrong maps to a typed [`CampaignError`]; no
//! degradation path panics or silently returns a wrong FIT.

use crate::checkpoint::{
    config_fingerprint, BinRecord, Checkpoint, CheckpointError, CHECKPOINT_VERSION,
};
use crate::fit::{fit_rate_checked, FitRate, PofBin};
use crate::pipeline::{PipelineConfig, SerPipeline};
use crate::strike::{DepositMode, StrikeSimulator};
use crate::CoreError;
use finrad_environment::SpectrumBin;
use finrad_units::{Particle, Voltage};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Configuration of a fault-tolerant campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The underlying pipeline configuration (seeds, iteration budget,
    /// spectrum binning — all of it participates in the checkpoint
    /// fingerprint).
    pub pipeline: PipelineConfig,
    /// Particle species.
    pub particle: Particle,
    /// Supply voltage.
    pub vdd: Voltage,
    /// Where to snapshot progress; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Pause after computing this many *new* bins in one call (the
    /// checkpoint is saved first). `None` runs to completion. Used to
    /// bound per-invocation work and by the kill-and-resume tests.
    pub max_bins_per_run: Option<usize>,
    /// Deterministic fault plan for the robustness test-suite.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: FaultPlan,
}

impl CampaignConfig {
    /// A campaign over `pipeline` with checkpointing disabled.
    pub fn new(pipeline: PipelineConfig, particle: Particle, vdd: Voltage) -> Self {
        Self {
            pipeline,
            particle,
            vdd,
            checkpoint_path: None,
            max_bins_per_run: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Deterministic fault-injection plan, compiled only under the
/// `fault-injection` feature. Default builds carry none of these hooks.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Bin indices forced to fail (they produce [`BinOutcome::Failed`]).
    pub fail_bins: Vec<usize>,
    /// Bin indices whose POFs are poisoned to NaN *after* estimation —
    /// exercising the fit-level non-finite-bin exclusion.
    pub poison_bins: Vec<usize>,
    /// Bin indices that receive one extra NaN iteration pushed into the
    /// accumulator — exercising the accumulator-level quarantine (the
    /// resulting means, and hence the FIT, must be bit-identical to an
    /// unpoisoned run).
    pub poison_samples: Vec<usize>,
    /// `(bin, panics)` pairs: the bin panics inside its supervision
    /// envelope while the zero-based retry attempt is below `panics`, then
    /// succeeds. With `panics <= max_retries` the campaign service's
    /// retry/backoff path recovers the bin; beyond that it is quarantined.
    /// Under [`CampaignRunner`] (single attempt) any `panics > 0` entry
    /// simply degrades the bin to [`BinOutcome::Failed`].
    pub panic_bins: Vec<(usize, u32)>,
}

/// Errors a campaign can surface. Every degradation path ends here (or in
/// a degraded-coverage report) — never in a panic.
#[derive(Debug)]
pub enum CampaignError {
    /// Checkpoint load/save failed (corrupt, wrong version, or I/O).
    Checkpoint(CheckpointError),
    /// The checkpoint on disk is a partial write: the file ends before its
    /// checksum line, or is cut mid-line (every complete snapshot ends
    /// with a newline). Distinct from [`CampaignError::Checkpoint`] with
    /// [`CheckpointError::Corrupt`] so an interrupted writer is not
    /// misdiagnosed as data corruption — deleting the partial file and
    /// re-running is safe and sufficient.
    CheckpointTruncated {
        /// The partially-written file.
        path: PathBuf,
        /// What the classifier observed.
        detail: String,
    },
    /// The checkpoint on disk was produced by a different configuration;
    /// resuming from it would silently mix incompatible tallies.
    ConfigMismatch {
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The up-front cell characterization (or config validation) failed —
    /// without a POF table no bin can run.
    Pipeline(CoreError),
    /// Every energy bin failed: there is no spectrum coverage at all, so
    /// reporting a FIT of zero would be silently wrong.
    NoCoverage {
        /// Total bins attempted.
        total_bins: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::CheckpointTruncated { path, detail } => write!(
                f,
                "checkpoint {} is a partial write: {detail} \
                 (delete it or restore a complete snapshot, then resume)",
                path.display()
            ),
            CampaignError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config mismatch: expected fingerprint {expected:016x}, \
                 checkpoint carries {found:016x} (re-run fresh or restore the original config)"
            ),
            CampaignError::Pipeline(e) => write!(f, "campaign setup failed: {e}"),
            CampaignError::NoCoverage { total_bins } => write!(
                f,
                "no spectrum coverage: all {total_bins} energy bins failed"
            ),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Checkpoint(e) => Some(e),
            CampaignError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

impl From<CoreError> for CampaignError {
    fn from(e: CoreError) -> Self {
        CampaignError::Pipeline(e)
    }
}

/// Outcome of one energy bin.
#[derive(Debug, Clone, PartialEq)]
pub enum BinOutcome {
    /// The bin's Monte Carlo completed.
    Ok {
        /// The bin's POFs and spectrum slice.
        bin: PofBin,
        /// Iterations rejected by the accumulator-level NaN quarantine.
        quarantined: u64,
    },
    /// The bin failed; it is excluded from the FIT integration.
    Failed {
        /// Human-readable description of the failure.
        error: String,
    },
}

/// Explicit spectrum-coverage summary for a (possibly degraded) campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Total energy bins in the campaign.
    pub total_bins: usize,
    /// Bins whose Monte Carlo completed.
    pub ok_bins: usize,
    /// Bins excluded because they failed outright.
    pub failed_bins: usize,
    /// Completed bins excluded from Eq. 8 because a POF or flux was
    /// non-finite.
    pub non_finite_bins: usize,
    /// Total iterations quarantined by the accumulator-level NaN guard.
    pub quarantined_samples: u64,
    /// Fraction of the spectrum's total integral flux carried by the bins
    /// that actually entered the FIT integration (1.0 = full coverage).
    pub flux_fraction: f64,
}

impl Coverage {
    /// Whether every bin completed and entered the integration.
    pub fn is_complete(&self) -> bool {
        self.failed_bins == 0 && self.non_finite_bins == 0 && self.ok_bins == self.total_bins
    }
}

/// The report of a finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Particle species.
    pub particle: Particle,
    /// Supply voltage.
    pub vdd: Voltage,
    /// FIT rates integrated over the covered bins (Eq. 8).
    pub fit: FitRate,
    /// Per-bin outcomes, indexed by energy-bin number.
    pub outcomes: Vec<BinOutcome>,
    /// Coverage summary; inspect before trusting `fit` when any bin
    /// degraded.
    pub coverage: Coverage,
}

/// What a single `run`/`resume` call produced.
#[derive(Debug)]
pub enum CampaignStatus {
    /// The campaign ran (or resumed) to completion.
    Complete(Box<CampaignReport>),
    /// `max_bins_per_run` was reached; progress is checkpointed and a
    /// later [`CampaignRunner::resume`] will continue.
    Paused {
        /// Bins computed so far (across all runs).
        completed: usize,
        /// Total bins in the campaign.
        total: usize,
    },
}

/// The fault-tolerant campaign driver.
pub struct CampaignRunner {
    config: CampaignConfig,
    pipeline: SerPipeline,
}

impl CampaignRunner {
    /// Creates a runner.
    pub fn new(config: CampaignConfig) -> Self {
        let pipeline = SerPipeline::new(config.pipeline.clone());
        Self { config, pipeline }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign from scratch, ignoring any checkpoint on disk
    /// (a fresh run overwrites it at the first snapshot).
    ///
    /// # Errors
    ///
    /// See [`CampaignError`].
    pub fn run(&self) -> Result<CampaignStatus, CampaignError> {
        self.execute(Vec::new())
    }

    /// Resumes from the configured checkpoint if one exists (falling back
    /// to a fresh run when the file is absent), after validating its
    /// version, checksum, and config fingerprint.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] for an unreadable/invalid file,
    /// [`CampaignError::ConfigMismatch`] for a checkpoint produced by a
    /// different configuration, plus everything [`CampaignRunner::run`]
    /// can produce.
    pub fn resume(&self) -> Result<CampaignStatus, CampaignError> {
        let Some(path) = &self.config.checkpoint_path else {
            return self.run();
        };
        if !path.exists() {
            return self.run();
        }
        let ck = load_checkpoint_classified(path)?;
        let expected =
            config_fingerprint(&self.config.pipeline, self.config.particle, self.config.vdd);
        if ck.fingerprint != expected {
            return Err(CampaignError::ConfigMismatch {
                expected,
                found: ck.fingerprint,
            });
        }
        self.execute(ck.bins)
    }

    fn execute(&self, prior: Vec<BinRecord>) -> Result<CampaignStatus, CampaignError> {
        let cfg = &self.config;
        // The expensive, deterministic step: re-characterization on resume
        // rebuilds the identical POF table, so tallies from the prior run
        // compose bit-exactly with freshly computed bins.
        let table = self.pipeline.build_pof_table(cfg.vdd)?;
        let spectrum_bins = self.pipeline.energy_bins(cfg.particle);
        let total = spectrum_bins.len();

        let mut outcomes = prefill_outcomes(prior, &spectrum_bins)?;

        let array = self.pipeline.build_array();
        let traversal = self.pipeline.traversal();
        let lut = (cfg.pipeline.deposit == DepositMode::LutMean)
            .then(|| self.pipeline.build_ehp_lut(cfg.particle));
        let sim = StrikeSimulator::new(
            &array,
            traversal,
            &table,
            self.pipeline.direction_for(cfg.particle),
            cfg.pipeline.deposit,
            cfg.pipeline.flip_model,
            lut.as_ref(),
        );

        let mut new_bins = 0usize;
        for (k, sb) in spectrum_bins.iter().enumerate() {
            if outcomes[k].is_some() {
                continue;
            }
            if let Some(max) = cfg.max_bins_per_run {
                if new_bins >= max {
                    let completed = outcomes.iter().filter(|o| o.is_some()).count();
                    self.save_checkpoint(&outcomes)?;
                    return Ok(CampaignStatus::Paused { completed, total });
                }
            }
            outcomes[k] = Some(match supervised_bin(&sim, cfg, k, sb, 0) {
                Ok(outcome) => outcome,
                Err(msg) => BinOutcome::Failed {
                    error: format!("bin {k} panicked: {msg}"),
                },
            });
            new_bins += 1;
        }

        if new_bins > 0 {
            self.save_checkpoint(&outcomes)?;
        }
        integrate_outcomes(cfg.particle, cfg.vdd, outcomes, &array, &spectrum_bins)
            .map(|report| CampaignStatus::Complete(Box::new(report)))
    }

    fn save_checkpoint(&self, outcomes: &[Option<BinOutcome>]) -> Result<(), CampaignError> {
        let Some(path) = &self.config.checkpoint_path else {
            return Ok(());
        };
        let ck = build_checkpoint(&self.config, outcomes);
        debug_assert_eq!(CHECKPOINT_VERSION, 1);
        ck.save(path)?;
        Ok(())
    }
}

/// Runs one energy bin inside the supervision envelope shared by
/// [`CampaignRunner`] and the campaign service: fault-plan hooks, panic
/// capture via `catch_unwind`, and per-bin wall-time/outcome metrics.
///
/// `attempt` is the zero-based retry attempt; the fault plan's
/// `panic_bins` entries panic while `attempt` is below their count, which
/// is how the service's retry/backoff path is exercised deterministically.
/// `Ok` carries the bin outcome (possibly a planned [`BinOutcome::Failed`]);
/// `Err` carries the captured panic message so the caller decides between
/// retrying and quarantining.
pub(crate) fn supervised_bin(
    sim: &StrikeSimulator<'_>,
    cfg: &CampaignConfig,
    k: usize,
    sb: &SpectrumBin,
    attempt: u32,
) -> Result<BinOutcome, String> {
    #[cfg(not(feature = "fault-injection"))]
    let _ = attempt;
    #[cfg(feature = "fault-injection")]
    if cfg.fault_plan.fail_bins.contains(&k) {
        return Ok(BinOutcome::Failed {
            error: format!("injected fault: bin {k} forced to fail"),
        });
    }
    // Exactly the per-bin seed SerPipeline::run_with_table derives —
    // the bit-identical-resume guarantee hangs on this.
    let seed = cfg.pipeline.seed.wrapping_add(0xB10C + k as u64 * 6271);
    let iterations = cfg.pipeline.iterations_per_energy;
    let bin_timer = finrad_observe::span(finrad_observe::keys::CAMPAIGN_BIN_SECONDS);
    let result = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        if let Some((_, panics)) = cfg.fault_plan.panic_bins.iter().find(|(b, _)| *b == k) {
            if attempt < *panics {
                // Deliberate injected worker crash; the envelope above
                // catches it and the supervisor retries or quarantines.
                // finrad-lint: allow(panic-freedom)
                panic!("injected fault: bin {k} panicked (attempt {attempt})");
            }
        }
        sim.estimate(cfg.particle, sb.energy, iterations, seed)
    }));
    drop(bin_timer);
    finrad_observe::counter_add(
        if result.is_ok() {
            finrad_observe::keys::CAMPAIGN_BINS_OK
        } else {
            finrad_observe::keys::CAMPAIGN_BINS_FAILED
        },
        1,
    );
    match result {
        Ok(est) => {
            #[cfg(feature = "fault-injection")]
            let est = {
                let mut est = est;
                if cfg.fault_plan.poison_samples.contains(&k) {
                    est.push(crate::strike::IterationOutcome {
                        pof_total: f64::NAN,
                        pof_seu: f64::NAN,
                        pof_mbu: f64::NAN,
                        cells_struck: 0,
                    });
                }
                est
            };
            #[allow(unused_mut)]
            let mut bin = PofBin {
                spectrum: *sb,
                pof_total: est.total.mean(),
                pof_seu: est.seu.mean(),
                pof_mbu: est.mbu.mean(),
            };
            #[cfg(feature = "fault-injection")]
            if cfg.fault_plan.poison_bins.contains(&k) {
                bin.pof_total = f64::NAN;
                bin.pof_seu = f64::NAN;
                bin.pof_mbu = f64::NAN;
            }
            Ok(BinOutcome::Ok {
                bin,
                quarantined: est.quarantined,
            })
        }
        Err(payload) => Err(payload_message(payload.as_ref())),
    }
}

/// Maps checkpointed bin records back onto a campaign's outcome table
/// (`None` = not yet computed). Shared by [`CampaignRunner::resume`] and
/// the campaign service's prepare step.
pub(crate) fn prefill_outcomes(
    prior: Vec<BinRecord>,
    spectrum_bins: &[SpectrumBin],
) -> Result<Vec<Option<BinOutcome>>, CampaignError> {
    let total = spectrum_bins.len();
    let mut outcomes: Vec<Option<BinOutcome>> = vec![None; total];
    for rec in prior {
        let k = rec.index();
        if k >= total {
            return Err(CheckpointError::Corrupt(format!(
                "bin index {k} out of range for {total} bins"
            ))
            .into());
        }
        outcomes[k] = Some(match rec {
            BinRecord::Ok {
                pof_total,
                pof_seu,
                pof_mbu,
                quarantined,
                ..
            } => BinOutcome::Ok {
                bin: PofBin {
                    spectrum: spectrum_bins[k],
                    pof_total,
                    pof_seu,
                    pof_mbu,
                },
                quarantined,
            },
            BinRecord::Failed { error, .. } => BinOutcome::Failed { error },
        });
    }
    Ok(outcomes)
}

/// Folds per-bin outcomes into a [`CampaignReport`] (Eq. 8 over the
/// covered bins plus the explicit [`Coverage`] summary). Shared by
/// [`CampaignRunner`] and the campaign service.
pub(crate) fn integrate_outcomes(
    particle: Particle,
    vdd: Voltage,
    outcomes: Vec<Option<BinOutcome>>,
    array: &crate::array::MemoryArray,
    spectrum_bins: &[SpectrumBin],
) -> Result<CampaignReport, CampaignError> {
    let total = outcomes.len();
    let outcomes: Vec<BinOutcome> = outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| BinOutcome::Failed {
                error: "bin never scheduled (internal accounting error)".into(),
            })
        })
        .collect();
    let ok_pof_bins: Vec<PofBin> = outcomes
        .iter()
        .filter_map(|o| match o {
            BinOutcome::Ok { bin, .. } => Some(*bin),
            BinOutcome::Failed { .. } => None,
        })
        .collect();
    if ok_pof_bins.is_empty() {
        return Err(CampaignError::NoCoverage { total_bins: total });
    }
    let (fit, non_finite_bins) = fit_rate_checked(&ok_pof_bins, array.footprint());
    let quarantined_samples: u64 = outcomes
        .iter()
        .map(|o| match o {
            BinOutcome::Ok { quarantined, .. } => *quarantined,
            BinOutcome::Failed { .. } => 0,
        })
        .sum();
    let total_flux: f64 = spectrum_bins
        .iter()
        .map(|sb| sb.integral_flux.per_m2_second())
        .sum();
    let covered_flux: f64 = ok_pof_bins
        .iter()
        .filter(|b| b.pof_total.is_finite() && b.pof_seu.is_finite() && b.pof_mbu.is_finite())
        .map(|b| b.spectrum.integral_flux.per_m2_second())
        .sum();
    let coverage = Coverage {
        total_bins: total,
        ok_bins: ok_pof_bins.len(),
        failed_bins: total - ok_pof_bins.len(),
        non_finite_bins,
        quarantined_samples,
        flux_fraction: if total_flux > 0.0 {
            covered_flux / total_flux
        } else {
            1.0
        },
    };
    Ok(CampaignReport {
        particle,
        vdd,
        fit,
        outcomes,
        coverage,
    })
}

/// Builds the on-disk snapshot for the outcomes computed so far. Shared
/// by [`CampaignRunner::save_checkpoint`] and the service's drain flush.
pub(crate) fn build_checkpoint(
    config: &CampaignConfig,
    outcomes: &[Option<BinOutcome>],
) -> Checkpoint {
    let bins: Vec<BinRecord> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(k, o)| o.as_ref().map(|o| (k, o)))
        .map(|(k, o)| match o {
            BinOutcome::Ok { bin, quarantined } => BinRecord::Ok {
                index: k,
                pof_total: bin.pof_total,
                pof_seu: bin.pof_seu,
                pof_mbu: bin.pof_mbu,
                quarantined: *quarantined,
                energy_joules: bin.spectrum.energy.joules(),
                flux_per_m2_s: bin.spectrum.integral_flux.per_m2_second(),
            },
            BinOutcome::Failed { error } => BinRecord::Failed {
                index: k,
                error: error.clone(),
            },
        })
        .collect();
    Checkpoint {
        fingerprint: config_fingerprint(&config.pipeline, config.particle, config.vdd),
        particle: config.particle,
        vdd_bits: config.vdd.volts().to_bits(),
        total_bins: outcomes.len(),
        bins,
    }
}

/// Loads a checkpoint, classifying partial writes as the typed
/// [`CampaignError::CheckpointTruncated`] instead of generic corruption.
///
/// Two truncation shapes exist: the file ends before its checksum line
/// (the parser's [`CheckpointError::Truncated`]), and the file is cut
/// mid-line — which the grammar can only see as a malformed field. The
/// latter is disambiguated here without touching the parser: a complete
/// snapshot (`Checkpoint::to_text`) always ends with a newline, so a
/// `Corrupt` file whose last byte is not `\n` was interrupted mid-write.
pub(crate) fn load_checkpoint_classified(path: &Path) -> Result<Checkpoint, CampaignError> {
    match Checkpoint::load(path) {
        Err(CheckpointError::Truncated) => Err(CampaignError::CheckpointTruncated {
            path: path.to_path_buf(),
            detail: "file ends before its checksum line".into(),
        }),
        Err(CheckpointError::Corrupt(msg)) => {
            let cut_mid_line = std::fs::read(path)
                .map(|bytes| !bytes.is_empty() && bytes.last() != Some(&b'\n'))
                .unwrap_or(false);
            if cut_mid_line {
                Err(CampaignError::CheckpointTruncated {
                    path: path.to_path_buf(),
                    detail: format!("file cut mid-line: {msg}"),
                })
            } else {
                Err(CheckpointError::Corrupt(msg).into())
            }
        }
        other => other.map_err(CampaignError::from),
    }
}

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministically flips one hex digit inside the checkpoint body so
/// the robustness suite can prove corruption is detected (the parser must
/// report [`CheckpointError::Corrupt`], never a silently-wrong resume).
/// Returns `false` when the file has no corruptible byte.
///
/// # Errors
///
/// Propagates filesystem errors.
#[cfg(feature = "fault-injection")]
pub fn corrupt_checkpoint(path: &std::path::Path, seed: u64) -> std::io::Result<bool> {
    let text = std::fs::read_to_string(path)?;
    // Only touch the body between the version header (flipping the
    // version digit would legitimately read as VersionMismatch) and the
    // checksum line — body corruption is the interesting case.
    let body_start = text.find('\n').map_or(0, |i| i + 1);
    let body_end = text.rfind("\nchecksum ").map_or(text.len(), |i| i + 1);
    let candidates: Vec<usize> = text[body_start..body_end]
        .bytes()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_hexdigit())
        .map(|(i, _)| body_start + i)
        .collect();
    if candidates.is_empty() {
        return Ok(false);
    }
    let pos = candidates[(seed as usize) % candidates.len()];
    let mut bytes = text.into_bytes();
    bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
    std::fs::write(path, &bytes)?;
    Ok(true)
}
