//! Supervised campaign service: a threaded job-queue daemon over the
//! campaign runtime.
//!
//! [`CampaignService`] accepts [`CampaignConfig`] specs and executes them
//! on a pool of worker threads, sharding each campaign's energy bins
//! across per-worker queues with work stealing. Every unit of work runs
//! inside a supervision envelope:
//!
//! - **Crash isolation** — a panicking bin is caught (`catch_unwind` via
//!   the shared campaign envelope) and never takes down a worker or the
//!   daemon.
//! - **Retry with deterministic backoff** — a crashed bin is re-queued up
//!   to [`ServiceConfig::max_retries`] times; the delay before each retry
//!   comes from [`backoff_schedule`], a pure function of the campaign
//!   seed, so the schedule is reproducible run-to-run.
//! - **Quarantine** — a bin that exhausts its retries is recorded on the
//!   dead-letter list ([`CampaignService::dead_letters`]) with its
//!   captured panic message, and the job degrades to partial coverage
//!   instead of failing outright.
//! - **Deadlines** — each job can carry a wall-clock deadline
//!   ([`ServiceConfig::job_deadline`]) enforced through a cooperative
//!   [`CancelToken`]: the SPICE characterization polls it between Newton
//!   solves, and workers poll it at bin boundaries. An expired job ends
//!   in [`JobError::DeadlineExceeded`]; the daemon keeps serving.
//! - **Result cache** — submissions are keyed by the campaign's
//!   checkpoint fingerprint; an identical spec returns the cached report
//!   without re-running SPICE, and concurrent identical submissions
//!   coalesce onto one execution.
//! - **Graceful shutdown** — [`CampaignService::drain`] finishes the
//!   queue first; [`CampaignService::shutdown_now`] stops after in-flight
//!   items and flushes each unfinished job's partial checkpoint, so a
//!   killed daemon resumes to a bit-identical [`CampaignReport`].
//!
//! Determinism: bins use the same per-bin seed derivation as
//! [`CampaignRunner`](crate::campaign::CampaignRunner) and integration
//! folds outcomes in bin order, so the report is bit-identical regardless
//! of worker count, scheduling order, retries, or interruption.
//!
//! Architecture details and the supervision state machine are documented
//! in `docs/service.md`.

use crate::array::MemoryArray;
use crate::campaign::{
    build_checkpoint, integrate_outcomes, load_checkpoint_classified, payload_message,
    prefill_outcomes, supervised_bin, BinOutcome, CampaignConfig, CampaignError, CampaignReport,
};
use crate::checkpoint::config_fingerprint;
use crate::pipeline::SerPipeline;
use crate::strike::{DepositMode, StrikeSimulator};
use crate::CoreError;
use finrad_environment::SpectrumBin;
use finrad_numerics::rng::{Rng, Xoshiro256pp};
use finrad_observe::keys;
use finrad_spice::cancel::install_scoped;
use finrad_spice::sync::{lock_recovering, wait_recovering, wait_timeout_recovering};
use finrad_spice::{CancelToken, SpiceError};
use finrad_sram::PofTable;
use finrad_transport::lut::EhpLut;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the service's worker pool and supervision envelope.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Retries granted to a crashed bin beyond its first attempt; after
    /// `max_retries + 1` panics the bin is quarantined.
    pub max_retries: u32,
    /// Base delay of the exponential retry backoff (attempt `a` waits
    /// roughly `base · 2^a` plus deterministic jitter).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Wall-clock budget per job, measured from submission; `None`
    /// disables deadlines.
    pub job_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            job_deadline: None,
        }
    }
}

/// Handle to a submitted campaign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Terminal failure of a job. Degraded-but-covered campaigns are *not*
/// errors — they complete with a [`Coverage`](crate::campaign::Coverage)
/// summary in the report.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The prepare step failed: characterization error, invalid config,
    /// or an unusable checkpoint (including the typed truncation and
    /// fingerprint-mismatch classifications).
    Setup(String),
    /// The job's wall-clock deadline expired before it finished.
    DeadlineExceeded,
    /// Every energy bin failed; there is no spectrum coverage to report.
    NoCoverage {
        /// Total bins attempted.
        total_bins: usize,
    },
    /// The completion checkpoint flush failed; the result is not cached
    /// because a resumed daemon could not reproduce it from disk.
    CheckpointFlush(String),
    /// The service was draining or shut down before the job could run.
    Draining,
    /// The job id was never issued by this service.
    Unknown,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Setup(msg) => write!(f, "job setup failed: {msg}"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::NoCoverage { total_bins } => write!(
                f,
                "no spectrum coverage: all {total_bins} energy bins failed"
            ),
            JobError::CheckpointFlush(msg) => {
                write!(f, "completion checkpoint flush failed: {msg}")
            }
            JobError::Draining => write!(f, "service is draining; job rejected"),
            JobError::Unknown => write!(f, "unknown job id"),
        }
    }
}

impl Error for JobError {}

/// What [`CampaignService::wait`] resolves to.
pub type JobResult = Result<Arc<CampaignReport>, JobError>;

/// Coarse progress of a job, for polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted; the prepare step has not produced a bin table yet.
    Queued,
    /// Bins are executing.
    Running {
        /// Bins in a terminal state (computed, planned-failed, or
        /// quarantined).
        completed_bins: usize,
        /// Total energy bins in the campaign.
        total_bins: usize,
    },
    /// Terminal; [`CampaignService::wait`] returns without blocking.
    Done,
}

/// One quarantined bin: it exhausted its retry budget and was excluded
/// from the job's integration as a failed bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The job the bin belonged to.
    pub job: JobId,
    /// The energy-bin index.
    pub bin: usize,
    /// Attempts consumed (first run plus retries).
    pub attempts: u32,
    /// The captured panic message of the final attempt.
    pub error: String,
}

/// Deterministic retry delay for `bin`'s zero-based retry `attempt`:
/// exponential `base · 2^attempt` plus a jitter draw in `[0, base)` from
/// the campaign seed's salted stream, capped at `cap`. A pure function —
/// the whole backoff schedule of a campaign is reproducible from its
/// seed, which the determinism-under-faults suite asserts.
pub fn backoff_schedule(
    campaign_seed: u64,
    bin: usize,
    attempt: u32,
    base: Duration,
    cap: Duration,
) -> Duration {
    let mut rng = Xoshiro256pp::salted_stream(campaign_seed, bin as u64, 0xC0FF_EE00_5EED_F00D);
    let mut jitter_word = 0u64;
    for _ in 0..=attempt {
        jitter_word = rng.next_u64();
    }
    let exp = base.saturating_mul(1u32 << attempt.min(20));
    let span = base.as_nanos().max(1) as u64;
    let raw = exp.saturating_add(Duration::from_nanos(jitter_word % span));
    if raw > cap {
        cap
    } else {
        raw
    }
}

/// Everything the bin stage needs, built once per job by the prepare
/// step. All fields are plain owned data, shared across workers by `Arc`.
struct Prepared {
    pipeline: SerPipeline,
    table: PofTable,
    array: MemoryArray,
    lut: Option<EhpLut>,
    bins: Vec<SpectrumBin>,
}

impl Prepared {
    fn run_bin(&self, cfg: &CampaignConfig, k: usize, attempt: u32) -> Result<BinOutcome, String> {
        let sim = StrikeSimulator::new(
            &self.array,
            self.pipeline.traversal(),
            &self.table,
            self.pipeline.direction_for(cfg.particle),
            cfg.pipeline.deposit,
            cfg.pipeline.flip_model,
            self.lut.as_ref(),
        );
        supervised_bin(&sim, cfg, k, &self.bins[k], attempt)
    }
}

enum WorkItem {
    Prepare(JobId),
    Bin {
        job: JobId,
        bin: usize,
        attempt: u32,
    },
}

struct Delayed {
    ready_at: Instant,
    item: WorkItem,
}

struct Job {
    config: Arc<CampaignConfig>,
    fingerprint: u64,
    token: CancelToken,
    submitted: Instant,
    prepared: Option<Arc<Prepared>>,
    outcomes: Vec<Option<BinOutcome>>,
    /// Bins not yet in a terminal state. The scheduling invariant: while
    /// the job is live, every non-terminal bin has exactly one item
    /// queued, delayed, or executing.
    remaining: usize,
}

enum Slot {
    /// A coalesced duplicate submission; resolves to its leader.
    Alias(JobId),
    /// A live job.
    Job(Box<Job>),
    /// A terminal result (completed, failed, cache hit, or rejected).
    Done(JobResult),
}

struct State {
    queues: Vec<VecDeque<WorkItem>>,
    delayed: Vec<Delayed>,
    jobs: HashMap<JobId, Slot>,
    cache: HashMap<u64, Arc<CampaignReport>>,
    /// Fingerprint → leader job currently executing it (for coalescing).
    inflight: HashMap<u64, JobId>,
    dead_letters: Vec<DeadLetter>,
    draining: bool,
    stopping: bool,
    next_job: u64,
    cursor: usize,
}

impl State {
    fn queued_items(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>() + self.delayed.len()
    }

    /// Round-robin enqueue; records the post-enqueue depth gauge.
    fn enqueue(&mut self, item: WorkItem) {
        let w = self.cursor % self.queues.len();
        self.cursor = self.cursor.wrapping_add(1);
        self.queues[w].push_back(item);
        finrad_observe::record(keys::SERVICE_QUEUE_DEPTH, self.queued_items() as f64);
    }

    /// Pops the worker's own queue front, else steals from the back of
    /// another worker's queue (classic work stealing: owners and thieves
    /// touch opposite ends).
    fn pop(&mut self, widx: usize) -> Option<WorkItem> {
        if let Some(item) = self.queues[widx].pop_front() {
            return Some(item);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(item) = self.queues[(widx + off) % n].pop_back() {
                finrad_observe::counter_add(keys::SERVICE_QUEUE_STEALS, 1);
                return Some(item);
            }
        }
        None
    }

    fn resolve(&self, mut id: JobId) -> JobId {
        let mut hops = 0;
        while let Some(Slot::Alias(next)) = self.jobs.get(&id) {
            id = *next;
            hops += 1;
            if hops > self.jobs.len() {
                break;
            }
        }
        id
    }

    fn job_mut(&mut self, id: JobId) -> Option<&mut Job> {
        match self.jobs.get_mut(&id) {
            Some(Slot::Job(job)) => Some(job),
            _ => None,
        }
    }

    /// Moves a live job to its terminal state and records the per-job
    /// metrics. The `Job` (and its `Prepared` data) is dropped; waiters
    /// observe `Slot::Done` after the caller notifies the condvar.
    fn finalize(&mut self, id: JobId, result: JobResult) {
        let Some(Slot::Job(job)) = self.jobs.remove(&id) else {
            return;
        };
        if self.inflight.get(&job.fingerprint) == Some(&id) {
            self.inflight.remove(&job.fingerprint);
        }
        let secs = job.submitted.elapsed().as_secs_f64();
        finrad_observe::record(keys::SERVICE_JOB_SECONDS, secs);
        match &result {
            Ok(report) => {
                finrad_observe::counter_add(keys::SERVICE_JOBS_COMPLETED, 1);
                if secs > 0.0 {
                    finrad_observe::record(
                        keys::SERVICE_BINS_PER_SEC,
                        report.coverage.total_bins as f64 / secs,
                    );
                }
            }
            Err(e) => {
                finrad_observe::counter_add(keys::SERVICE_JOBS_FAILED, 1);
                if *e == JobError::DeadlineExceeded {
                    finrad_observe::counter_add(keys::SERVICE_DEADLINE_CANCELLATIONS, 1);
                }
            }
        }
        self.jobs.insert(id, Slot::Done(result));
    }

    fn all_jobs_done(&self) -> bool {
        self.jobs.values().all(|slot| !matches!(slot, Slot::Job(_)))
    }
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    config: ServiceConfig,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A worker panicking with the lock held cannot happen (all job
        // code runs under catch_unwind off-lock), but poisoning must not
        // wedge the daemon regardless.
        lock_recovering(&self.state)
    }
}

/// The job-queue daemon. See the [module docs](self) for the supervision
/// contract; construction spawns the worker pool, drop stops it.
pub struct CampaignService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl CampaignService {
    /// Starts the daemon with `config.workers` worker threads.
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                delayed: Vec::new(),
                jobs: HashMap::new(),
                cache: HashMap::new(),
                inflight: HashMap::new(),
                dead_letters: Vec::new(),
                draining: false,
                stopping: false,
                next_job: 1,
                cursor: 0,
            }),
            cv: Condvar::new(),
            config,
        });
        let handles = (0..workers)
            .map(|widx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, widx))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Submits a campaign. Identical specs (same checkpoint fingerprint)
    /// are deduplicated: a finished result is answered from the cache
    /// without re-running SPICE, and a spec currently executing is
    /// coalesced onto the running job. Returns immediately; resolve the
    /// job with [`CampaignService::wait`].
    pub fn submit(&self, config: CampaignConfig) -> JobId {
        let fingerprint = config_fingerprint(&config.pipeline, config.particle, config.vdd);
        let mut st = self.shared.lock();
        let id = JobId(st.next_job);
        st.next_job += 1;
        finrad_observe::counter_add(keys::SERVICE_JOBS_SUBMITTED, 1);
        if st.draining || st.stopping {
            st.jobs.insert(id, Slot::Done(Err(JobError::Draining)));
            drop(st);
            self.shared.cv.notify_all();
            return id;
        }
        if let Some(report) = st.cache.get(&fingerprint) {
            finrad_observe::counter_add(keys::SERVICE_CACHE_HITS, 1);
            let report = Arc::clone(report);
            st.jobs.insert(id, Slot::Done(Ok(report)));
            drop(st);
            self.shared.cv.notify_all();
            return id;
        }
        if let Some(leader) = st.inflight.get(&fingerprint) {
            finrad_observe::counter_add(keys::SERVICE_JOBS_COALESCED, 1);
            let leader = *leader;
            st.jobs.insert(id, Slot::Alias(leader));
            return id;
        }
        finrad_observe::counter_add(keys::SERVICE_CACHE_MISSES, 1);
        let deadline_token = match self.shared.config.job_deadline {
            Some(budget) => CancelToken::with_deadline(Instant::now() + budget),
            None => CancelToken::new(),
        };
        st.jobs.insert(
            id,
            Slot::Job(Box::new(Job {
                config: Arc::new(config),
                fingerprint,
                token: deadline_token,
                submitted: Instant::now(),
                prepared: None,
                outcomes: Vec::new(),
                remaining: 0,
            })),
        );
        st.inflight.insert(fingerprint, id);
        st.enqueue(WorkItem::Prepare(id));
        drop(st);
        self.shared.cv.notify_all();
        id
    }

    /// Blocks until the job is terminal and returns its result. Waiting
    /// on a coalesced duplicate resolves to its leader's result.
    pub fn wait(&self, id: JobId) -> JobResult {
        let mut st = self.shared.lock();
        loop {
            let rid = st.resolve(id);
            match st.jobs.get(&rid) {
                None => return Err(JobError::Unknown),
                Some(Slot::Done(result)) => return result.clone(),
                Some(_) => {}
            }
            st = wait_recovering(&self.shared.cv, st);
        }
    }

    /// Non-blocking progress probe.
    pub fn status(&self, id: JobId) -> JobStatus {
        let st = self.shared.lock();
        let rid = st.resolve(id);
        match st.jobs.get(&rid) {
            Some(Slot::Job(job)) => match &job.prepared {
                Some(_) => JobStatus::Running {
                    completed_bins: job.outcomes.len() - job.remaining,
                    total_bins: job.outcomes.len(),
                },
                None => JobStatus::Queued,
            },
            _ => JobStatus::Done,
        }
    }

    /// Snapshot of the quarantine list.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.shared.lock().dead_letters.clone()
    }

    /// Explicitly cancels a job (its in-flight bins finish, queued ones
    /// are discarded; the job resolves to
    /// [`JobError::DeadlineExceeded`]-style cancellation via its token).
    pub fn cancel(&self, id: JobId) {
        let st = self.shared.lock();
        let rid = st.resolve(id);
        if let Some(Slot::Job(job)) = st.jobs.get(&rid) {
            job.token.cancel();
        }
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Finishes every submitted job (new submissions are rejected with
    /// [`JobError::Draining`] from this point on) and blocks until the
    /// queue is empty. Workers stay parked; results remain queryable via
    /// [`CampaignService::wait`] until the service is dropped.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        st.draining = true;
        self.shared.cv.notify_all();
        while !st.all_jobs_done() {
            st = wait_recovering(&self.shared.cv, st);
        }
    }

    /// Stops the pool after in-flight items only: queued jobs resolve to
    /// [`JobError::Draining`], and every unfinished job with progress
    /// gets its partial checkpoint flushed so a successor daemon resumes
    /// bit-identically. Idempotent; also run on drop.
    pub fn shutdown_now(&self) {
        {
            let mut st = self.shared.lock();
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        let handles = std::mem::take(&mut *lock_recovering(&self.workers));
        for handle in handles {
            // A worker that panicked has already dead-lettered its item;
            // its join error carries nothing further to handle.
            // finrad-lint: allow(result-discard-audit)
            let _ = handle.join();
        }
        // Workers are gone: whatever is still live was interrupted.
        let mut st = self.shared.lock();
        let interrupted: Vec<JobId> = st
            .jobs
            .iter()
            .filter(|(_, slot)| matches!(slot, Slot::Job(_)))
            .map(|(id, _)| *id)
            .collect();
        for id in interrupted {
            // Checkpoint I/O under the state lock is deliberate here: the
            // workers are already joined, so nothing contends, and holding
            // `st` keeps the flush + finalize transition atomic.
            // finrad-lint: allow(guard-lifetime-audit)
            let result = flush_partial(&mut st, id);
            st.finalize(id, Err(result));
        }
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Flushes the partial checkpoint of an interrupted job (lock held; the
/// worker pool has already exited, so the held lock is uncontended).
fn flush_partial(st: &mut State, id: JobId) -> JobError {
    let Some(job) = st.job_mut(id) else {
        return JobError::Draining;
    };
    let has_progress = job.outcomes.iter().any(Option::is_some);
    if job.prepared.is_none() || !has_progress || job.config.checkpoint_path.is_none() {
        return JobError::Draining;
    }
    #[cfg(feature = "fault-injection")]
    if fault::take_checkpoint_failure() {
        return JobError::CheckpointFlush("injected checkpoint write failure".into());
    }
    let Some(path) = &job.config.checkpoint_path else {
        return JobError::Draining;
    };
    match build_checkpoint(&job.config, &job.outcomes).save(path) {
        Ok(()) => {
            finrad_observe::counter_add(keys::SERVICE_DRAIN_FLUSHES, 1);
            JobError::Draining
        }
        Err(e) => JobError::CheckpointFlush(e.to_string()),
    }
}

fn worker_loop(shared: &Arc<Shared>, widx: usize) {
    loop {
        let item = {
            let mut st = shared.lock();
            loop {
                if st.stopping {
                    return;
                }
                // Promote retries whose backoff has elapsed.
                let now = Instant::now();
                let mut i = 0;
                while i < st.delayed.len() {
                    if st.delayed[i].ready_at <= now {
                        let d = st.delayed.swap_remove(i);
                        st.enqueue(d.item);
                    } else {
                        i += 1;
                    }
                }
                if let Some(item) = st.pop(widx) {
                    break item;
                }
                match st.delayed.iter().map(|d| d.ready_at).min() {
                    Some(ready_at) => {
                        let wait = ready_at.saturating_duration_since(Instant::now());
                        let (guard, _) = wait_timeout_recovering(&shared.cv, st, wait);
                        st = guard;
                    }
                    None => {
                        st = wait_recovering(&shared.cv, st);
                    }
                }
            }
        };
        match item {
            WorkItem::Prepare(id) => do_prepare(shared, id),
            WorkItem::Bin { job, bin, attempt } => do_bin(shared, job, bin, attempt),
        }
    }
}

/// Classifies a prepare-stage pipeline error: a characterization aborted
/// by the job's own cancellation token is a deadline, not a setup bug.
fn classify_setup(e: CoreError) -> JobError {
    match e {
        CoreError::Characterization(SpiceError::Cancelled { .. }) => JobError::DeadlineExceeded,
        other => JobError::Setup(format!("campaign setup failed: {other}")),
    }
}

/// The prepare stage, run off-lock: characterize the cell, build the
/// array/traversal/LUT, and prefill outcomes from a checkpoint if one
/// exists on disk.
fn prepare_job(cfg: &CampaignConfig) -> Result<(Prepared, Vec<Option<BinOutcome>>), JobError> {
    let pipeline = SerPipeline::new(cfg.pipeline.clone());
    let table = pipeline.build_pof_table(cfg.vdd).map_err(classify_setup)?;
    let bins = pipeline.energy_bins(cfg.particle);
    let array = pipeline.build_array();
    let lut = (cfg.pipeline.deposit == DepositMode::LutMean)
        .then(|| pipeline.build_ehp_lut(cfg.particle));
    let mut outcomes = vec![None; bins.len()];
    if let Some(path) = &cfg.checkpoint_path {
        if path.exists() {
            let ck =
                load_checkpoint_classified(path).map_err(|e| JobError::Setup(e.to_string()))?;
            let expected = config_fingerprint(&cfg.pipeline, cfg.particle, cfg.vdd);
            if ck.fingerprint != expected {
                return Err(JobError::Setup(
                    CampaignError::ConfigMismatch {
                        expected,
                        found: ck.fingerprint,
                    }
                    .to_string(),
                ));
            }
            outcomes =
                prefill_outcomes(ck.bins, &bins).map_err(|e| JobError::Setup(e.to_string()))?;
        }
    }
    Ok((
        Prepared {
            pipeline,
            table,
            array,
            lut,
            bins,
        },
        outcomes,
    ))
}

fn do_prepare(shared: &Arc<Shared>, id: JobId) {
    let (cfg, token) = {
        let mut st = shared.lock();
        let Some(job) = st.job_mut(id) else {
            return; // stale item for a finished job
        };
        let token = job.token.clone();
        if token.is_cancelled() {
            st.finalize(id, Err(JobError::DeadlineExceeded));
            drop(st);
            shared.cv.notify_all();
            return;
        }
        (Arc::clone(&job.config), token)
    };
    let scope = install_scoped(&token);
    let built = catch_unwind(AssertUnwindSafe(|| prepare_job(&cfg)));
    drop(scope);
    let mut st = shared.lock();
    match built {
        Err(payload) => {
            st.finalize(
                id,
                Err(JobError::Setup(format!(
                    "prepare panicked: {}",
                    payload_message(payload.as_ref())
                ))),
            );
        }
        Ok(Err(e)) => {
            st.finalize(id, Err(e));
        }
        Ok(Ok((prepared, outcomes))) => {
            let Some(job) = st.job_mut(id) else {
                return;
            };
            let remaining = outcomes.iter().filter(|o| o.is_none()).count();
            job.prepared = Some(Arc::new(prepared));
            job.outcomes = outcomes;
            job.remaining = remaining;
            if remaining == 0 {
                // Fully resumed from checkpoint: straight to completion.
                if let Some(work) = take_completion(&mut st, id) {
                    drop(st);
                    complete_job(shared, id, work);
                    return;
                }
            } else {
                let missing: Vec<usize> = job
                    .outcomes
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_none())
                    .map(|(k, _)| k)
                    .collect();
                for k in missing {
                    st.enqueue(WorkItem::Bin {
                        job: id,
                        bin: k,
                        attempt: 0,
                    });
                }
            }
        }
    }
    drop(st);
    shared.cv.notify_all();
}

/// Everything the completion stage needs, detached from the state so the
/// integration and checkpoint flush run off-lock.
struct CompletionWork {
    config: Arc<CampaignConfig>,
    prepared: Arc<Prepared>,
    outcomes: Vec<Option<BinOutcome>>,
}

/// Detaches the completion inputs when the job's last bin just landed
/// (lock held). Returns `None` while bins remain.
fn take_completion(st: &mut State, id: JobId) -> Option<CompletionWork> {
    let job = st.job_mut(id)?;
    if job.remaining > 0 {
        return None;
    }
    let prepared = Arc::clone(job.prepared.as_ref()?);
    Some(CompletionWork {
        config: Arc::clone(&job.config),
        prepared,
        outcomes: std::mem::take(&mut job.outcomes),
    })
}

/// The completion stage, run off-lock by the worker that landed the last
/// bin: flush the checkpoint, integrate, publish to the cache.
fn complete_job(shared: &Arc<Shared>, id: JobId, work: CompletionWork) {
    let mut flush_error: Option<JobError> = None;
    if let Some(path) = &work.config.checkpoint_path {
        #[cfg(feature = "fault-injection")]
        let injected = fault::take_checkpoint_failure();
        #[cfg(not(feature = "fault-injection"))]
        let injected = false;
        if injected {
            flush_error = Some(JobError::CheckpointFlush(
                "injected checkpoint write failure".into(),
            ));
        } else if let Err(e) = build_checkpoint(&work.config, &work.outcomes).save(path) {
            flush_error = Some(JobError::CheckpointFlush(e.to_string()));
        }
    }
    let result: JobResult = match flush_error {
        Some(e) => Err(e),
        None => integrate_outcomes(
            work.config.particle,
            work.config.vdd,
            work.outcomes,
            &work.prepared.array,
            &work.prepared.bins,
        )
        .map(Arc::new)
        .map_err(|e| match e {
            CampaignError::NoCoverage { total_bins } => JobError::NoCoverage { total_bins },
            other => JobError::Setup(other.to_string()),
        }),
    };
    let mut st = shared.lock();
    let fingerprint = match st.jobs.get(&id) {
        Some(Slot::Job(job)) => Some(job.fingerprint),
        _ => None,
    };
    if let (Ok(report), Some(fp)) = (&result, fingerprint) {
        // Only complete-coverage reports are cacheable: a degraded run
        // re-submitted later deserves a fresh attempt at the failed bins.
        if report.coverage.is_complete() {
            st.cache.insert(fp, Arc::clone(report));
        }
    }
    st.finalize(id, result);
    drop(st);
    shared.cv.notify_all();
}

fn do_bin(shared: &Arc<Shared>, id: JobId, k: usize, attempt: u32) {
    let (cfg, token, prepared) = {
        let mut st = shared.lock();
        let Some(job) = st.job_mut(id) else {
            return; // stale item for a finished job
        };
        let token = job.token.clone();
        if token.is_cancelled() {
            st.finalize(id, Err(JobError::DeadlineExceeded));
            drop(st);
            shared.cv.notify_all();
            return;
        }
        let Some(prepared) = job.prepared.clone() else {
            return; // cannot happen: bins are enqueued only after prepare
        };
        (Arc::clone(&job.config), token, prepared)
    };
    #[cfg(feature = "fault-injection")]
    if let Some(delay) = fault::bin_delay() {
        std::thread::sleep(delay);
    }
    let scope = install_scoped(&token);
    let result = prepared.run_bin(&cfg, k, attempt);
    drop(scope);
    let completion = {
        let mut st = shared.lock();
        let Some(job) = st.job_mut(id) else {
            return;
        };
        match result {
            Ok(outcome) => {
                job.outcomes[k] = Some(outcome);
                job.remaining -= 1;
            }
            Err(panic_msg) => {
                if attempt < shared.config.max_retries {
                    finrad_observe::counter_add(keys::SERVICE_BIN_RETRIES, 1);
                    let delay = backoff_schedule(
                        cfg.pipeline.seed,
                        k,
                        attempt,
                        shared.config.backoff_base,
                        shared.config.backoff_cap,
                    );
                    st.delayed.push(Delayed {
                        ready_at: Instant::now() + delay,
                        item: WorkItem::Bin {
                            job: id,
                            bin: k,
                            attempt: attempt + 1,
                        },
                    });
                    drop(st);
                    shared.cv.notify_all();
                    return;
                }
                finrad_observe::counter_add(keys::SERVICE_BINS_QUARANTINED, 1);
                let attempts = attempt + 1;
                job.outcomes[k] = Some(BinOutcome::Failed {
                    error: format!("bin {k} quarantined after {attempts} attempts: {panic_msg}"),
                });
                job.remaining -= 1;
                st.dead_letters.push(DeadLetter {
                    job: id,
                    bin: k,
                    attempts,
                    error: panic_msg,
                });
            }
        }
        take_completion(&mut st, id)
    };
    match completion {
        Some(work) => complete_job(shared, id, work),
        None => shared.cv.notify_all(),
    }
}

/// Service-level fault points, compiled only with `fault-injection`.
/// Process-global like the SPICE injector: tests that arm them must
/// serialize behind a shared mutex.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static CKPT_FAIL_REMAINING: AtomicU64 = AtomicU64::new(0);
    static BIN_DELAY_MILLIS: AtomicU64 = AtomicU64::new(0);

    /// The next `count` checkpoint flushes (completion or drain) fail
    /// with [`JobError::CheckpointFlush`](super::JobError::CheckpointFlush).
    pub fn arm_checkpoint_failure(count: u64) {
        CKPT_FAIL_REMAINING.store(count, Ordering::SeqCst);
    }

    /// Every bin execution sleeps for `delay` before running — slows the
    /// service down deterministically so shutdown tests can interrupt a
    /// campaign mid-shard.
    pub fn arm_bin_delay(delay: Duration) {
        BIN_DELAY_MILLIS.store(delay.as_millis() as u64, Ordering::SeqCst);
    }

    /// Disarms all service fault points (idempotent).
    pub fn disarm() {
        CKPT_FAIL_REMAINING.store(0, Ordering::SeqCst);
        BIN_DELAY_MILLIS.store(0, Ordering::SeqCst);
    }

    pub(crate) fn take_checkpoint_failure() -> bool {
        CKPT_FAIL_REMAINING
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok()
    }

    pub(crate) fn bin_delay() -> Option<Duration> {
        let millis = BIN_DELAY_MILLIS.load(Ordering::SeqCst);
        (millis > 0).then(|| Duration::from_millis(millis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_in_attempt() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_secs(1);
        let a = backoff_schedule(42, 3, 0, base, cap);
        let b = backoff_schedule(42, 3, 0, base, cap);
        assert_eq!(a, b, "same seed/bin/attempt must give the same delay");
        assert!(a >= base && a < base * 2 + base, "exp + jitter bounds");
        // Different bins draw different jitter.
        let other_bin = backoff_schedule(42, 4, 0, base, cap);
        assert!(other_bin >= base);
        // The exponential component grows until the cap bites.
        let late = backoff_schedule(42, 3, 9, base, cap);
        assert!(late >= a);
        assert!(
            backoff_schedule(42, 3, 30, base, Duration::from_millis(80))
                <= Duration::from_millis(80)
        );
    }

    #[test]
    fn queue_depth_round_robins_and_steals() {
        let mut st = State {
            queues: vec![VecDeque::new(), VecDeque::new()],
            delayed: Vec::new(),
            jobs: HashMap::new(),
            cache: HashMap::new(),
            inflight: HashMap::new(),
            dead_letters: Vec::new(),
            draining: false,
            stopping: false,
            next_job: 1,
            cursor: 0,
        };
        for k in 0..4 {
            st.enqueue(WorkItem::Bin {
                job: JobId(1),
                bin: k,
                attempt: 0,
            });
        }
        assert_eq!(st.queues[0].len(), 2);
        assert_eq!(st.queues[1].len(), 2);
        // Worker 0 drains its own queue front-first, then steals from the
        // back of worker 1's queue.
        let order: Vec<usize> = (0..4)
            .filter_map(|_| match st.pop(0) {
                Some(WorkItem::Bin { bin, .. }) => Some(bin),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![0, 2, 3, 1]);
        assert!(st.pop(0).is_none());
    }
}
