//! The array-level strike Monte Carlo (the paper's Section 5.1).
//!
//! Each iteration follows the paper's six steps: generate a random
//! particle; find the struck fins by 3-D ray tracing through the array
//! layout; obtain the electron–hole pairs for each struck fin; convert the
//! pairs of *sensitive* fins into collected charge; look up per-cell POF;
//! and combine the cells with Eqs. 4–6 into total/SEU/MBU probabilities.
//! Iterations are averaged, and distributed across worker threads in
//! fixed-size logical chunks of [`MC_CHUNK_ITERATIONS`] iterations whose
//! RNG streams are derived from the chunk index — never from the worker
//! thread — so same-seed results are bit-identical on any host (see
//! [`StrikeSimulator::estimate`]).

use crate::array::{clamp_pof, MemoryArray};
use finrad_geometry::trace::trace_boxes;
use finrad_geometry::{sampling, Aabb, Ray};
use finrad_numerics::rng::{Rng, Xoshiro256pp};
use finrad_numerics::stats::RunningStats;
use finrad_sram::{PofCurve, PofTable, StrikeCombo, StrikeTarget};
use finrad_transport::fin::FinTraversal;
use finrad_transport::lut::EhpLut;
use finrad_transport::straggling::{deposit_exceedance, landau_params, LandauParams};
use finrad_units::{constants, Charge, Energy, Particle};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of one logical Monte-Carlo chunk. The iteration space of an
/// estimate is split into consecutive chunks of this many iterations, each
/// with an RNG stream derived from `seed` and the *chunk index*. Worker
/// threads pull whole chunks, so the set of random streams — and therefore
/// the result — does not depend on how many workers the host offers.
pub const MC_CHUNK_ITERATIONS: u64 = 4096;

/// Splits `iterations` into [`MC_CHUNK_ITERATIONS`]-sized chunks, runs
/// `chunk_fn(chunk_index, chunk_len)` for each across `threads` workers,
/// and merges the partial estimates **in chunk order**. Both the per-chunk
/// streams and the merge order are independent of `threads`, which is what
/// makes same-seed results bit-identical across hosts.
pub(crate) fn estimate_chunked<F>(
    iterations: u64,
    threads: NonZeroUsize,
    chunk_fn: F,
) -> ArrayPofEstimate
where
    F: Fn(u64, u64) -> ArrayPofEstimate + Sync,
{
    let n_chunks = iterations.div_ceil(MC_CHUNK_ITERATIONS);
    let threads = (threads.get() as u64).min(n_chunks).max(1);
    let next = AtomicU64::new(0);
    let worker = || {
        let mut out: Vec<(u64, ArrayPofEstimate)> = Vec::new();
        loop {
            let c = next.fetch_add(1, Ordering::SeqCst);
            if c >= n_chunks {
                break;
            }
            let start = c * MC_CHUNK_ITERATIONS;
            let len = MC_CHUNK_ITERATIONS.min(iterations - start);
            out.push((c, chunk_fn(c, len)));
        }
        out
    };
    let mut partials: Vec<(u64, ArrayPofEstimate)> = if threads == 1 {
        worker()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(r) => r,
                    // Forward the worker's own panic payload instead of
                    // replacing it with a generic message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };
    // The merge order must match the chunk order, not the (thread-count
    // and scheduling dependent) completion order: Welford merging is not
    // bit-associative.
    partials.sort_by_key(|&(c, _)| c);
    let mut out = ArrayPofEstimate::default();
    for (_, p) in &partials {
        out.merge(p);
    }
    out
}

/// How particle arrival directions are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionLaw {
    /// Lambertian (cos θ-weighted) downward flux — the flux a horizontal
    /// die surface sees from an isotropic upper-hemisphere source.
    #[default]
    CosineDown,
    /// Uniform over the downward hemisphere (more grazing tracks; useful
    /// to stress MBU behaviour).
    IsotropicDown,
}

/// How deposited pairs are obtained for a struck fin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepositMode {
    /// Chord-exact: stopping power × actual chord through the struck box,
    /// with straggling — physically the most faithful.
    #[default]
    ChordExact,
    /// Paper-faithful LUT mode: the mean pair count of the device-level
    /// LUT at the particle energy, independent of the actual chord (the
    /// paper's hierarchical simplification). Requires an [`EhpLut`].
    LutMean,
}

/// How the straggling randomness enters the per-cell flip probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlipModel {
    /// Sample one deposit per crossing and look its charge up in the POF
    /// curve — the paper's literal procedure. Rare tail-driven flips
    /// (protons!) then need enormous iteration counts to resolve.
    Sampled,
    /// Conditional expectation over the straggling distribution: each
    /// struck cell contributes its *exact* flip probability
    /// `P(flip) = mean_i P(deposit ≥ Q_crit,i)`, evaluated with the Moyal
    /// survival function. Identical expectation to `Sampled` (Fano
    /// fluctuation, which is ≪ straggling here, is folded into the mean),
    /// but with geometry-only variance — the variance reduction that makes
    /// proton statistics tractable.
    #[default]
    Expected,
}

/// Per-iteration outcome: the Eqs. 4–6 probabilities for one particle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationOutcome {
    /// POF_tot of Eq. 4.
    pub pof_total: f64,
    /// POF_SEU of Eq. 5.
    pub pof_seu: f64,
    /// POF_MBU of Eq. 6.
    pub pof_mbu: f64,
    /// Number of distinct cells that collected any charge.
    pub cells_struck: usize,
}

/// Aggregated Monte-Carlo estimate over many iterations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrayPofEstimate {
    /// Statistics of POF_tot across iterations.
    pub total: RunningStats,
    /// Statistics of POF_SEU across iterations.
    pub seu: RunningStats,
    /// Statistics of POF_MBU across iterations.
    pub mbu: RunningStats,
    /// Iterations rejected at this accumulator boundary because any POF
    /// observable was NaN/Inf: poisoned samples never reach the
    /// statistics, and the count surfaces in campaign reports.
    pub quarantined: u64,
}

impl ArrayPofEstimate {
    /// Merges a partial estimate (from another worker) into this one.
    pub fn merge(&mut self, other: &ArrayPofEstimate) {
        self.total.merge(&other.total);
        self.seu.merge(&other.seu);
        self.mbu.merge(&other.mbu);
        self.quarantined += other.quarantined;
    }

    /// Records one iteration. A NaN/Inf observable quarantines the whole
    /// iteration (all three statistics must stay count-aligned) instead of
    /// poisoning the Welford accumulators irreversibly.
    pub fn push(&mut self, o: IterationOutcome) {
        let finite = o.pof_total.is_finite() && o.pof_seu.is_finite() && o.pof_mbu.is_finite();
        if !finite {
            self.quarantined += 1;
            return;
        }
        self.total.push(o.pof_total);
        self.seu.push(o.pof_seu);
        self.mbu.push(o.pof_mbu);
    }

    /// MBU/SEU ratio of the means (the paper's Fig. 10 quantity), as a
    /// fraction (multiply by 100 for percent). Returns 0 when there is no
    /// upset mass at all, and `f64::INFINITY` when MBU mass exists without
    /// any SEU mass — that degenerate spectrum must not masquerade as
    /// "no MBU" (see [`crate::fit::mbu_to_seu_ratio`]).
    pub fn mbu_to_seu(&self) -> f64 {
        crate::fit::mbu_to_seu_ratio(self.mbu.mean(), self.seu.mean())
    }
}

/// Combines per-cell POFs with the paper's Eqs. 4–6.
///
/// # Examples
///
/// ```
/// use finrad_core::strike::combine_cell_pofs;
///
/// let o = combine_cell_pofs(&[0.5, 0.5]);
/// assert!((o.pof_total - 0.75).abs() < 1e-12);
/// assert!((o.pof_seu - 0.5).abs() < 1e-12);  // 2 * 0.5 * 0.5
/// assert!((o.pof_mbu - 0.25).abs() < 1e-12);
/// ```
pub fn combine_cell_pofs(pofs: &[f64]) -> IterationOutcome {
    // NaN entries are allowed and propagate into the outcome, where the
    // accumulator-level quarantine rejects the whole iteration.
    debug_assert!(pofs.iter().all(|p| p.is_nan() || (0.0..=1.0).contains(p)));
    // Eq. 4: POF_tot = 1 − Π (1 − p_i)
    let prod_all: f64 = pofs.iter().map(|p| 1.0 - p).product();
    let pof_total = 1.0 - prod_all;
    // Eq. 5: POF_SEU = Σ_i [ p_i · Π_{j≠i} (1 − p_j) ]
    let mut pof_seu = 0.0;
    for i in 0..pofs.len() {
        let mut term = pofs[i];
        for (j, p) in pofs.iter().enumerate() {
            if j != i {
                term *= 1.0 - p;
            }
        }
        pof_seu += term;
    }
    // Eq. 6.
    let pof_mbu = (pof_total - pof_seu).max(0.0);
    IterationOutcome {
        pof_total,
        pof_seu,
        pof_mbu,
        cells_struck: pofs.len(),
    }
}

/// Exact distribution of the number of flipped cells given independent
/// per-cell flip probabilities (Poisson-binomial, by dynamic programming).
/// Entry `k` of the result is `P(exactly k cells flip)`; the vector has
/// `pofs.len() + 1` entries.
///
/// This refines the paper's SEU/MBU split into a full upset-multiplicity
/// spectrum (1-bit, 2-bit, 3-bit, … upsets), which is what ECC designers
/// actually consume.
///
/// # Examples
///
/// ```
/// use finrad_core::strike::multiplicity_pmf;
///
/// let pmf = multiplicity_pmf(&[0.5, 0.5]);
/// assert!((pmf[0] - 0.25).abs() < 1e-12);
/// assert!((pmf[1] - 0.5).abs() < 1e-12);
/// assert!((pmf[2] - 0.25).abs() < 1e-12);
/// ```
pub fn multiplicity_pmf(pofs: &[f64]) -> Vec<f64> {
    debug_assert!(pofs.iter().all(|p| (0.0..=1.0).contains(p)));
    let mut pmf = vec![0.0; pofs.len() + 1];
    pmf[0] = 1.0;
    for (i, &p) in pofs.iter().enumerate() {
        // In-place DP, iterating counts downward.
        for k in (0..=i).rev() {
            let stay = pmf[k] * (1.0 - p);
            let flip = pmf[k] * p;
            pmf[k] = stay;
            pmf[k + 1] += flip;
        }
    }
    pmf
}

/// The array strike simulator binding geometry, transport and POF tables.
pub struct StrikeSimulator<'a> {
    array: &'a MemoryArray,
    boxes: Vec<Aabb>,
    traversal: FinTraversal,
    lut: Option<&'a EhpLut>,
    pof: &'a PofTable,
    direction: DirectionLaw,
    deposit: DepositMode,
    flip_model: FlipModel,
}

impl<'a> StrikeSimulator<'a> {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `deposit` is [`DepositMode::LutMean`] but no LUT is given,
    /// or if [`FlipModel::Expected`] is combined with LUT deposits (the
    /// expectation integrates the chord-exact straggling distribution).
    pub fn new(
        array: &'a MemoryArray,
        traversal: FinTraversal,
        pof: &'a PofTable,
        direction: DirectionLaw,
        deposit: DepositMode,
        flip_model: FlipModel,
        lut: Option<&'a EhpLut>,
    ) -> Self {
        assert!(
            deposit != DepositMode::LutMean || lut.is_some(),
            "LutMean deposit mode requires an electron-hole pair LUT"
        );
        assert!(
            !(deposit == DepositMode::LutMean && flip_model == FlipModel::Expected),
            "the Expected flip model requires chord-exact deposits"
        );
        Self {
            array,
            boxes: array.fin_boxes(),
            traversal,
            lut,
            pof,
            direction,
            deposit,
            flip_model,
        }
    }

    /// The POF table in use.
    pub fn pof_table(&self) -> &PofTable {
        self.pof
    }

    /// Simulates one particle of `energy` forced to arrive on the array
    /// footprint (the paper's Fig. 8 condition: "the particle definitely
    /// hits the layout of the memory array").
    pub fn simulate_one<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        rng: &mut R,
    ) -> IterationOutcome {
        let launch = sampling::point_on_top_face(rng, &self.array.bounds());
        let dir = match self.direction {
            DirectionLaw::CosineDown => sampling::cosine_law_hemisphere(rng),
            DirectionLaw::IsotropicDown => {
                let mut d = sampling::isotropic_direction(rng);
                if d.z > 0.0 {
                    d.z = -d.z;
                }
                // Exact-zero guards the degenerate horizontal-ray case only.
                // finrad-lint: allow(float-discipline)
                if d.z == 0.0 {
                    d.z = -1.0e-6;
                }
                d
            }
        };
        let ray = Ray::new(launch, dir);
        self.simulate_ray(particle, energy, &ray, rng)
    }

    /// Simulates one explicit ray (used by tests and by alternative launch
    /// geometries).
    pub fn simulate_ray<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        ray: &Ray,
        rng: &mut R,
    ) -> IterationOutcome {
        combine_cell_pofs(&self.cell_pofs_for_ray(particle, energy, ray, rng))
    }

    /// The per-cell flip probabilities of one explicit ray, before the
    /// Eqs. 4-6 combination — the input to upset-multiplicity statistics
    /// ([`multiplicity_pmf`]). Empty when nothing sensitive was struck.
    pub fn cell_pofs_for_ray<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        ray: &Ray,
        rng: &mut R,
    ) -> Vec<f64> {
        let crossings = trace_boxes(ray, &self.boxes);
        if crossings.is_empty() {
            return Vec::new();
        }
        match self.flip_model {
            FlipModel::Sampled => self.resolve_sampled(particle, energy, &crossings, rng),
            FlipModel::Expected => self.resolve_expected(particle, energy, &crossings),
        }
    }

    /// The paper's literal procedure: one sampled deposit per crossing.
    fn resolve_sampled<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        crossings: &[finrad_geometry::trace::Crossing],
        rng: &mut R,
    ) -> Vec<f64> {
        // Step 2-3: pair generation per struck fin, degrading the particle
        // energy as it burrows through successive fins.
        let mut energy_left = energy;
        let mut charge_per_cell: BTreeMap<usize, Vec<(StrikeTarget, f64)>> = BTreeMap::new();
        for crossing in crossings {
            if energy_left.ev() <= 0.0 {
                break;
            }
            let fin = &self.array.fins()[crossing.index];
            let pairs = match self.deposit {
                DepositMode::ChordExact => {
                    let outcome =
                        self.traversal
                            .deposit(particle, energy_left, crossing.chord(), rng);
                    energy_left -= outcome.deposited;
                    outcome.pairs
                }
                DepositMode::LutMean => match self.lut {
                    Some(lut) => lut.mean_pairs(energy_left).round().max(0.0) as u64,
                    // The constructor enforces a LUT in LutMean mode; an
                    // impossible miss deposits nothing rather than
                    // panicking mid-campaign.
                    None => 0,
                },
            };
            if pairs == 0 {
                continue;
            }
            if let Some(target) = fin.target {
                let q = Charge::from_electrons(pairs as f64).coulombs();
                charge_per_cell
                    .entry(fin.cell)
                    .or_default()
                    .push((target, q));
            }
        }

        if charge_per_cell.is_empty() {
            return Vec::new();
        }

        // Step 4: POF per struck cell from the circuit-level LUT.
        let mut pofs: Vec<f64> = Vec::with_capacity(charge_per_cell.len());
        for (_cell, hits) in charge_per_cell {
            let targets: Vec<StrikeTarget> = hits.iter().map(|(t, _)| *t).collect();
            let combo = StrikeCombo::new(&targets);
            let total: f64 = hits.iter().map(|(_, q)| q).sum();
            // An uncharacterized combo becomes NaN and is counted by the
            // accumulator's quarantine instead of crashing the campaign.
            pofs.push(match self.pof.pof(combo, Charge::from_coulombs(total)) {
                Some(p) => clamp_pof(p),
                None => f64::NAN,
            });
        }
        pofs
    }

    /// Conditional expectation over straggling: each struck cell
    /// contributes `mean_i P(deposit ≥ Q_crit,i)` exactly.
    fn resolve_expected(
        &self,
        particle: Particle,
        energy: Energy,
        crossings: &[finrad_geometry::trace::Crossing],
    ) -> Vec<f64> {
        struct CellHit {
            targets: Vec<StrikeTarget>,
            mean_ev: f64,
            var_ev2: f64,
            available: Energy,
        }
        let mut per_cell: BTreeMap<usize, CellHit> = BTreeMap::new();
        let mut energy_left = energy;
        for crossing in crossings {
            if energy_left.ev() <= 0.0 {
                break;
            }
            let fin = &self.array.fins()[crossing.index];
            let params: LandauParams = landau_params(
                self.traversal.stopping(),
                particle,
                energy_left,
                crossing.chord(),
            );
            if let Some(target) = fin.target {
                let hit = per_cell.entry(fin.cell).or_insert_with(|| CellHit {
                    targets: Vec::new(),
                    mean_ev: 0.0,
                    var_ev2: 0.0,
                    available: energy_left,
                });
                hit.targets.push(target);
                hit.mean_ev += params.mean.ev();
                hit.var_ev2 += params.scale.ev() * params.scale.ev();
            }
            // Degrade the particle by the mean loss (the fluctuation's
            // effect on downstream fins is second order at nm scales).
            energy_left -= params.mean;
        }

        if per_cell.is_empty() {
            return Vec::new();
        }

        let pair_energy_ev = constants::EHP_PAIR_ENERGY.ev();
        let electron = constants::ELEMENTARY_CHARGE.coulombs();
        let mut pofs: Vec<f64> = Vec::with_capacity(per_cell.len());
        for (_cell, hit) in per_cell {
            let combo = StrikeCombo::new(&hit.targets);
            let Some(curve): Option<&PofCurve> = self.pof.curve(combo) else {
                // An uncharacterized combo cannot yield a probability.
                // Surface the iteration as a poisoned sample so the
                // accumulator-level NaN quarantine counts it instead of
                // panicking mid-campaign or silently skipping the cell.
                pofs.push(f64::NAN);
                continue;
            };
            // Multi-fin cells: approximate the sum of per-fin Moyal deposits
            // by a single Moyal with summed mean and quadrature-summed
            // scale (exact for the dominant single-fin case).
            let params = LandauParams {
                mean: Energy::from_ev(hit.mean_ev),
                scale: Energy::from_ev(hit.var_ev2.sqrt()),
            };
            let samples = curve.qcrit_samples();
            let mut acc = 0.0;
            for &qcrit in samples {
                let threshold = Energy::from_ev(qcrit / electron * pair_energy_ev);
                acc += deposit_exceedance(&params, threshold, hit.available);
            }
            pofs.push(acc / samples.len() as f64);
        }
        pofs
    }

    /// Expected rate of exactly-k-bit upsets per forced-hit particle, for
    /// `k = 0..=max_k` (the last entry aggregates `≥ max_k`). Runs
    /// `iterations` strikes and averages the exact per-iteration
    /// Poisson-binomial multiplicity distribution.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or `max_k == 0`.
    pub fn estimate_multiplicity(
        &self,
        particle: Particle,
        energy: Energy,
        iterations: u64,
        max_k: usize,
        seed: u64,
    ) -> Vec<f64> {
        assert!(iterations > 0, "need at least one iteration");
        assert!(max_k > 0, "need at least one multiplicity bin");
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut acc = vec![0.0; max_k + 1];
        for _ in 0..iterations {
            let launch = sampling::point_on_top_face(&mut rng, &self.array.bounds());
            let dir = match self.direction {
                DirectionLaw::CosineDown => sampling::cosine_law_hemisphere(&mut rng),
                DirectionLaw::IsotropicDown => {
                    let mut d = sampling::isotropic_direction(&mut rng);
                    if d.z >= 0.0 {
                        d.z = -(d.z.max(1.0e-6));
                    }
                    d
                }
            };
            let ray = Ray::new(launch, dir);
            let pofs = self.cell_pofs_for_ray(particle, energy, &ray, &mut rng);
            let pmf = multiplicity_pmf(&pofs);
            for (k, &p) in pmf.iter().enumerate() {
                acc[k.min(max_k)] += p;
            }
        }
        for v in &mut acc {
            *v /= iterations as f64;
        }
        acc
    }

    /// Runs `iterations` forced-hit strikes at one energy, split across
    /// `std::thread::available_parallelism()` workers.
    ///
    /// RNG streams are derived per [`MC_CHUNK_ITERATIONS`]-sized logical
    /// chunk, not per worker thread, so the result for a given `seed` is
    /// bit-identical regardless of the host's core count (enforced by a
    /// regression test against [`Self::estimate_with_threads`] at 1
    /// worker).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn estimate(
        &self,
        particle: Particle,
        energy: Energy,
        iterations: u64,
        seed: u64,
    ) -> ArrayPofEstimate {
        let threads = std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        self.estimate_with_threads(particle, energy, iterations, seed, threads)
    }

    /// [`Self::estimate`] with an explicit worker count. Any `threads`
    /// value yields the same bits; the knob exists for the determinism
    /// regression test and for callers that manage their own parallelism
    /// budget (e.g. nested campaign runners).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn estimate_with_threads(
        &self,
        particle: Particle,
        energy: Energy,
        iterations: u64,
        seed: u64,
        threads: NonZeroUsize,
    ) -> ArrayPofEstimate {
        assert!(iterations > 0, "need at least one iteration");
        let timer = finrad_observe::span(finrad_observe::keys::STRIKE_ESTIMATE_SECONDS);
        let out = estimate_chunked(iterations, threads, |chunk, len| {
            let mut rng = Xoshiro256pp::salted_stream(seed, chunk + 1, 0xD6E8_FEB8_6659_FD93);
            let mut acc = ArrayPofEstimate::default();
            for _ in 0..len {
                acc.push(self.simulate_one(particle, energy, &mut rng));
            }
            finrad_observe::counter_add(finrad_observe::keys::STRIKE_ITERATIONS, len);
            acc
        });
        finrad_observe::counter_add(finrad_observe::keys::STRIKE_QUARANTINED, out.quarantined);
        if let Some(secs) = timer.elapsed_seconds() {
            if secs > 0.0 {
                finrad_observe::record(
                    finrad_observe::keys::STRIKE_ITERS_PER_SEC,
                    iterations as f64 / secs,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataPattern;
    use finrad_finfet::Technology;
    use finrad_geometry::Vec3;
    use finrad_numerics::rng::Xoshiro256pp;
    use finrad_sram::{CellCharacterizer, CharacterizeOptions, Variation};
    use finrad_units::Voltage;

    fn pof_table(vdd: f64) -> PofTable {
        let ch = CellCharacterizer::new(
            Technology::soi_finfet_14nm(),
            CharacterizeOptions {
                settle: 5.0e-12,
                bisect_rel_tol: 0.1,
                ..CharacterizeOptions::default()
            },
        );
        ch.build_table(Voltage::from_volts(vdd), Variation::Nominal, 7)
            .expect("characterization")
    }

    #[test]
    fn multiplicity_pmf_properties() {
        // Empty strike: certainly zero flips.
        assert_eq!(multiplicity_pmf(&[]), vec![1.0]);
        // Certain flips shift the distribution.
        let pmf = multiplicity_pmf(&[1.0, 1.0, 0.0]);
        assert!((pmf[2] - 1.0).abs() < 1e-12);
        // Sums to one and agrees with Eqs. 4-6.
        let pofs = [0.3, 0.6, 0.1, 0.05];
        let pmf = multiplicity_pmf(&pofs);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let eqs = combine_cell_pofs(&pofs);
        assert!((1.0 - pmf[0] - eqs.pof_total).abs() < 1e-12);
        assert!((pmf[1] - eqs.pof_seu).abs() < 1e-12);
        let mbu: f64 = pmf[2..].iter().sum();
        assert!((mbu - eqs.pof_mbu).abs() < 1e-12);
    }

    #[test]
    fn eqs_4_to_6_identities() {
        // No strikes.
        let none = combine_cell_pofs(&[]);
        assert_eq!(none.pof_total, 0.0);
        assert_eq!(none.pof_seu, 0.0);
        // Single certain flip.
        let one = combine_cell_pofs(&[1.0]);
        assert_eq!(one.pof_total, 1.0);
        assert_eq!(one.pof_seu, 1.0);
        assert_eq!(one.pof_mbu, 0.0);
        // Two certain flips: all MBU.
        let two = combine_cell_pofs(&[1.0, 1.0]);
        assert_eq!(two.pof_total, 1.0);
        assert_eq!(two.pof_seu, 0.0);
        assert_eq!(two.pof_mbu, 1.0);
        // Mixed.
        let m = combine_cell_pofs(&[0.3, 0.6, 0.1]);
        assert!((m.pof_total - (1.0 - 0.7 * 0.4 * 0.9)).abs() < 1e-12);
        let seu = 0.3 * 0.4 * 0.9 + 0.6 * 0.7 * 0.9 + 0.1 * 0.7 * 0.4;
        assert!((m.pof_seu - seu).abs() < 1e-12);
        assert!((m.pof_total - m.pof_seu - m.pof_mbu).abs() < 1e-12);
    }

    #[test]
    fn vertical_ray_through_sensitive_fin_flips_with_alpha() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        // Aim straight down through a sensitive fin of cell 0 (30 nm chord).
        let fin = array
            .fins()
            .iter()
            .find(|f| f.cell == 0 && f.target.is_some())
            .unwrap();
        let c = fin.aabb.center();
        let ray = Ray::new(Vec3::new(c.x, c.y, 1.0e-6), Vec3::new(0.0, 0.0, -1.0));
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        // 1 MeV alpha down a 30 nm fin chord deposits ~6 keV (~1700 pairs),
        // right at the ~0.28 fC critical charge: an O(0.1-1) flip
        // probability, resolved exactly by the Expected flip model.
        let o = sim.simulate_ray(Particle::Alpha, Energy::from_mev(1.0), &ray, &mut rng);
        assert!(o.pof_total > 0.1, "pof {o:?}");
        assert!(o.pof_total <= 1.0);
        assert_eq!(o.cells_struck, 1);
        assert!(o.pof_mbu < 1e-12, "single cell cannot MBU: {o:?}");
    }

    #[test]
    fn ray_missing_everything_is_benign() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 2, 2, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        let ray = Ray::new(Vec3::new(-1.0, -1.0, 1.0), Vec3::new(0.0, 0.0, -1.0));
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let o = sim.simulate_ray(Particle::Alpha, Energy::from_mev(1.0), &ray, &mut rng);
        assert_eq!(o.pof_total, 0.0);
        assert_eq!(o.cells_struck, 0);
    }

    #[test]
    fn alpha_pof_exceeds_proton_pof() {
        // The Fig. 8 headline: alpha POF >> proton POF at equal energy.
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 5, 5, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        let e = Energy::from_mev(1.0);
        let alpha = sim.estimate(Particle::Alpha, e, 4000, 11);
        let proton = sim.estimate(Particle::Proton, e, 4000, 12);
        assert!(
            alpha.total.mean() > 2.0 * proton.total.mean(),
            "alpha {} vs proton {}",
            alpha.total.mean(),
            proton.total.mean()
        );
    }

    #[test]
    fn estimate_is_deterministic_and_mergeable() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        let e = Energy::from_mev(2.0);
        let a = sim.estimate(Particle::Alpha, e, 500, 99);
        let b = sim.estimate(Particle::Alpha, e, 500, 99);
        assert_eq!(a.total.mean(), b.total.mean());
        assert_eq!(a.total.count(), 500);
        // Ratio helper.
        assert!(a.mbu_to_seu() >= 0.0);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        // The core-count regression: per-chunk (not per-thread) RNG
        // streams plus chunk-ordered merging must make a forced
        // single-worker run bit-identical to the default multi-worker run.
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        let e = Energy::from_mev(1.0);
        // Several chunks plus a ragged tail, so the chunk decomposition —
        // not just a single stream — is what is being compared.
        let iters = 3 * MC_CHUNK_ITERATIONS + 123;
        let one = NonZeroUsize::new(1).unwrap();
        let many = NonZeroUsize::new(7).unwrap();
        let single = sim.estimate_with_threads(Particle::Alpha, e, iters, 77, one);
        let multi = sim.estimate_with_threads(Particle::Alpha, e, iters, 77, many);
        let default = sim.estimate(Particle::Alpha, e, iters, 77);
        assert_eq!(single.total.count(), iters);
        for other in [&multi, &default] {
            assert_eq!(
                single.total.mean().to_bits(),
                other.total.mean().to_bits(),
                "POF_tot mean must be bit-identical"
            );
            assert_eq!(
                single.seu.mean().to_bits(),
                other.seu.mean().to_bits(),
                "POF_SEU mean must be bit-identical"
            );
            assert_eq!(
                single.mbu.mean().to_bits(),
                other.mbu.mean().to_bits(),
                "POF_MBU mean must be bit-identical"
            );
            assert_eq!(&single, other);
        }
    }

    #[test]
    fn mbu_to_seu_edge_cases() {
        let mut est = ArrayPofEstimate::default();
        est.push(IterationOutcome::default());
        // No upset mass at all: ratio is 0, not NaN.
        assert_eq!(est.mbu_to_seu(), 0.0);
        // MBU mass without SEU mass must not report "no MBU".
        let mut mbu_only = ArrayPofEstimate::default();
        mbu_only.push(IterationOutcome {
            pof_total: 0.5,
            pof_seu: 0.0,
            pof_mbu: 0.5,
            cells_struck: 2,
        });
        assert_eq!(mbu_only.mbu_to_seu(), f64::INFINITY);
    }

    #[test]
    fn multiplicity_matches_brute_force_enumeration() {
        // Exact check against 2^n enumeration for a small pof vector.
        let pofs = [0.2, 0.7, 0.05, 0.4];
        let pmf = multiplicity_pmf(&pofs);
        let n = pofs.len();
        let mut brute = vec![0.0; n + 1];
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut k = 0;
            for (i, &pi) in pofs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    k += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            brute[k] += p;
        }
        for (a, b) in pmf.iter().zip(&brute) {
            assert!((a - b).abs() < 1e-14, "{pmf:?} vs {brute:?}");
        }
    }

    #[test]
    fn estimate_multiplicity_consistent_with_estimate() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 4, 4, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::IsotropicDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        );
        let e = Energy::from_mev(2.0);
        let pmf = sim.estimate_multiplicity(Particle::Alpha, e, 6000, 5, 33);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // P(>=1 flip) from the multiplicity spectrum matches POF_tot from
        // the plain estimator (same physics, different bookkeeping; allow
        // MC noise between the independent runs).
        let est = sim.estimate(Particle::Alpha, e, 6000, 34);
        let p_any: f64 = pmf[1..].iter().sum();
        let pof_tot = est.total.mean();
        assert!(
            (p_any - pof_tot).abs() < 0.3 * pof_tot.max(1e-6) + 1e-4,
            "p_any {p_any} vs pof_tot {pof_tot}"
        );
        // Single-bit upsets dominate.
        assert!(pmf[1] > pmf[2]);
    }

    #[test]
    #[should_panic(expected = "requires an electron-hole pair LUT")]
    fn lut_mode_requires_lut() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 2, 2, DataPattern::Checkerboard);
        let table = pof_table(0.8);
        let _ = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::LutMean,
            FlipModel::Sampled,
            None,
        );
    }
}
