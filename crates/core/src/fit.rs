//! FIT-rate integration (the paper's Eqs. 7–8).
//!
//! `SER(FIT) = Σ_E POF(E) · IntFlux(E) · L_x · L_y`, where the sum runs
//! over the discretized energy bins of the particle spectrum, `POF(E)` is
//! the array-level probability of failure per arriving particle at the
//! bin's representative energy, and `L_x·L_y` is the array footprint. The
//! result is expressed in FIT (failures per 10⁹ device-hours).

use finrad_environment::SpectrumBin;
use finrad_units::{constants, Area};

/// One energy bin with its measured POFs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PofBin {
    /// The spectrum bin (representative energy + integral flux).
    pub spectrum: SpectrumBin,
    /// Mean POF_tot per arriving particle at this energy.
    pub pof_total: f64,
    /// Mean POF_SEU.
    pub pof_seu: f64,
    /// Mean POF_MBU.
    pub pof_mbu: f64,
}

/// FIT rates decomposed by upset multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitRate {
    /// Total failures per 10⁹ hours.
    pub total: f64,
    /// Single-event-upset failures per 10⁹ hours.
    pub seu: f64,
    /// Multiple-bit-upset failures per 10⁹ hours.
    pub mbu: f64,
}

impl FitRate {
    /// MBU/SEU ratio in percent (the paper's Fig. 10 axis). Returns 0 when
    /// there are no upsets at all and `f64::INFINITY` when MBU rate exists
    /// without any SEU rate (see [`mbu_to_seu_ratio`]).
    pub fn mbu_to_seu_percent(&self) -> f64 {
        100.0 * mbu_to_seu_ratio(self.mbu, self.seu)
    }
}

/// The MBU/SEU ratio used everywhere a Fig. 10-style quantity is reported
/// ([`FitRate::mbu_to_seu_percent`], `SerReport::mbu_to_seu_percent`,
/// `ArrayPofEstimate::mbu_to_seu`) — the single implementation all of them
/// delegate to.
///
/// The `seu == 0` column needs care: an MBU-only spectrum (every upset
/// flips several bits — grazing tracks on a small array can do this) used
/// to report `0.0`, i.e. "no MBU", which is the exact opposite of the
/// truth. The ratio is now `f64::INFINITY` in that case; only the truly
/// empty `mbu == seu == 0` case reports 0.
///
/// # Examples
///
/// ```
/// use finrad_core::fit::mbu_to_seu_ratio;
///
/// assert_eq!(mbu_to_seu_ratio(0.1, 0.4), 0.25);
/// assert_eq!(mbu_to_seu_ratio(0.0, 0.0), 0.0);
/// assert_eq!(mbu_to_seu_ratio(0.3, 0.0), f64::INFINITY);
/// ```
pub fn mbu_to_seu_ratio(mbu: f64, seu: f64) -> f64 {
    if seu > 0.0 {
        mbu / seu
    } else if mbu > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Eq. 8: folds per-bin POFs with the per-bin integral flux and the array
/// footprint into FIT rates.
///
/// # Examples
///
/// ```
/// use finrad_core::fit::{fit_rate, PofBin};
/// use finrad_environment::SpectrumBin;
/// use finrad_units::{Area, Energy, Flux};
///
/// let bins = vec![PofBin {
///     spectrum: SpectrumBin {
///         energy: Energy::from_mev(1.0),
///         lo: Energy::from_mev(0.5),
///         hi: Energy::from_mev(2.0),
///         integral_flux: Flux::from_per_cm2_hour(0.001),
///     },
///     pof_total: 0.5,
///     pof_seu: 0.4,
///     pof_mbu: 0.1,
/// }];
/// // 1 cm² array sees 0.001 particles/h; half upset => 5e-4 fails/h = 5e5 FIT.
/// let fit = fit_rate(&bins, Area::from_square_cm(1.0));
/// assert!((fit.total - 5.0e5).abs() / 5.0e5 < 1e-9);
/// assert!((fit.mbu_to_seu_percent() - 25.0).abs() < 1e-9);
/// ```
pub fn fit_rate(bins: &[PofBin], footprint: Area) -> FitRate {
    let area_m2 = footprint.square_meters();
    let mut rate = FitRate::default();
    for b in bins {
        // particles/(m²·s) × m² = particles/s; × 3600 = per hour; × 1e9 = FIT.
        let particles_per_hour = b.spectrum.integral_flux.per_m2_second() * area_m2 * 3600.0;
        rate.total += b.pof_total * particles_per_hour * constants::FIT_HOURS;
        rate.seu += b.pof_seu * particles_per_hour * constants::FIT_HOURS;
        rate.mbu += b.pof_mbu * particles_per_hour * constants::FIT_HOURS;
    }
    rate
}

/// Eq. 8 with NaN/Inf quarantine: bins whose POFs or flux are non-finite
/// are excluded from the integration instead of poisoning the sum.
///
/// Returns the FIT rate over the finite bins together with the number of
/// bins that were excluded, so callers can report degraded spectrum
/// coverage rather than silently under-integrating.
///
/// # Examples
///
/// ```
/// use finrad_core::fit::{fit_rate, fit_rate_checked, PofBin};
/// use finrad_environment::SpectrumBin;
/// use finrad_units::{Area, Energy, Flux};
///
/// let good = PofBin {
///     spectrum: SpectrumBin {
///         energy: Energy::from_mev(1.0),
///         lo: Energy::from_mev(0.5),
///         hi: Energy::from_mev(2.0),
///         integral_flux: Flux::from_per_cm2_hour(0.001),
///     },
///     pof_total: 0.5,
///     pof_seu: 0.4,
///     pof_mbu: 0.1,
/// };
/// let poisoned = PofBin { pof_total: f64::NAN, ..good };
/// let area = Area::from_square_cm(1.0);
/// let (fit, excluded) = fit_rate_checked(&[good, poisoned], area);
/// assert_eq!(excluded, 1);
/// assert_eq!(fit, fit_rate(&[good], area));
/// ```
pub fn fit_rate_checked(bins: &[PofBin], footprint: Area) -> (FitRate, usize) {
    let finite: Vec<PofBin> = bins
        .iter()
        .copied()
        .filter(|b| {
            b.pof_total.is_finite()
                && b.pof_seu.is_finite()
                && b.pof_mbu.is_finite()
                && b.spectrum.integral_flux.per_m2_second().is_finite()
        })
        .collect();
    let excluded = bins.len() - finite.len();
    (fit_rate(&finite, footprint), excluded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_units::{Energy, Flux};

    fn bin(e_mev: f64, flux_m2s: f64, pof: f64) -> PofBin {
        PofBin {
            spectrum: SpectrumBin {
                energy: Energy::from_mev(e_mev),
                lo: Energy::from_mev(e_mev * 0.5),
                hi: Energy::from_mev(e_mev * 2.0),
                integral_flux: Flux::from_per_m2_second(flux_m2s),
            },
            pof_total: pof,
            pof_seu: pof * 0.9,
            pof_mbu: pof * 0.1,
        }
    }

    #[test]
    fn zero_pof_zero_fit() {
        let bins = vec![bin(1.0, 100.0, 0.0)];
        let fit = fit_rate(&bins, Area::from_square_um(10.0));
        assert_eq!(fit.total, 0.0);
        assert_eq!(fit.mbu_to_seu_percent(), 0.0);
    }

    #[test]
    fn fit_scales_linearly() {
        let area = Area::from_square_um(2.0);
        let f1 = fit_rate(&[bin(1.0, 50.0, 0.2)], area);
        let f2 = fit_rate(&[bin(1.0, 100.0, 0.2)], area);
        let f3 = fit_rate(&[bin(1.0, 50.0, 0.4)], area);
        let f4 = fit_rate(&[bin(1.0, 50.0, 0.2)], Area::from_square_um(4.0));
        assert!((f2.total / f1.total - 2.0).abs() < 1e-12);
        assert!((f3.total / f1.total - 2.0).abs() < 1e-12);
        assert!((f4.total / f1.total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bins_accumulate() {
        let area = Area::from_square_um(1.0);
        let single = fit_rate(&[bin(1.0, 10.0, 0.5)], area);
        let double = fit_rate(&[bin(1.0, 10.0, 0.5), bin(2.0, 10.0, 0.5)], area);
        assert!((double.total / single.total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seu_mbu_decomposition_preserved() {
        let fit = fit_rate(&[bin(1.0, 10.0, 0.5)], Area::from_square_um(1.0));
        assert!((fit.seu + fit.mbu - fit.total).abs() < 1e-9 * fit.total);
        assert!((fit.mbu_to_seu_percent() - 100.0 / 9.0).abs() < 1e-9);
    }
}
