//! Versioned on-disk campaign checkpoints.
//!
//! A checkpoint snapshots the per-energy-bin POF tallies of a running
//! campaign so an interrupted run can resume and produce a FIT rate that
//! is bit-identical to an uninterrupted one. The format is deliberately
//! boring: a line-based text file with every `f64` stored as the 16-digit
//! hex encoding of its IEEE-754 bit pattern (exact round-trip, no decimal
//! formatting loss), a config fingerprint binding the file to the
//! producing configuration, and an FNV-1a checksum over the body.
//!
//! ```text
//! finradckpt 1
//! fingerprint <16 hex>
//! particle <Proton|Alpha>
//! vdd <16 hex f64 bits>
//! bins <total bin count>
//! bin <k> ok <pof_total> <pof_seu> <pof_mbu> <quarantined> <energy> <flux>
//! bin <k> failed <escaped error message>
//! checksum <16 hex FNV-1a over all preceding lines>
//! ```
//!
//! Parsing validates in a fixed order so each failure mode maps to one
//! typed error: version header first ([`CheckpointError::VersionMismatch`]),
//! then checksum-line presence ([`CheckpointError::Truncated`]), then the
//! checksum itself and the field grammar ([`CheckpointError::Corrupt`]).
//! See `docs/robustness.md` for the full contract.

use crate::pipeline::PipelineConfig;
use finrad_units::{Particle, Voltage};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// The single supported checkpoint format version.
///
/// The `checkpoint-schema-drift` lint fingerprints this file's non-test
/// code and pins (fingerprint, version) in `xtask/lint-baseline.toml`:
/// changing the (de)serialization logic without bumping this constant
/// fails `cargo xtask lint`. After a deliberate format change, bump the
/// version here and refresh the pin with `cargo xtask lint --fix-allowlist`.
pub const CHECKPOINT_VERSION: u32 = 1;

const MAGIC: &str = "finradckpt";

/// Errors raised while loading or saving a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem-level failure (message carries the underlying error).
    Io(String),
    /// The file declares a format version this build does not understand.
    VersionMismatch {
        /// The version number found in the header.
        found: u32,
    },
    /// The file ends before its checksum line: the writer was interrupted
    /// or the tail was cut off.
    Truncated,
    /// The file is structurally present but fails validation (checksum
    /// mismatch or malformed field).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version mismatch: found v{found}, this build reads v{CHECKPOINT_VERSION}"
            ),
            CheckpointError::Truncated => {
                write!(f, "checkpoint truncated: file ends before its checksum line")
            }
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// One completed (or failed) energy bin in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum BinRecord {
    /// The bin's Monte Carlo completed; POFs are stored bit-exactly.
    Ok {
        /// Energy-bin index within the campaign's spectrum grid.
        index: usize,
        /// Mean POF_tot per arriving particle.
        pof_total: f64,
        /// Mean POF_SEU.
        pof_seu: f64,
        /// Mean POF_MBU.
        pof_mbu: f64,
        /// Iterations quarantined by the NaN guard at the accumulator.
        quarantined: u64,
        /// Representative bin energy, joules (informational).
        energy_joules: f64,
        /// Integral bin flux, particles/(m²·s) (informational).
        flux_per_m2_s: f64,
    },
    /// The bin failed; the error is recorded and the bin is excluded from
    /// the FIT integration with degraded-coverage reporting.
    Failed {
        /// Energy-bin index within the campaign's spectrum grid.
        index: usize,
        /// Human-readable description of the failure.
        error: String,
    },
}

impl BinRecord {
    /// The bin index this record describes.
    pub fn index(&self) -> usize {
        match self {
            BinRecord::Ok { index, .. } | BinRecord::Failed { index, .. } => *index,
        }
    }
}

/// An in-memory checkpoint: campaign identity plus per-bin records.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing configuration (see
    /// [`config_fingerprint`]).
    pub fingerprint: u64,
    /// Particle species of the campaign.
    pub particle: Particle,
    /// Supply voltage, stored as raw f64 bits for exact round-trip.
    pub vdd_bits: u64,
    /// Total number of energy bins in the campaign.
    pub total_bins: usize,
    /// Records for the bins computed so far, in completion order.
    pub bins: Vec<BinRecord>,
}

impl Checkpoint {
    /// Serializes the checkpoint to its on-disk text form.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("{MAGIC} {CHECKPOINT_VERSION}\n"));
        body.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        body.push_str(&format!("particle {}\n", particle_name(self.particle)));
        body.push_str(&format!("vdd {:016x}\n", self.vdd_bits));
        body.push_str(&format!("bins {}\n", self.total_bins));
        for rec in &self.bins {
            match rec {
                BinRecord::Ok {
                    index,
                    pof_total,
                    pof_seu,
                    pof_mbu,
                    quarantined,
                    energy_joules,
                    flux_per_m2_s,
                } => {
                    body.push_str(&format!(
                        "bin {index} ok {} {} {} {quarantined} {} {}\n",
                        hex(*pof_total),
                        hex(*pof_seu),
                        hex(*pof_mbu),
                        hex(*energy_joules),
                        hex(*flux_per_m2_s),
                    ));
                }
                BinRecord::Failed { index, error } => {
                    body.push_str(&format!("bin {index} failed {}\n", escape(error)));
                }
            }
        }
        let sum = fnv1a64(body.as_bytes());
        format!("{body}checksum {sum:016x}\n")
    }

    /// Parses a checkpoint from its on-disk text form.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::VersionMismatch`] on an unknown format version,
    /// [`CheckpointError::Truncated`] when the checksum line is missing or
    /// cut off, [`CheckpointError::Corrupt`] on a checksum mismatch or a
    /// malformed field.
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let lines: Vec<&str> = text.lines().collect();
        // 1. Version header — checked before anything else so that a
        //    future-format file reports VersionMismatch, not Corrupt.
        let header = lines.first().ok_or(CheckpointError::Truncated)?;
        let version = header
            .strip_prefix(MAGIC)
            .and_then(|rest| rest.trim().parse::<u32>().ok())
            .ok_or_else(|| CheckpointError::Corrupt(format!("bad header line: {header:?}")))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: version });
        }
        // 2. The last line must be a complete checksum line; anything else
        //    means the writer was cut off mid-file.
        if lines.len() < 2 {
            return Err(CheckpointError::Truncated);
        }
        let last = lines[lines.len() - 1];
        let stored_sum = match last.strip_prefix("checksum ") {
            // A partial hex value still means the tail was cut off, so
            // anything but exactly 16 hex digits reads as truncation.
            Some(hexsum) if hexsum.len() == 16 => {
                u64::from_str_radix(hexsum, 16).map_err(|_| CheckpointError::Truncated)?
            }
            _ => return Err(CheckpointError::Truncated),
        };
        // 3. Verify the checksum over the body exactly as it was written.
        let mut body = lines[..lines.len() - 1].join("\n");
        body.push('\n');
        let actual = fnv1a64(body.as_bytes());
        if actual != stored_sum {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch: stored {stored_sum:016x}, computed {actual:016x}"
            )));
        }
        // 4. Field grammar.
        let mut fingerprint = None;
        let mut particle = None;
        let mut vdd_bits = None;
        let mut total_bins = None;
        let mut bins = Vec::new();
        for line in &lines[1..lines.len() - 1] {
            let mut parts = line.splitn(2, ' ');
            let key = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("");
            match key {
                "fingerprint" => fingerprint = Some(parse_hex_u64(rest, "fingerprint")?),
                "particle" => particle = Some(parse_particle(rest)?),
                "vdd" => vdd_bits = Some(parse_hex_u64(rest, "vdd")?),
                "bins" => {
                    total_bins = Some(rest.trim().parse::<usize>().map_err(|_| {
                        CheckpointError::Corrupt(format!("bad bin count: {rest:?}"))
                    })?)
                }
                "bin" => bins.push(parse_bin(rest)?),
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown field: {other:?}"
                    )))
                }
            }
        }
        let missing = |name: &str| CheckpointError::Corrupt(format!("missing field: {name}"));
        Ok(Checkpoint {
            fingerprint: fingerprint.ok_or_else(|| missing("fingerprint"))?,
            particle: particle.ok_or_else(|| missing("particle"))?,
            vdd_bits: vdd_bits.ok_or_else(|| missing("vdd"))?,
            total_bins: total_bins.ok_or_else(|| missing("bins"))?,
            bins,
        })
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, plus every
    /// error [`Checkpoint::parse`] can produce.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::parse(&text)
    }

    /// Atomically saves the checkpoint to `path`: the text is written to a
    /// sibling temp file and renamed into place, so a crash mid-save never
    /// leaves a half-written checkpoint under the real name.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, self.to_text()).map_err(io)?;
        fs::rename(&tmp, path).map_err(io)
    }
}

/// Fingerprint binding a checkpoint to its producing configuration:
/// FNV-1a over the config's debug form plus the (particle, V_dd) point.
/// Any config change — seed, bin count, iteration budget, technology —
/// changes the fingerprint, and resume refuses the stale file.
pub fn config_fingerprint(config: &PipelineConfig, particle: Particle, vdd: Voltage) -> u64 {
    let vdd_bits = vdd.volts().to_bits();
    fnv1a64(format!("{config:?}|{particle:?}|{vdd_bits:016x}").as_bytes())
}

/// FNV-1a 64-bit hash (dependency-free, stable across platforms).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_hex_u64(s: &str, field: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(s.trim(), 16)
        .map_err(|_| CheckpointError::Corrupt(format!("bad {field} value: {s:?}")))
}

fn parse_hex_f64(s: &str, field: &str) -> Result<f64, CheckpointError> {
    parse_hex_u64(s, field).map(f64::from_bits)
}

fn particle_name(p: Particle) -> &'static str {
    match p {
        Particle::Proton => "Proton",
        Particle::Alpha => "Alpha",
    }
}

fn parse_particle(s: &str) -> Result<Particle, CheckpointError> {
    match s.trim() {
        "Proton" => Ok(Particle::Proton),
        "Alpha" => Ok(Particle::Alpha),
        other => Err(CheckpointError::Corrupt(format!(
            "unknown particle: {other:?}"
        ))),
    }
}

fn parse_bin(rest: &str) -> Result<BinRecord, CheckpointError> {
    let bad = |msg: &str| CheckpointError::Corrupt(format!("bad bin record ({msg}): {rest:?}"));
    let mut parts = rest.splitn(3, ' ');
    let index = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| bad("index"))?;
    let kind = parts.next().ok_or_else(|| bad("kind"))?;
    let tail = parts.next().unwrap_or("");
    match kind {
        "ok" => {
            let fields: Vec<&str> = tail.split(' ').collect();
            if fields.len() != 6 {
                return Err(bad("field count"));
            }
            Ok(BinRecord::Ok {
                index,
                pof_total: parse_hex_f64(fields[0], "pof_total")?,
                pof_seu: parse_hex_f64(fields[1], "pof_seu")?,
                pof_mbu: parse_hex_f64(fields[2], "pof_mbu")?,
                quarantined: fields[3]
                    .parse::<u64>()
                    .map_err(|_| bad("quarantined count"))?,
                energy_joules: parse_hex_f64(fields[4], "energy")?,
                flux_per_m2_s: parse_hex_f64(fields[5], "flux")?,
            })
        }
        "failed" => Ok(BinRecord::Failed {
            index,
            error: unescape(tail),
        }),
        _ => Err(bad("kind")),
    }
}

/// Escapes an error message to a single physical line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            particle: Particle::Alpha,
            vdd_bits: 0.8f64.to_bits(),
            total_bins: 3,
            bins: vec![
                BinRecord::Ok {
                    index: 0,
                    pof_total: 0.125,
                    pof_seu: 0.1,
                    pof_mbu: 0.025,
                    quarantined: 2,
                    energy_joules: 1.5e-13,
                    flux_per_m2_s: 3.2e-4,
                },
                BinRecord::Failed {
                    index: 1,
                    error: "newton failed\nat t = 1e-12".into(),
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample();
        let parsed = Checkpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(parsed, ck);
    }

    #[test]
    fn truncation_is_typed() {
        let text = sample().to_text();
        // Cut anywhere before the final checksum digit: every prefix that
        // still has a valid header must parse as Truncated or Corrupt,
        // never panic.
        let cut = text.len() - 5;
        assert_eq!(
            Checkpoint::parse(&text[..cut]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn version_mismatch_takes_priority_over_checksum() {
        let text = sample()
            .to_text()
            .replacen("finradckpt 1", "finradckpt 99", 1);
        assert_eq!(
            Checkpoint::parse(&text),
            Err(CheckpointError::VersionMismatch { found: 99 })
        );
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let text = sample().to_text();
        let flipped = text.replacen("fingerprint dead", "fingerprint dfad", 1);
        assert_ne!(flipped, text);
        assert!(matches!(
            Checkpoint::parse(&flipped),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let a = PipelineConfig::smoke_test();
        let mut b = a.clone();
        b.seed ^= 1;
        let vdd = Voltage::from_volts(0.8);
        assert_ne!(
            config_fingerprint(&a, Particle::Alpha, vdd),
            config_fingerprint(&b, Particle::Alpha, vdd)
        );
        assert_ne!(
            config_fingerprint(&a, Particle::Alpha, vdd),
            config_fingerprint(&a, Particle::Proton, vdd)
        );
    }
}
