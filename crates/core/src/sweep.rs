//! Supply-voltage sweeps — the programmatic form of the paper's
//! Figs. 9–11.
//!
//! [`VddSweep`] runs the full pipeline over a list of supply voltages for
//! both particle species, reusing one POF characterization per voltage
//! (the expensive step), and returns the FIT/MBU series the figures plot.

use crate::pipeline::{SerPipeline, SerReport};
use crate::CoreError;
use finrad_units::{Particle, Voltage};

/// One voltage point of a sweep: the per-species reports.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The supply voltage.
    pub vdd: Voltage,
    /// Proton-induced SER report.
    pub proton: SerReport,
    /// Alpha-induced SER report.
    pub alpha: SerReport,
}

impl SweepPoint {
    /// Combined (proton + alpha) FIT rate.
    pub fn fit_combined(&self) -> f64 {
        self.proton.fit_total + self.alpha.fit_total
    }
}

/// Results of a supply sweep.
#[derive(Debug, Clone)]
pub struct VddSweep {
    points: Vec<SweepPoint>,
}

impl VddSweep {
    /// Runs the pipeline at every voltage in `vdds`.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    ///
    /// # Panics
    ///
    /// Panics if `vdds` is empty.
    pub fn run(pipeline: &SerPipeline, vdds: &[Voltage]) -> Result<Self, CoreError> {
        assert!(!vdds.is_empty(), "sweep needs at least one voltage");
        let mut points = Vec::with_capacity(vdds.len());
        for &vdd in vdds {
            let table = pipeline.build_pof_table(vdd)?;
            points.push(SweepPoint {
                vdd,
                proton: pipeline.run_with_table(Particle::Proton, vdd, &table),
                alpha: pipeline.run_with_table(Particle::Alpha, vdd, &table),
            });
        }
        Ok(Self { points })
    }

    /// The sweep points, in input order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The Fig. 9 series for `particle`: `(vdd, FIT)` pairs.
    pub fn fit_series(&self, particle: Particle) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                let fit = match particle {
                    Particle::Proton => p.proton.fit_total,
                    Particle::Alpha => p.alpha.fit_total,
                };
                (p.vdd.volts(), fit)
            })
            .collect()
    }

    /// The Fig. 10 series for `particle`: `(vdd, MBU/SEU %)` pairs.
    pub fn mbu_seu_series(&self, particle: Particle) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                let r = match particle {
                    Particle::Proton => p.proton.mbu_to_seu_percent(),
                    Particle::Alpha => p.alpha.mbu_to_seu_percent(),
                };
                (p.vdd.volts(), r)
            })
            .collect()
    }

    /// Ratio of the steepness of the two species' FIT fall-off between the
    /// sweep's first and last voltage — the paper's "proton-induced SER
    /// decreases with an extremely higher rate" quantified. Values > 1
    /// mean the proton curve falls faster.
    pub fn proton_to_alpha_steepness(&self) -> f64 {
        let first = &self.points[0];
        let last = &self.points[self.points.len() - 1];
        let proton_fall = first.proton.fit_total / last.proton.fit_total.max(f64::MIN_POSITIVE);
        let alpha_fall = first.alpha.fit_total / last.alpha.fit_total.max(f64::MIN_POSITIVE);
        proton_fall / alpha_fall.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    fn smoke_sweep() -> VddSweep {
        let mut cfg = PipelineConfig::smoke_test();
        cfg.iterations_per_energy = 2_000;
        let pipeline = SerPipeline::new(cfg);
        VddSweep::run(
            &pipeline,
            &[Voltage::from_volts(0.7), Voltage::from_volts(1.1)],
        )
        .expect("sweep")
    }

    #[test]
    fn sweep_produces_ordered_points() {
        let sweep = smoke_sweep();
        assert_eq!(sweep.points().len(), 2);
        assert_eq!(sweep.points()[0].vdd.volts(), 0.7);
        assert!(sweep.points()[0].fit_combined() > 0.0);
    }

    #[test]
    fn series_extraction() {
        let sweep = smoke_sweep();
        let fit = sweep.fit_series(Particle::Alpha);
        assert_eq!(fit.len(), 2);
        // Fig. 9: falls with Vdd.
        assert!(fit[0].1 > fit[1].1);
        let mbu = sweep.mbu_seu_series(Particle::Alpha);
        assert!(mbu.iter().all(|&(_, r)| r >= 0.0));
    }

    #[test]
    fn proton_steeper_than_alpha() {
        let sweep = smoke_sweep();
        assert!(
            sweep.proton_to_alpha_steepness() > 1.0,
            "steepness {}",
            sweep.proton_to_alpha_steepness()
        );
    }

    #[test]
    #[should_panic(expected = "at least one voltage")]
    fn empty_sweep_rejected() {
        let cfg = PipelineConfig::smoke_test();
        let _ = VddSweep::run(&SerPipeline::new(cfg), &[]);
    }
}
