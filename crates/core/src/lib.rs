//! Cross-layer radiation-induced soft-error analysis of SOI FinFET SRAM
//! arrays — the primary contribution of the reproduced paper.
//!
//! The flow combines the three levels the paper describes (Fig. 6):
//!
//! 1. **Device** — `finrad-transport` provides electron–hole pair counts
//!    for particle/fin interactions (the Geant4-substitute LUT or the
//!    chord-exact deposit).
//! 2. **Circuit** — `finrad-sram` provides the POF look-up tables from
//!    SPICE-level cell characterization with optional Vth variation.
//! 3. **Array** — this crate traces random particles through the 3-D
//!    layout of the memory array ([`array::MemoryArray`]), accumulates
//!    collected charge per struck cell, evaluates Eqs. 4–6 for
//!    total/SEU/MBU probability of failure ([`strike`]), and folds the
//!    result with the ground-level flux spectra into FIT rates (Eq. 8,
//!    [`fit`]). The end-to-end driver with multithreaded Monte Carlo is
//!    [`pipeline::SerPipeline`].
//!
//! # Examples
//!
//! A miniature end-to-end run (kept tiny so it executes in a doctest; real
//! studies use the sizes in `finrad-bench`):
//!
//! ```no_run
//! use finrad_core::pipeline::{PipelineConfig, SerPipeline};
//! use finrad_units::{Particle, Voltage};
//!
//! let config = PipelineConfig::paper_baseline();
//! let pipeline = SerPipeline::new(config);
//! let report = pipeline.run(Particle::Alpha, Voltage::from_volts(0.8))?;
//! println!("SER = {} FIT", report.fit_total);
//! # Ok::<(), finrad_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod array;
pub mod campaign;
pub mod checkpoint;
pub mod fit;
pub mod neutron;
pub mod pipeline;
pub mod service;
pub mod strike;
pub mod sweep;

use finrad_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors produced by the SER pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The circuit-level characterization failed.
    Characterization(SpiceError),
    /// Invalid pipeline configuration.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Characterization(e) => write!(f, "cell characterization failed: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Characterization(e) => Some(e),
            CoreError::InvalidConfig(_) => None,
        }
    }
}

impl From<SpiceError> for CoreError {
    fn from(e: SpiceError) -> Self {
        CoreError::Characterization(e)
    }
}
