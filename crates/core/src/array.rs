//! The 3-D SRAM memory-array model.
//!
//! Tiles the single-cell layout of `finrad-sram` into a rows×cols array
//! (the paper evaluates 9×9 — "large enough to obtain a realistic ratio
//! for MBU vs. SEU"), mirroring alternate rows and columns the way real
//! SRAM floorplans do (shared wells and contacts). Each cell holds a data
//! value from the configured pattern; each of its six gated fin segments
//! is a sensitive box tagged with the strike target it realizes (or none,
//! for ON devices).

use finrad_finfet::Technology;
use finrad_geometry::{Aabb, Vec3};
use finrad_sram::layout::CellLayout;
use finrad_sram::{CellState, StrikeTarget, TransistorRole};
use finrad_units::Area;

/// The data pattern stored in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataPattern {
    /// Alternating 0/1 in both directions (the physical-design default for
    /// SER testing).
    #[default]
    Checkerboard,
    /// Every cell holds 1.
    AllOnes,
    /// Every cell holds 0.
    AllZeros,
}

impl DataPattern {
    /// The state of the cell at `(row, col)`.
    pub fn state(self, row: usize, col: usize) -> CellState {
        match self {
            DataPattern::Checkerboard => {
                if (row + col) % 2 == 0 {
                    CellState::One
                } else {
                    CellState::Zero
                }
            }
            DataPattern::AllOnes => CellState::One,
            DataPattern::AllZeros => CellState::Zero,
        }
    }
}

/// One sensitive fin segment placed in array coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitiveFin {
    /// The box in array coordinates (metres).
    pub aabb: Aabb,
    /// Index of the owning cell (`row * cols + col`).
    pub cell: usize,
    /// Which transistor this segment belongs to.
    pub role: TransistorRole,
    /// The strike target it realizes given the cell's stored state, or
    /// `None` if the device is not radiation-sensitive in that state.
    pub target: Option<StrikeTarget>,
}

/// A tiled rows×cols SRAM array.
///
/// # Examples
///
/// ```
/// use finrad_core::array::{DataPattern, MemoryArray};
/// use finrad_finfet::Technology;
///
/// let array = MemoryArray::build(&Technology::soi_finfet_14nm(), 9, 9, DataPattern::Checkerboard);
/// assert_eq!(array.cell_count(), 81);
/// assert_eq!(array.fins().len(), 81 * 6);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryArray {
    rows: usize,
    cols: usize,
    pattern: DataPattern,
    states: Vec<CellState>,
    fins: Vec<SensitiveFin>,
    bounds: Aabb,
}

impl MemoryArray {
    /// Builds the array for `tech` with the paper's Fig. 5(b) cell layout.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn build(tech: &Technology, rows: usize, cols: usize, pattern: DataPattern) -> Self {
        Self::build_with_layout(&CellLayout::paper_fig5b(tech), rows, cols, pattern)
    }

    /// Builds the array from an explicit cell layout.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn build_with_layout(
        layout: &CellLayout,
        rows: usize,
        cols: usize,
        pattern: DataPattern,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        let w = layout.width.meters();
        let d = layout.depth.meters();
        let h = layout.fin_height.meters();

        let mut states = Vec::with_capacity(rows * cols);
        let mut fins = Vec::with_capacity(rows * cols * 6);
        for row in 0..rows {
            for col in 0..cols {
                let cell = row * cols + col;
                let state = pattern.state(row, col);
                states.push(state);
                let mirror_x = col % 2 == 1;
                let mirror_y = row % 2 == 1;
                let offset = Vec3::new(col as f64 * w, row as f64 * d, 0.0);
                for &(role, device_box) in layout.boxes() {
                    let placed = place_box(device_box, w, d, mirror_x, mirror_y).translated(offset);
                    fins.push(SensitiveFin {
                        aabb: placed,
                        cell,
                        role,
                        target: StrikeTarget::from_role(role, state),
                    });
                }
            }
        }
        let bounds =
            Aabb::from_min_size(Vec3::ZERO, Vec3::new(cols as f64 * w, rows as f64 * d, h));
        Self {
            rows,
            cols,
            pattern,
            states,
            fins,
            bounds,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The configured data pattern.
    pub fn pattern(&self) -> DataPattern {
        self.pattern
    }

    /// Stored state of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn cell_state(&self, index: usize) -> CellState {
        self.states[index]
    }

    /// All sensitive fin boxes in array coordinates.
    pub fn fins(&self) -> &[SensitiveFin] {
        &self.fins
    }

    /// Just the geometry boxes, aligned with [`MemoryArray::fins`]
    /// (for the ray tracer).
    pub fn fin_boxes(&self) -> Vec<Aabb> {
        self.fins.iter().map(|f| f.aabb).collect()
    }

    /// The array's bounding box (footprint × fin height).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The die area the array presents to the particle flux (`Lx · Ly` of
    /// the paper's Eq. 7/8).
    pub fn footprint(&self) -> Area {
        let s = self.bounds.size();
        Area::from_square_meters(s.x * s.y)
    }
}

/// Clamps a per-cell probability of failure to `[0, 1]`.
///
/// The array-level Monte-Carlo combines cell POFs multiplicatively
/// (`1 - Π(1 - pᵢ)`), so a value outside the unit interval — even by a
/// rounding ulp — would silently corrupt the SEU/MBU split. Debug builds
/// assert the input was already a probability up to floating-point noise;
/// release builds clamp.
pub fn clamp_pof(p: f64) -> f64 {
    debug_assert!(
        p.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&p),
        "cell POF {p} outside [0, 1]"
    );
    p.clamp(0.0, 1.0)
}

/// Mirrors a cell-local box per the tiling parity, keeping it inside the
/// cell frame.
fn place_box(b: Aabb, cell_w: f64, cell_d: f64, mirror_x: bool, mirror_y: bool) -> Aabb {
    let (mut min, mut max) = (b.min_corner(), b.max_corner());
    if mirror_x {
        let (lo, hi) = (cell_w - max.x, cell_w - min.x);
        min.x = lo;
        max.x = hi;
    }
    if mirror_y {
        let (lo, hi) = (cell_d - max.y, cell_d - min.y);
        min.y = lo;
        max.y = hi;
    }
    Aabb::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> MemoryArray {
        MemoryArray::build(
            &Technology::soi_finfet_14nm(),
            9,
            9,
            DataPattern::Checkerboard,
        )
    }

    #[test]
    fn paper_array_shape() {
        let a = array();
        assert_eq!(a.rows(), 9);
        assert_eq!(a.cols(), 9);
        assert_eq!(a.cell_count(), 81);
        assert_eq!(a.fins().len(), 486);
        assert_eq!(a.pattern(), DataPattern::Checkerboard);
    }

    #[test]
    fn clamp_pof_absorbs_rounding_noise() {
        assert_eq!(clamp_pof(1.0 + 1.0e-13), 1.0);
        assert_eq!(clamp_pof(-1.0e-13), 0.0);
        assert_eq!(clamp_pof(0.5), 0.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn clamp_pof_rejects_non_probability() {
        let _ = clamp_pof(1.5);
    }

    #[test]
    fn checkerboard_states() {
        let a = array();
        assert_eq!(a.cell_state(0), CellState::One);
        assert_eq!(a.cell_state(1), CellState::Zero);
        assert_eq!(a.cell_state(9), CellState::Zero); // next row starts flipped
        assert_eq!(a.cell_state(10), CellState::One);
    }

    #[test]
    fn every_fin_inside_bounds() {
        let a = array();
        let bounds = a.bounds();
        for f in a.fins() {
            assert!(bounds.contains(f.aabb.min_corner()), "{:?}", f.role);
            assert!(bounds.contains(f.aabb.max_corner()), "{:?}", f.role);
        }
    }

    #[test]
    fn three_sensitive_targets_per_cell() {
        let a = array();
        for cell in 0..a.cell_count() {
            let sensitive: Vec<StrikeTarget> = a
                .fins()
                .iter()
                .filter(|f| f.cell == cell)
                .filter_map(|f| f.target)
                .collect();
            assert_eq!(sensitive.len(), 3, "cell {cell}");
            // All three distinct targets present.
            for t in StrikeTarget::ALL {
                assert!(sensitive.contains(&t), "cell {cell} missing {t}");
            }
        }
    }

    #[test]
    fn pattern_state_logic() {
        assert_eq!(DataPattern::AllOnes.state(3, 4), CellState::One);
        assert_eq!(DataPattern::AllZeros.state(0, 0), CellState::Zero);
        assert_eq!(DataPattern::Checkerboard.state(2, 2), CellState::One);
        assert_eq!(DataPattern::Checkerboard.state(2, 3), CellState::Zero);
    }

    #[test]
    fn mirrored_tiling_keeps_boxes_in_their_cell() {
        let a = array();
        let layout = CellLayout::paper_fig5b(&Technology::soi_finfet_14nm());
        let (w, d) = (layout.width.meters(), layout.depth.meters());
        for f in a.fins() {
            let col = f.cell % 9;
            let row = f.cell / 9;
            let cell_box = Aabb::new(
                Vec3::new(col as f64 * w, row as f64 * d, 0.0),
                Vec3::new(
                    (col + 1) as f64 * w,
                    (row + 1) as f64 * d,
                    layout.fin_height.meters(),
                ),
            );
            assert!(cell_box.contains(f.aabb.min_corner()));
            assert!(cell_box.contains(f.aabb.max_corner()));
        }
    }

    #[test]
    fn mirroring_changes_positions() {
        // Cell (0,0) and cell (0,1) are x-mirrored: the PD-L box of the
        // second cell sits at the mirrored x position.
        let a = array();
        let layout = CellLayout::paper_fig5b(&Technology::soi_finfet_14nm());
        let w = layout.width.meters();
        let pd0 = a
            .fins()
            .iter()
            .find(|f| f.cell == 0 && f.role == TransistorRole::PullDownLeft)
            .unwrap();
        let pd1 = a
            .fins()
            .iter()
            .find(|f| f.cell == 1 && f.role == TransistorRole::PullDownLeft)
            .unwrap();
        let local0 = pd0.aabb.min_corner().x;
        let local1 = pd1.aabb.min_corner().x - w;
        assert!(
            (local0 - local1).abs() > 1.0e-9 * w,
            "mirroring had no effect"
        );
    }

    #[test]
    fn footprint_area() {
        let a = array();
        let s = a.bounds().size();
        let expect = s.x * s.y;
        assert!((a.footprint().square_meters() - expect).abs() < 1e-24);
        // 9 cells of 192 nm and 9 of 140 nm: ~1.7 µm x 1.3 µm.
        assert!((a.footprint().square_micrometers() - 1.728 * 1.26).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn rejects_empty_array() {
        let _ = MemoryArray::build(
            &Technology::soi_finfet_14nm(),
            0,
            4,
            DataPattern::Checkerboard,
        );
    }
}
