//! The end-to-end cross-layer SER pipeline (the paper's Fig. 6).
//!
//! [`SerPipeline`] glues the three levels together: it characterizes the
//! cell into POF tables (once per supply voltage), discretizes the
//! particle's ground-level spectrum into energy bins, runs the array-level
//! strike Monte Carlo at each bin's representative energy, and integrates
//! the FIT rate with Eq. 8.

use crate::array::{DataPattern, MemoryArray};
use crate::fit::{fit_rate, FitRate, PofBin};
use crate::strike::{ArrayPofEstimate, DepositMode, DirectionLaw, FlipModel, StrikeSimulator};
use crate::CoreError;
use finrad_environment::{AlphaSpectrum, ProtonSpectrum, Spectrum, SpectrumBin};
use finrad_finfet::Technology;
use finrad_numerics::rng::Xoshiro256pp;
use finrad_sram::{CellCharacterizer, CharacterizeOptions, PofTable, Variation};
use finrad_transport::fin::{FinGeometry, FinTraversal};
use finrad_transport::lut::EhpLut;
use finrad_transport::stopping::StoppingModel;
use finrad_transport::straggling::StragglingModel;
use finrad_units::{Energy, Particle, Voltage};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Technology node.
    pub tech: Technology,
    /// Array rows (paper: 9).
    pub rows: usize,
    /// Array columns (paper: 9).
    pub cols: usize,
    /// Stored data pattern.
    pub pattern: DataPattern,
    /// Process-variation treatment in the cell characterization.
    pub variation: Variation,
    /// Circuit-level characterization knobs.
    pub characterize: CharacterizeOptions,
    /// Arrival-direction law for atmospheric protons (cosine-weighted by
    /// default: flux through a horizontal die surface).
    pub proton_direction: DirectionLaw,
    /// Arrival-direction law for package alphas (isotropic by default:
    /// emission from material surrounding the die on all sides).
    pub alpha_direction: DirectionLaw,
    /// Pair-deposition mode of the strike MC.
    pub deposit: DepositMode,
    /// Straggling treatment of the per-cell flip probability.
    pub flip_model: FlipModel,
    /// Straggling model of the transport layer.
    pub straggling: StragglingModel,
    /// Strike-MC iterations per energy bin (paper: 10⁷ total).
    pub iterations_per_energy: u64,
    /// Number of energy bins the spectrum is discretized into.
    pub energy_bins: usize,
    /// Energy grid points of the device-level e-h pair LUT (used when
    /// `deposit` is [`DepositMode::LutMean`]).
    pub lut_energy_points: usize,
    /// Monte-Carlo traversals per LUT energy point.
    pub lut_samples: u64,
    /// Master RNG seed (results are deterministic given the seed).
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's baseline: 14 nm SOI FinFET, 9×9 checkerboard array,
    /// variation Monte Carlo, chord-exact transport with automatic
    /// straggling. Iteration counts are sized for minutes-scale runs;
    /// scale them up for publication-grade statistics.
    pub fn paper_baseline() -> Self {
        Self {
            tech: Technology::soi_finfet_14nm(),
            rows: 9,
            cols: 9,
            pattern: DataPattern::Checkerboard,
            variation: Variation::MonteCarlo { samples: 200 },
            characterize: CharacterizeOptions::default(),
            proton_direction: DirectionLaw::CosineDown,
            alpha_direction: DirectionLaw::IsotropicDown,
            deposit: DepositMode::ChordExact,
            flip_model: FlipModel::Expected,
            straggling: StragglingModel::Auto,
            iterations_per_energy: 20_000,
            energy_bins: 12,
            lut_energy_points: 17,
            lut_samples: 20_000,
            seed: 0xF1A7_5EED,
        }
    }

    /// A heavily reduced configuration for tests and smoke runs.
    pub fn smoke_test() -> Self {
        Self {
            rows: 3,
            cols: 3,
            variation: Variation::Nominal,
            characterize: CharacterizeOptions {
                settle: 5.0e-12,
                bisect_rel_tol: 0.1,
                ..CharacterizeOptions::default()
            },
            iterations_per_energy: 500,
            energy_bins: 5,
            ..Self::paper_baseline()
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CoreError::InvalidConfig(
                "array dimensions must be non-zero".into(),
            ));
        }
        if self.iterations_per_energy == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one iteration per energy".into(),
            ));
        }
        if self.energy_bins == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one energy bin".into(),
            ));
        }
        Ok(())
    }
}

/// The SER report for one (particle, V_dd) point.
#[derive(Debug, Clone)]
pub struct SerReport {
    /// Particle species.
    pub particle: Particle,
    /// Supply voltage.
    pub vdd: Voltage,
    /// Total FIT rate (the paper's Fig. 9 quantity).
    pub fit_total: f64,
    /// SEU-only FIT rate.
    pub fit_seu: f64,
    /// MBU-only FIT rate.
    pub fit_mbu: f64,
    /// Per-bin detail.
    pub bins: Vec<PofBin>,
}

impl SerReport {
    /// MBU/SEU ratio in percent (Fig. 10). An MBU-only spectrum reports
    /// `f64::INFINITY`, not 0 (see [`crate::fit::mbu_to_seu_ratio`]).
    pub fn mbu_to_seu_percent(&self) -> f64 {
        100.0 * crate::fit::mbu_to_seu_ratio(self.fit_mbu, self.fit_seu)
    }
}

/// The end-to-end pipeline.
pub struct SerPipeline {
    config: PipelineConfig,
}

impl SerPipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Builds the circuit-level POF table at `vdd` (the expensive step —
    /// cache and reuse it across energies and particles).
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn build_pof_table(&self, vdd: Voltage) -> Result<PofTable, CoreError> {
        self.config.validate()?;
        let ch = CellCharacterizer::new(self.config.tech.clone(), self.config.characterize.clone());
        Ok(ch.build_table(vdd, self.config.variation, self.config.seed)?)
    }

    /// The memory array for the configured geometry.
    pub fn build_array(&self) -> MemoryArray {
        MemoryArray::build(
            &self.config.tech,
            self.config.rows,
            self.config.cols,
            self.config.pattern,
        )
    }

    pub(crate) fn traversal(&self) -> FinTraversal {
        let g = FinGeometry {
            width: self.config.tech.w_fin,
            length: self.config.tech.l_gate,
            height: self.config.tech.h_fin,
        };
        FinTraversal::new(g, StoppingModel::silicon(), self.config.straggling)
    }

    /// The arrival-direction law used for `particle`.
    pub fn direction_for(&self, particle: Particle) -> DirectionLaw {
        match particle {
            Particle::Proton => self.config.proton_direction,
            Particle::Alpha => self.config.alpha_direction,
        }
    }

    /// Builds the device-level electron-hole pair LUT for `particle`
    /// (needed by [`DepositMode::LutMean`]; built over 0.1-10^3 MeV).
    pub fn build_ehp_lut(&self, particle: Particle) -> EhpLut {
        // The 0x1A7 tag decorrelates the LUT-build stream from the MC
        // streams; it predates `salted_stream` and its draws are pinned by
        // golden tests, so the inline derivation stays.
        // finrad-lint: allow(seed-discipline)
        let mut rng = Xoshiro256pp::seed_from_u64(self.config.seed ^ 0x1A7 ^ particle as u64);
        EhpLut::build(
            &self.traversal(),
            particle,
            Energy::from_mev(0.1),
            Energy::from_mev(1.0e3),
            self.config.lut_energy_points,
            self.config.lut_samples,
            &mut rng,
        )
    }

    /// The ground-level spectrum for `particle`.
    pub fn spectrum(&self, particle: Particle) -> Box<dyn Spectrum> {
        match particle {
            Particle::Proton => Box::new(ProtonSpectrum::sea_level()),
            Particle::Alpha => Box::new(AlphaSpectrum::paper_default()),
        }
    }

    /// Energy bins for the FIT integral: the alpha spectrum's full 10 MeV
    /// range, or the proton spectrum clipped to the direct-ionization band
    /// (0.1–10³ MeV; above it the stopping power — and hence POF — is
    /// negligible while the flux keeps falling).
    pub fn energy_bins(&self, particle: Particle) -> Vec<SpectrumBin> {
        let spectrum = self.spectrum(particle);
        match particle {
            Particle::Alpha => spectrum.discretize(self.config.energy_bins),
            Particle::Proton => {
                let bins =
                    finrad_numerics::quadrature::log_bins(0.1, 1.0e3, self.config.energy_bins);
                bins.into_iter()
                    .map(|b| SpectrumBin {
                        energy: Energy::from_mev(b.representative),
                        lo: Energy::from_mev(b.lo),
                        hi: Energy::from_mev(b.hi),
                        integral_flux: spectrum
                            .integral_flux(Energy::from_mev(b.lo), Energy::from_mev(b.hi)),
                    })
                    .collect()
            }
        }
    }

    /// Measures the array POF at each of `energies` under forced hits —
    /// the paper's Fig. 8 experiment.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn pof_vs_energy(
        &self,
        particle: Particle,
        vdd: Voltage,
        energies: &[Energy],
    ) -> Result<Vec<(Energy, ArrayPofEstimate)>, CoreError> {
        let table = self.build_pof_table(vdd)?;
        Ok(self.pof_vs_energy_with_table(particle, &table, energies))
    }

    /// Fig. 8 sweep reusing a prebuilt POF table.
    pub fn pof_vs_energy_with_table(
        &self,
        particle: Particle,
        table: &PofTable,
        energies: &[Energy],
    ) -> Vec<(Energy, ArrayPofEstimate)> {
        let array = self.build_array();
        let traversal = self.traversal();
        let lut =
            (self.config.deposit == DepositMode::LutMean).then(|| self.build_ehp_lut(particle));
        let sim = StrikeSimulator::new(
            &array,
            traversal,
            table,
            self.direction_for(particle),
            self.config.deposit,
            self.config.flip_model,
            lut.as_ref(),
        );
        energies
            .iter()
            .enumerate()
            .map(|(k, &e)| {
                let est = sim.estimate(
                    particle,
                    e,
                    self.config.iterations_per_energy,
                    self.config.seed.wrapping_add(k as u64 * 7919),
                );
                (e, est)
            })
            .collect()
    }

    /// Runs the full pipeline for one (particle, V_dd): characterize, bin
    /// the spectrum, Monte-Carlo each bin, and integrate the FIT rate.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures and configuration errors.
    pub fn run(&self, particle: Particle, vdd: Voltage) -> Result<SerReport, CoreError> {
        let table = self.build_pof_table(vdd)?;
        Ok(self.run_with_table(particle, vdd, &table))
    }

    /// Full pipeline reusing a prebuilt POF table (`vdd` must match the
    /// table's characterization voltage).
    pub fn run_with_table(&self, particle: Particle, vdd: Voltage, table: &PofTable) -> SerReport {
        let bins = self.energy_bins(particle);
        let array = self.build_array();
        let traversal = self.traversal();
        let lut =
            (self.config.deposit == DepositMode::LutMean).then(|| self.build_ehp_lut(particle));
        let sim = StrikeSimulator::new(
            &array,
            traversal,
            table,
            self.direction_for(particle),
            self.config.deposit,
            self.config.flip_model,
            lut.as_ref(),
        );
        let pof_bins: Vec<PofBin> = bins
            .iter()
            .enumerate()
            .map(|(k, sb)| {
                let est = sim.estimate(
                    particle,
                    sb.energy,
                    self.config.iterations_per_energy,
                    self.config.seed.wrapping_add(0xB10C + k as u64 * 6271),
                );
                PofBin {
                    spectrum: *sb,
                    pof_total: est.total.mean(),
                    pof_seu: est.seu.mean(),
                    pof_mbu: est.mbu.mean(),
                }
            })
            .collect();
        let fit: FitRate = fit_rate(&pof_bins, array.footprint());
        SerReport {
            particle,
            vdd,
            fit_total: fit.total,
            fit_seu: fit.seu,
            fit_mbu: fit.mbu,
            bins: pof_bins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut c = PipelineConfig::smoke_test();
        c.rows = 0;
        assert!(matches!(
            SerPipeline::new(c).build_pof_table(Voltage::from_volts(0.8)),
            Err(CoreError::InvalidConfig(_))
        ));
        let mut c2 = PipelineConfig::smoke_test();
        c2.energy_bins = 0;
        assert!(c2.validate().is_err());
        assert!(PipelineConfig::paper_baseline().validate().is_ok());
    }

    #[test]
    fn energy_bins_cover_expected_ranges() {
        let p = SerPipeline::new(PipelineConfig::smoke_test());
        let alpha_bins = p.energy_bins(Particle::Alpha);
        assert_eq!(alpha_bins.len(), 5);
        assert!(alpha_bins.last().unwrap().hi.mev() <= 10.0 + 1e-6);
        let proton_bins = p.energy_bins(Particle::Proton);
        assert!(proton_bins.last().unwrap().hi.mev() <= 1.0e3 + 1.0);
        // All bins carry non-negative flux.
        for b in alpha_bins.iter().chain(&proton_bins) {
            assert!(b.integral_flux.per_m2_second() >= 0.0);
        }
    }

    #[test]
    fn smoke_run_produces_finite_report() {
        let p = SerPipeline::new(PipelineConfig::smoke_test());
        let report = p.run(Particle::Alpha, Voltage::from_volts(0.8)).unwrap();
        assert!(report.fit_total.is_finite() && report.fit_total >= 0.0);
        assert!(report.fit_seu <= report.fit_total + 1e-9);
        assert!(
            (report.fit_seu + report.fit_mbu - report.fit_total).abs()
                <= 1e-6 * report.fit_total.max(1.0)
        );
        assert_eq!(report.bins.len(), 5);
        assert!(report.mbu_to_seu_percent() >= 0.0);
    }

    #[test]
    fn mbu_only_report_has_infinite_ratio() {
        let report = SerReport {
            particle: Particle::Alpha,
            vdd: Voltage::from_volts(0.8),
            fit_total: 3.0,
            fit_seu: 0.0,
            fit_mbu: 3.0,
            bins: Vec::new(),
        };
        assert_eq!(report.mbu_to_seu_percent(), f64::INFINITY);
        let empty = SerReport {
            fit_total: 0.0,
            fit_mbu: 0.0,
            bins: Vec::new(),
            ..report
        };
        assert_eq!(empty.mbu_to_seu_percent(), 0.0);
    }

    #[test]
    fn fig8_trend_alpha_pof_decreases_with_energy() {
        let mut cfg = PipelineConfig::smoke_test();
        cfg.iterations_per_energy = 3000;
        let p = SerPipeline::new(cfg);
        let energies = [Energy::from_mev(1.0), Energy::from_mev(50.0)];
        let res = p
            .pof_vs_energy(Particle::Alpha, Voltage::from_volts(0.8), &energies)
            .unwrap();
        let low = res[0].1.total.mean();
        let high = res[1].1.total.mean();
        assert!(low > high, "POF should fall with energy: {low} vs {high}");
    }

    #[test]
    fn ser_rises_at_lower_vdd() {
        // The paper's headline Fig. 9 trend, checked on the smoke config.
        let mut cfg = PipelineConfig::smoke_test();
        cfg.iterations_per_energy = 3000;
        let p = SerPipeline::new(cfg);
        let low = p.run(Particle::Alpha, Voltage::from_volts(0.7)).unwrap();
        let high = p.run(Particle::Alpha, Voltage::from_volts(1.1)).unwrap();
        assert!(
            low.fit_total > high.fit_total,
            "FIT(0.7V) = {} should exceed FIT(1.1V) = {}",
            low.fit_total,
            high.fit_total
        );
    }
}
