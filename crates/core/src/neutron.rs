//! Neutron-induced (indirect ionization) SER — the paper's future work.
//!
//! **Extension beyond the paper.** Neutrons deposit no charge directly;
//! the engine here models the two-step process: a nuclear reaction in the
//! silicon around the array produces a charged secondary
//! (`finrad-transport::neutron`), whose dense track is then traced through
//! the fin layout with the *same* machinery as the direct-ionization flow
//! (chords → charge → per-cell POF → Eqs. 4–6).
//!
//! Reactions are rare (mean free paths of tens of centimetres), so the
//! estimator importance-weights every history: one reaction is *forced*
//! at a uniform point along the neutron's path through the interaction
//! volume, and the resulting upset probabilities are scaled by the actual
//! interaction probability `1 − exp(−Σ·L)`. Combined with the secondary's
//! micron-scale range, this keeps neutron statistics tractable at the same
//! iteration counts as the direct flow.

use crate::array::{clamp_pof, MemoryArray};
use crate::fit::{fit_rate, FitRate, PofBin};
use crate::strike::{combine_cell_pofs, estimate_chunked, ArrayPofEstimate, IterationOutcome};
use finrad_environment::{NeutronSpectrum, Spectrum};
use finrad_geometry::trace::trace_boxes;
use finrad_geometry::{sampling, Aabb, Ray, Vec3};
use finrad_numerics::rng::{Rng, Xoshiro256pp};
use finrad_sram::{PofTable, StrikeCombo, StrikeTarget};
use finrad_transport::neutron::NeutronInteraction;
use finrad_units::{constants, Charge, Energy, Length};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;

/// Geometry of the neutron interaction volume around the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeutronVolume {
    /// Lateral margin beyond the array footprint on each side — secondaries
    /// born this far away can still reach the fins.
    pub margin_xy: Length,
    /// Material budget above the fin tops that can host reactions
    /// (BEOL/substrate overburden, treated as silicon-equivalent).
    pub overburden: Length,
}

impl Default for NeutronVolume {
    fn default() -> Self {
        Self {
            margin_xy: Length::from_um(2.0),
            overburden: Length::from_um(1.0),
        }
    }
}

/// The neutron strike simulator.
pub struct NeutronSimulator<'a> {
    array: &'a MemoryArray,
    boxes: Vec<Aabb>,
    interaction: NeutronInteraction,
    pof: &'a PofTable,
    volume: Aabb,
    volume_cfg: NeutronVolume,
}

impl<'a> NeutronSimulator<'a> {
    /// Creates a simulator over `array` with POF tables `pof`.
    pub fn new(
        array: &'a MemoryArray,
        interaction: NeutronInteraction,
        pof: &'a PofTable,
        volume_cfg: NeutronVolume,
    ) -> Self {
        let b = array.bounds();
        let m = volume_cfg.margin_xy.meters();
        let volume = Aabb::new(
            b.min_corner() - Vec3::new(m, m, 0.0),
            b.max_corner() + Vec3::new(m, m, volume_cfg.overburden.meters()),
        );
        Self {
            array,
            boxes: array.fin_boxes(),
            interaction,
            pof,
            volume,
            volume_cfg,
        }
    }

    /// The interaction volume (array + margins).
    pub fn volume(&self) -> Aabb {
        self.volume
    }

    /// The flux collection area of the inflated volume (for Eq. 8).
    pub fn collection_area(&self) -> finrad_units::Area {
        let s = self.volume.size();
        finrad_units::Area::from_square_meters(s.x * s.y)
    }

    /// One importance-weighted neutron history at energy `energy`.
    pub fn simulate_one<R: Rng + ?Sized>(&self, energy: Energy, rng: &mut R) -> IterationOutcome {
        // Neutron entry on the inflated top plane, cosine-law downward.
        let launch = sampling::point_on_top_face(rng, &self.volume);
        let dir = sampling::cosine_law_hemisphere(rng);
        let ray = Ray::new(launch, dir);
        let Some(hit) = self.volume.intersect(&ray) else {
            return IterationOutcome::default();
        };
        let path = Length::from_meters(hit.chord_length());
        let p_int = self.interaction.interaction_probability(energy, path);
        if p_int <= 0.0 {
            return IterationOutcome::default();
        }

        // Force one reaction uniformly along the in-volume path.
        let t = rng.gen_range(hit.t_enter..hit.t_exit.max(hit.t_enter + 1e-300));
        let site = ray.at(t);
        let ion = self.interaction.sample_secondary(energy, rng);
        let ion_dir = sampling::isotropic_direction(rng);
        let ion_ray = Ray::new(site, ion_dir);

        // Trace the secondary through the fins, spending its energy.
        let crossings = trace_boxes(&ion_ray, &self.boxes);
        if crossings.is_empty() {
            return IterationOutcome::default();
        }
        let range = ion.range().meters();
        let mut remaining = ion.energy;
        let mut per_cell: BTreeMap<usize, Vec<(StrikeTarget, f64)>> = BTreeMap::new();
        for crossing in &crossings {
            if remaining.ev() <= 0.0 || crossing.hit.t_enter > range {
                break;
            }
            let fin = &self.array.fins()[crossing.index];
            let deposit = (ion.let_linear * crossing.chord()).qmin(remaining);
            remaining -= deposit;
            if let Some(target) = fin.target {
                let pairs = (deposit / constants::EHP_PAIR_ENERGY).value();
                if pairs >= 1.0 {
                    per_cell
                        .entry(fin.cell)
                        .or_default()
                        .push((target, Charge::from_electrons(pairs).coulombs()));
                }
            }
        }
        if per_cell.is_empty() {
            return IterationOutcome::default();
        }

        let mut pofs: Vec<f64> = Vec::with_capacity(per_cell.len());
        for (_cell, hits) in per_cell {
            let targets: Vec<StrikeTarget> = hits.iter().map(|(t, _)| *t).collect();
            let combo = StrikeCombo::new(&targets);
            let total: f64 = hits.iter().map(|(_, q)| q).sum();
            // Uncharacterized combos are quarantined as NaN, not crashed on.
            pofs.push(match self.pof.pof(combo, Charge::from_coulombs(total)) {
                Some(p) => clamp_pof(p),
                None => f64::NAN,
            });
        }
        let outcome = combine_cell_pofs(&pofs);
        // Importance weight: the forced reaction actually happens with
        // probability p_int per history.
        IterationOutcome {
            pof_total: outcome.pof_total * p_int,
            pof_seu: outcome.pof_seu * p_int,
            pof_mbu: outcome.pof_mbu * p_int,
            cells_struck: outcome.cells_struck,
        }
    }

    /// Runs `iterations` histories at one energy across worker threads.
    ///
    /// RNG streams are derived per fixed-size logical chunk (see
    /// [`crate::strike::MC_CHUNK_ITERATIONS`]), not per worker thread, so
    /// same-seed results are bit-identical regardless of the host's core
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn estimate(&self, energy: Energy, iterations: u64, seed: u64) -> ArrayPofEstimate {
        let threads = std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        self.estimate_with_threads(energy, iterations, seed, threads)
    }

    /// [`Self::estimate`] with an explicit worker count; any `threads`
    /// value yields the same bits (the knob exists for the determinism
    /// regression test and callers with their own parallelism budget).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn estimate_with_threads(
        &self,
        energy: Energy,
        iterations: u64,
        seed: u64,
        threads: NonZeroUsize,
    ) -> ArrayPofEstimate {
        assert!(iterations > 0, "need at least one iteration");
        let timer = finrad_observe::span(finrad_observe::keys::NEUTRON_ESTIMATE_SECONDS);
        let out = estimate_chunked(iterations, threads, |chunk, len| {
            let mut rng = Xoshiro256pp::salted_stream(seed, chunk + 1, 0xA076_1D64_78BD_642F);
            let mut acc = ArrayPofEstimate::default();
            for _ in 0..len {
                acc.push(self.simulate_one(energy, &mut rng));
            }
            finrad_observe::counter_add(finrad_observe::keys::NEUTRON_ITERATIONS, len);
            acc
        });
        finrad_observe::counter_add(finrad_observe::keys::NEUTRON_QUARANTINED, out.quarantined);
        if let Some(secs) = timer.elapsed_seconds() {
            if secs > 0.0 {
                finrad_observe::record(
                    finrad_observe::keys::NEUTRON_ITERS_PER_SEC,
                    iterations as f64 / secs,
                );
            }
        }
        out
    }

    /// Full neutron SER: discretize the sea-level spectrum, Monte-Carlo
    /// each bin and integrate Eq. 8 over the collection area.
    pub fn ser(
        &self,
        spectrum: &NeutronSpectrum,
        energy_bins: usize,
        iterations_per_bin: u64,
        seed: u64,
    ) -> (FitRate, Vec<PofBin>) {
        let bins = spectrum.discretize(energy_bins);
        let pof_bins: Vec<PofBin> = bins
            .iter()
            .enumerate()
            .map(|(k, sb)| {
                let est = self.estimate(
                    sb.energy,
                    iterations_per_bin,
                    seed.wrapping_add(k as u64 * 104_729),
                );
                PofBin {
                    spectrum: *sb,
                    pof_total: est.total.mean(),
                    pof_seu: est.seu.mean(),
                    pof_mbu: est.mbu.mean(),
                }
            })
            .collect();
        (fit_rate(&pof_bins, self.collection_area()), pof_bins)
    }

    /// The configured margins.
    pub fn volume_config(&self) -> NeutronVolume {
        self.volume_cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataPattern;
    use finrad_finfet::Technology;
    use finrad_sram::{CellCharacterizer, CharacterizeOptions, Variation};
    use finrad_units::Voltage;

    fn table() -> PofTable {
        CellCharacterizer::new(
            Technology::soi_finfet_14nm(),
            CharacterizeOptions {
                settle: 5.0e-12,
                bisect_rel_tol: 0.1,
                ..CharacterizeOptions::default()
            },
        )
        .build_table(Voltage::from_volts(0.8), Variation::Nominal, 2)
        .expect("characterization")
    }

    #[test]
    fn volume_inflates_bounds() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let pof = table();
        let sim = NeutronSimulator::new(
            &array,
            NeutronInteraction::silicon(),
            &pof,
            NeutronVolume::default(),
        );
        let v = sim.volume();
        let b = array.bounds();
        assert!(v.size().x > b.size().x);
        assert!(v.size().z > b.size().z);
        assert!(sim.collection_area().square_meters() > array.footprint().square_meters());
        assert_eq!(sim.volume_config(), NeutronVolume::default());
    }

    #[test]
    fn neutron_pof_is_tiny_but_nonzero() {
        // The point of the importance weighting: with only 20k histories a
        // per-history POF of order 1e-10..1e-7 is resolvable.
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let pof = table();
        let sim = NeutronSimulator::new(
            &array,
            NeutronInteraction::silicon(),
            &pof,
            NeutronVolume::default(),
        );
        let est = sim.estimate(Energy::from_mev(100.0), 20_000, 5);
        let mean = est.total.mean();
        assert!(mean > 0.0, "expected nonzero neutron POF");
        assert!(mean < 1.0e-3, "neutron POF should be rare: {mean}");
    }

    #[test]
    fn neutron_ser_end_to_end() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 3, 3, DataPattern::Checkerboard);
        let pof = table();
        let sim = NeutronSimulator::new(
            &array,
            NeutronInteraction::silicon(),
            &pof,
            NeutronVolume::default(),
        );
        let (fit, bins) = sim.ser(&NeutronSpectrum::sea_level(), 4, 8_000, 9);
        assert_eq!(bins.len(), 4);
        assert!(fit.total.is_finite() && fit.total >= 0.0);
        assert!((fit.seu + fit.mbu - fit.total).abs() <= 1e-9 * fit.total.max(1.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 2, 2, DataPattern::Checkerboard);
        let pof = table();
        let sim = NeutronSimulator::new(
            &array,
            NeutronInteraction::silicon(),
            &pof,
            NeutronVolume::default(),
        );
        let a = sim.estimate(Energy::from_mev(50.0), 2_000, 42);
        let b = sim.estimate(Energy::from_mev(50.0), 2_000, 42);
        assert_eq!(a.total.mean(), b.total.mean());
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        // Core-count regression (see strike.rs for the direct-ionization
        // twin): a forced single-worker run must match the multi-worker
        // run bit for bit.
        let tech = Technology::soi_finfet_14nm();
        let array = MemoryArray::build(&tech, 2, 2, DataPattern::Checkerboard);
        let pof = table();
        let sim = NeutronSimulator::new(
            &array,
            NeutronInteraction::silicon(),
            &pof,
            NeutronVolume::default(),
        );
        let e = Energy::from_mev(100.0);
        let iters = 2 * crate::strike::MC_CHUNK_ITERATIONS + 57;
        let single = sim.estimate_with_threads(e, iters, 11, NonZeroUsize::new(1).unwrap());
        let multi = sim.estimate_with_threads(e, iters, 11, NonZeroUsize::new(5).unwrap());
        let default = sim.estimate(e, iters, 11);
        assert_eq!(single.total.count(), iters);
        assert_eq!(single.total.mean().to_bits(), multi.total.mean().to_bits());
        assert_eq!(single, multi);
        assert_eq!(single, default);
    }
}
