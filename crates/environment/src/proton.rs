//! Sea-level proton spectrum (the paper's Fig. 2(a)).
//!
//! The paper cites Hagmann, Lange and Wright's Monte-Carlo simulation of
//! proton-induced cosmic-ray cascades for the differential proton intensity
//! at sea level. We reproduce the figure's log–log shape with a
//! piecewise-power-law fit: intensity ≈ 10⁻² 1/(m²·s·sr·MeV) at 1 MeV,
//! falling to ≈ 10⁻¹⁴ at 10⁷ MeV, with the characteristic steepening above
//! ~1 GeV. The per-steradian intensity is converted to a flux through a
//! horizontal surface by the cosine-weighted solid-angle factor π sr.

use crate::Spectrum;
use finrad_numerics::interp::LogLogTable;
use finrad_units::{Energy, Particle};

/// Effective solid angle for converting an isotropic-in-the-upper-hemisphere
/// intensity (per steradian) into a flux through a horizontal plane:
/// ∫ cosθ dΩ over the upper hemisphere = π.
const COSINE_WEIGHTED_SOLID_ANGLE_SR: f64 = std::f64::consts::PI;

/// Sea-level differential proton spectrum.
///
/// # Examples
///
/// ```
/// use finrad_environment::{ProtonSpectrum, Spectrum};
/// use finrad_units::Energy;
///
/// let p = ProtonSpectrum::sea_level();
/// // Monotonically decreasing with energy.
/// assert!(p.differential(Energy::from_mev(1.0)) > p.differential(Energy::from_mev(100.0)));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtonSpectrum {
    /// Intensity table in 1/(m²·s·sr·MeV) vs energy in MeV.
    intensity: LogLogTable,
    lo_mev: f64,
    hi_mev: f64,
}

impl ProtonSpectrum {
    /// The sea-level spectrum fitted to the paper's Fig. 2(a).
    ///
    /// Anchor points (MeV → 1/(m²·s·sr·MeV)) follow the figure: a gently
    /// falling region below ~100 MeV, then a cosmic-ray-like power law
    /// (spectral index ≈ −2.7) up to 10 TeV.
    pub fn sea_level() -> Self {
        let energies_mev = vec![
            1.0e-1, 1.0, 3.0, 1.0e1, 3.0e1, 1.0e2, 3.0e2, 1.0e3, 3.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7,
        ];
        let intensity = vec![
            1.5e-2, 1.0e-2, 6.0e-3, 3.0e-3, 1.2e-3, 3.0e-4, 5.0e-5, 4.0e-6, 4.0e-7, 2.0e-8,
            5.0e-11, 1.0e-13, 3.0e-16,
        ];
        Self {
            intensity: LogLogTable::from_static(energies_mev, intensity),
            lo_mev: 1.0e-1,
            hi_mev: 1.0e7,
        }
    }

    /// A spectrum scaled by `factor` — e.g. for altitude or shielding
    /// studies (flux scales roughly ×10 at avionics altitudes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let xs: Vec<f64> = finrad_numerics::interp::log_space(self.lo_mev, self.hi_mev, 64);
        // The floor keeps the strict-positivity invariant even when a tiny
        // `factor` underflows the smallest intensities to zero.
        let ys: Vec<f64> = xs
            .iter()
            .map(|&e| (self.intensity.eval(e) * factor).max(f64::MIN_POSITIVE))
            .collect();
        Self {
            intensity: LogLogTable::from_static(xs, ys),
            lo_mev: self.lo_mev,
            hi_mev: self.hi_mev,
        }
    }

    /// Raw per-steradian intensity at `energy`, 1/(m²·s·sr·MeV).
    pub fn intensity_per_sr(&self, energy: Energy) -> f64 {
        let e = energy.mev();
        // Small relative tolerance so log-spaced grids that land exactly on
        // the domain edges (up to floating-point rounding) are not zeroed.
        if e < self.lo_mev * (1.0 - 1.0e-9) || e > self.hi_mev * (1.0 + 1.0e-9) {
            0.0
        } else {
            self.intensity.eval(e.max(self.lo_mev))
        }
    }
}

impl Default for ProtonSpectrum {
    fn default() -> Self {
        Self::sea_level()
    }
}

impl Spectrum for ProtonSpectrum {
    fn particle(&self) -> Particle {
        Particle::Proton
    }

    fn differential(&self, energy: Energy) -> f64 {
        self.intensity_per_sr(energy) * COSINE_WEIGHTED_SOLID_ANGLE_SR
    }

    fn domain(&self) -> (Energy, Energy) {
        (Energy::from_mev(self.lo_mev), Energy::from_mev(self.hi_mev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spectrum;

    #[test]
    fn monotone_decreasing() {
        let p = ProtonSpectrum::sea_level();
        let es = finrad_numerics::interp::log_space(0.1, 1.0e7, 40);
        for w in es.windows(2) {
            let a = p.differential(Energy::from_mev(w[0]));
            let b = p.differential(Energy::from_mev(w[1]));
            assert!(
                a >= b,
                "spectrum must fall with energy: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn figure_2a_anchor_values() {
        let p = ProtonSpectrum::sea_level();
        // ~1e-2 at 1 MeV and ~1e-14-ish at 1e7 MeV per Fig. 2(a), per sr.
        let at_1 = p.intensity_per_sr(Energy::from_mev(1.0));
        assert!((0.5e-2..2.0e-2).contains(&at_1), "{at_1}");
        let at_hi = p.intensity_per_sr(Energy::from_mev(1.0e7));
        assert!(at_hi < 1.0e-13, "{at_hi}");
    }

    #[test]
    fn zero_outside_domain() {
        let p = ProtonSpectrum::sea_level();
        assert_eq!(p.differential(Energy::from_mev(0.01)), 0.0);
        assert_eq!(p.differential(Energy::from_mev(1.0e9)), 0.0);
    }

    #[test]
    fn low_energy_dominates_total_flux() {
        // The integral flux below 10 MeV exceeds the flux above 1 GeV —
        // this is why low-Vdd proton SER matters (paper §6).
        let p = ProtonSpectrum::sea_level();
        let low = p
            .integral_flux(Energy::from_mev(0.1), Energy::from_mev(10.0))
            .per_m2_second();
        let high = p
            .integral_flux(Energy::from_mev(1.0e3), Energy::from_mev(1.0e7))
            .per_m2_second();
        assert!(low > 5.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn scaling_scales_flux() {
        let p = ProtonSpectrum::sea_level();
        let p10 = p.scaled(10.0);
        let r = p10.total_flux().per_m2_second() / p.total_flux().per_m2_second();
        assert!((r - 10.0).abs() < 0.5, "ratio {r}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scaling_rejects_nonpositive() {
        let _ = ProtonSpectrum::sea_level().scaled(0.0);
    }

    #[test]
    fn solid_angle_factor_applied() {
        let p = ProtonSpectrum::sea_level();
        let e = Energy::from_mev(5.0);
        let ratio = p.differential(e) / p.intensity_per_sr(e);
        assert!((ratio - std::f64::consts::PI).abs() < 1e-12);
    }
}
