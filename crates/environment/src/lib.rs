//! Ground-level radiation environment models.
//!
//! The paper's Section 3.1 identifies the two direct-ionizing particle
//! sources at ground level that its analysis covers:
//!
//! * **Atmospheric low-energy protons** — Fig. 2(a) shows the sea-level
//!   differential proton spectrum (after Hagmann et al.), spanning
//!   1–10⁷ MeV with intensities from ~10⁻² down to ~10⁻¹⁴ 1/(m²·s·sr·MeV).
//! * **Terrestrial alpha particles** — Fig. 2(b) shows the emission
//!   spectrum of package impurities (²³⁸U, ²³⁵U, ²³²Th chains) below
//!   10 MeV, normalized to a total emission rate of 0.001 α/(h·cm²).
//!
//! Both are exposed through the [`Spectrum`] trait, which is what the FIT
//! integration (the paper's Eq. 7/8) consumes: a differential intensity and
//! the derived per-bin integral fluxes.
//!
//! # Examples
//!
//! ```
//! use finrad_environment::{AlphaSpectrum, Spectrum};
//! use finrad_units::Flux;
//!
//! let alpha = AlphaSpectrum::package_emission(Flux::from_per_cm2_hour(0.001));
//! let total = alpha.total_flux();
//! assert!((total.per_cm2_hour() - 0.001).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod alpha;
mod neutron;
mod proton;

pub use alpha::AlphaSpectrum;
pub use neutron::NeutronSpectrum;
pub use proton::ProtonSpectrum;

use finrad_numerics::quadrature::{log_bins, trapezoid_fn, Bin};
use finrad_units::{Energy, Flux, Particle};

/// A differential particle-flux spectrum at ground level.
///
/// Implementations return the omnidirectional intensity through a horizontal
/// surface, i.e. solid angle is already folded in, so that multiplying by an
/// area and a time yields a particle count.
pub trait Spectrum {
    /// Which particle species this spectrum describes.
    fn particle(&self) -> Particle;

    /// Differential flux at `energy`, in particles/(m²·s·MeV).
    ///
    /// Returns 0 outside the supported energy range.
    fn differential(&self, energy: Energy) -> f64;

    /// Supported energy range `(min, max)`.
    fn domain(&self) -> (Energy, Energy);

    /// Integral flux over `[lo, hi]`.
    ///
    /// The integration runs in log-energy space (`∫f dE = ∫ f·E d(ln E)`,
    /// 256 trapezoidal panels), which is accurate for spectra spanning many
    /// decades of energy.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not strictly positive or `hi < lo`.
    fn integral_flux(&self, lo: Energy, hi: Energy) -> Flux {
        assert!(lo.mev() > 0.0, "integral lower bound must be positive");
        let (llo, lhi) = (lo.mev().ln(), hi.mev().ln());
        let f = trapezoid_fn(
            |u| {
                let e = u.exp();
                self.differential(Energy::from_mev(e)) * e
            },
            llo,
            lhi,
            256,
        );
        Flux::from_per_m2_second(f)
    }

    /// Total flux over the full supported range.
    fn total_flux(&self) -> Flux {
        let (lo, hi) = self.domain();
        self.integral_flux(lo, hi)
    }

    /// Discretizes the spectrum into `n` logarithmic energy bins, returning
    /// for each the representative energy and the integral flux — exactly
    /// the `(E, IntFlux(E))` pairs of the paper's Eq. 8.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn discretize(&self, n: usize) -> Vec<SpectrumBin> {
        assert!(n > 0, "need at least one bin");
        let (lo, hi) = self.domain();
        log_bins(lo.mev(), hi.mev(), n)
            .into_iter()
            .map(|b: Bin| SpectrumBin {
                energy: Energy::from_mev(b.representative),
                lo: Energy::from_mev(b.lo),
                hi: Energy::from_mev(b.hi),
                integral_flux: self.integral_flux(Energy::from_mev(b.lo), Energy::from_mev(b.hi)),
            })
            .collect()
    }
}

/// One discretized energy bin of a spectrum: the representative energy at
/// which POF is evaluated and the integral flux weighting it in Eq. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Representative energy of the bin (geometric mean of the edges).
    pub energy: Energy,
    /// Lower bin edge.
    pub lo: Energy,
    /// Upper bin edge.
    pub hi: Energy,
    /// Integral flux over the bin.
    pub integral_flux: Flux,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretized_bins_cover_domain_and_sum_to_total() {
        let p = ProtonSpectrum::sea_level();
        let bins = p.discretize(64);
        assert_eq!(bins.len(), 64);
        let (lo, hi) = p.domain();
        assert!((bins[0].lo.mev() - lo.mev()).abs() < 1e-9 * lo.mev());
        assert!((bins.last().unwrap().hi.mev() - hi.mev()).abs() < 1e-6 * hi.mev());
        let total_from_bins: f64 = bins.iter().map(|b| b.integral_flux.per_m2_second()).sum();
        let total = p.total_flux().per_m2_second();
        assert!(
            (total_from_bins - total).abs() / total < 0.02,
            "bins {total_from_bins} vs total {total}"
        );
    }

    #[test]
    fn representative_inside_bin() {
        let a = AlphaSpectrum::default();
        for b in a.discretize(16) {
            assert!(b.energy >= b.lo && b.energy <= b.hi);
        }
    }
}
