//! Terrestrial alpha emission spectrum (the paper's Fig. 2(b)).
//!
//! Alpha particles are emitted by ²³⁸U, ²³⁵U and ²³²Th contamination in
//! package and interconnect materials, with discrete line energies below
//! 10 MeV that are smeared by emission depth into the continuous spectrum
//! of Fig. 2(b) (after Sai-Halasz, Wordeman and Dennard). The paper assumes
//! a total emission rate of **0.001 α/(h·cm²)** (Baumann's "ultra-low
//! alpha" materials figure).

use crate::Spectrum;
use finrad_numerics::interp::LinearTable;
use finrad_numerics::quadrature::trapezoid;
use finrad_units::{Energy, Flux, Particle};

/// Terrestrial alpha-particle emission spectrum, normalized to a total
/// emission rate.
///
/// # Examples
///
/// ```
/// use finrad_environment::{AlphaSpectrum, Spectrum};
/// use finrad_units::{Energy, Flux};
///
/// let a = AlphaSpectrum::package_emission(Flux::from_per_cm2_hour(0.001));
/// let peak = a.differential(Energy::from_mev(5.5));
/// let tail = a.differential(Energy::from_mev(9.5));
/// assert!(peak > tail);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AlphaSpectrum {
    /// Normalized spectral density over [0.1, 10] MeV, 1/(m²·s·MeV).
    density: LinearTable,
    lo_mev: f64,
    hi_mev: f64,
}

/// Shape of the Fig. 2(b) emission spectrum (MeV → relative intensity).
///
/// The energy axis carries the main decay-chain lines — 4.2 MeV (²³⁸U),
/// 4.4/4.6 MeV (²³⁵U chain), 5.3–6.1 MeV (²¹⁰Po, ²¹²Bi/²²⁰Rn region),
/// 8.78 MeV (²¹²Po) — broadened by emission-depth degradation into the
/// smooth envelope seen in the figure: rising through 2–6 MeV, dipping,
/// then a secondary bump near 8.8 MeV.
const SHAPE_MEV: [f64; 12] = [0.1, 1.0, 2.0, 3.0, 4.2, 5.0, 5.5, 6.1, 7.0, 8.0, 8.8, 10.0];
const SHAPE_REL: [f64; 12] = [
    2.0, 3.0, 4.5, 6.5, 10.0, 12.0, 14.0, 11.0, 6.0, 4.0, 5.0, 2.0,
];

impl AlphaSpectrum {
    /// Builds the package-emission spectrum normalized so the integral over
    /// the full energy range equals `total_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is not strictly positive.
    pub fn package_emission(total_rate: Flux) -> Self {
        assert!(
            total_rate.per_m2_second() > 0.0,
            "total emission rate must be positive"
        );
        let raw_integral = trapezoid(&SHAPE_MEV, &SHAPE_REL);
        let scale = total_rate.per_m2_second() / raw_integral;
        let ys: Vec<f64> = SHAPE_REL.iter().map(|&y| y * scale).collect();
        Self {
            density: LinearTable::from_static(SHAPE_MEV.to_vec(), ys),
            lo_mev: SHAPE_MEV[0],
            hi_mev: SHAPE_MEV[SHAPE_MEV.len() - 1],
        }
    }

    /// The paper's assumption: 0.001 α/(h·cm²) total emission.
    pub fn paper_default() -> Self {
        Self::package_emission(Flux::from_per_cm2_hour(0.001))
    }
}

impl Default for AlphaSpectrum {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Spectrum for AlphaSpectrum {
    fn particle(&self) -> Particle {
        Particle::Alpha
    }

    fn differential(&self, energy: Energy) -> f64 {
        let e = energy.mev();
        if e < self.lo_mev * (1.0 - 1.0e-9) || e > self.hi_mev * (1.0 + 1.0e-9) {
            0.0
        } else {
            self.density.eval(e)
        }
    }

    fn domain(&self) -> (Energy, Energy) {
        (Energy::from_mev(self.lo_mev), Energy::from_mev(self.hi_mev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_to_requested_rate() {
        let rate = Flux::from_per_cm2_hour(0.001);
        let a = AlphaSpectrum::package_emission(rate);
        let total = a.total_flux();
        assert!(
            (total.per_cm2_hour() - 0.001).abs() / 0.001 < 0.01,
            "total {}",
            total.per_cm2_hour()
        );
    }

    #[test]
    fn confined_below_10_mev() {
        let a = AlphaSpectrum::paper_default();
        assert_eq!(a.differential(Energy::from_mev(11.0)), 0.0);
        assert_eq!(a.differential(Energy::from_mev(0.05)), 0.0);
        let (lo, hi) = a.domain();
        assert!(hi.mev() <= 10.0 + 1e-9);
        assert!(lo.mev() > 0.0);
    }

    #[test]
    fn peaks_in_the_4_to_6_mev_region() {
        // Fig. 2(b): maximum intensity sits in the 4–6 MeV band.
        let a = AlphaSpectrum::paper_default();
        let peak_band = a.differential(Energy::from_mev(5.5));
        for e in [0.5, 1.5, 7.5, 9.5] {
            assert!(
                peak_band > a.differential(Energy::from_mev(e)),
                "5.5 MeV should dominate {e} MeV"
            );
        }
    }

    #[test]
    fn scaling_with_rate_is_linear() {
        let a1 = AlphaSpectrum::package_emission(Flux::from_per_cm2_hour(0.001));
        let a2 = AlphaSpectrum::package_emission(Flux::from_per_cm2_hour(0.002));
        let e = Energy::from_mev(5.0);
        let r = a2.differential(e) / a1.differential(e);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_rate() {
        let _ = AlphaSpectrum::package_emission(Flux::from_per_m2_second(0.0));
    }

    #[test]
    fn default_matches_paper_default() {
        let d = AlphaSpectrum::default();
        let p = AlphaSpectrum::paper_default();
        let e = Energy::from_mev(3.0);
        assert_eq!(d.differential(e), p.differential(e));
    }
}
