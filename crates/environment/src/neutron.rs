//! Sea-level atmospheric neutron spectrum.
//!
//! **Extension beyond the paper**: the paper's conclusion defers
//! neutron-induced (indirect-ionization) soft errors to future work. This
//! module provides the missing environment piece: the sea-level neutron
//! differential flux as a JESD89A-class log–log shape (evaporation bump at
//! a few MeV, roughly 1/E cascade continuum to 1 GeV), normalized so the
//! integral flux above 10 MeV is ≈ 3.6·10⁻³ n/(cm²·s) — the standard
//! ≈ 13 n/(cm²·h) New-York-City reference value.

use crate::Spectrum;
use finrad_numerics::interp::LogLogTable;
use finrad_units::{Energy, Particle};

/// Sea-level neutron differential flux (1–1000 MeV band).
///
/// # Examples
///
/// ```
/// use finrad_environment::{NeutronSpectrum, Spectrum};
/// use finrad_units::Energy;
///
/// let n = NeutronSpectrum::sea_level();
/// // The canonical check: ~13 n/(cm²·h) above 10 MeV.
/// let above_10 = n.integral_flux(Energy::from_mev(10.0), Energy::from_mev(1000.0));
/// assert!((above_10.per_cm2_hour() - 13.0).abs() < 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NeutronSpectrum {
    /// Overall scale (1.0 = NYC sea level; ~10–300× at flight altitudes).
    scale: f64,
    /// Shape table, n/(cm²·s·MeV) vs MeV.
    shape: LogLogTable,
    lo_mev: f64,
    hi_mev: f64,
}

/// Anchor points of the JESD89A-class shape (MeV → n/(cm²·s·MeV)).
const SHAPE_MEV: [f64; 8] = [1.0, 2.0, 5.0, 10.0, 30.0, 100.0, 300.0, 1.0e3];
const SHAPE_FLUX: [f64; 8] = [
    1.2e-3, 7.0e-4, 2.4e-4, 1.0e-4, 3.2e-5, 7.0e-6, 1.5e-6, 2.0e-7,
];

impl NeutronSpectrum {
    /// The New-York-City sea-level reference spectrum.
    pub fn sea_level() -> Self {
        Self {
            scale: 1.0,
            shape: LogLogTable::from_static(SHAPE_MEV.to_vec(), SHAPE_FLUX.to_vec()),
            lo_mev: SHAPE_MEV[0],
            hi_mev: SHAPE_MEV[SHAPE_MEV.len() - 1],
        }
    }

    /// A spectrum scaled by `factor` (altitude/location scaling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Self {
            scale: self.scale * factor,
            ..self.clone()
        }
    }
}

impl Default for NeutronSpectrum {
    fn default() -> Self {
        Self::sea_level()
    }
}

impl Spectrum for NeutronSpectrum {
    fn particle(&self) -> Particle {
        // Neutrons act through secondaries; the spectrum is keyed to the
        // proton species only for plumbing purposes (same mass), and the
        // neutron SER engine never consults this.
        Particle::Proton
    }

    fn differential(&self, energy: Energy) -> f64 {
        let e = energy.mev();
        if e < self.lo_mev * (1.0 - 1.0e-9) || e > self.hi_mev * (1.0 + 1.0e-9) {
            return 0.0;
        }
        // cm^-2 -> m^-2.
        self.scale * self.shape.eval(e.max(self.lo_mev)) * 1.0e4
    }

    fn domain(&self) -> (Energy, Energy) {
        (Energy::from_mev(self.lo_mev), Energy::from_mev(self.hi_mev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_integral_flux() {
        let n = NeutronSpectrum::sea_level();
        let above_10 = n
            .integral_flux(Energy::from_mev(10.0), Energy::from_mev(1000.0))
            .per_cm2_hour();
        assert!(
            (9.0..17.0).contains(&above_10),
            "flux above 10 MeV: {above_10} n/cm2/h (expect ~13)"
        );
    }

    #[test]
    fn two_lobe_shape() {
        // The evaporation lobe dominates at a few MeV, the cascade lobe
        // keeps the spectrum alive at 100 MeV.
        let n = NeutronSpectrum::sea_level();
        let at_2 = n.differential(Energy::from_mev(2.0));
        let at_100 = n.differential(Energy::from_mev(100.0));
        let at_800 = n.differential(Energy::from_mev(800.0));
        assert!(at_2 > at_100);
        assert!(at_100 > at_800);
        assert!(at_800 > 0.0);
    }

    #[test]
    fn domain_clipping() {
        let n = NeutronSpectrum::sea_level();
        assert_eq!(n.differential(Energy::from_mev(0.5)), 0.0);
        assert_eq!(n.differential(Energy::from_mev(2000.0)), 0.0);
    }

    #[test]
    fn altitude_scaling() {
        let sea = NeutronSpectrum::sea_level();
        let avionics = sea.scaled(300.0);
        let e = Energy::from_mev(50.0);
        assert!((avionics.differential(e) / sea.differential(e) - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_scale() {
        let _ = NeutronSpectrum::sea_level().scaled(-1.0);
    }
}
