//! Device-level kernels: the Geant4-substitute Monte Carlo (Fig. 4's
//! engine) and its pieces.

use finrad_bench::harness::{BatchSize, Harness};
use finrad_numerics::rng::Xoshiro256pp;
use finrad_transport::fin::FinTraversal;
use finrad_transport::lut::EhpLut;
use finrad_transport::stopping::StoppingModel;
use finrad_transport::straggling::{self, StragglingModel};
use finrad_units::{Energy, Length, Particle};
use std::hint::black_box;

fn bench_stopping_power(c: &mut Harness) {
    let model = StoppingModel::silicon();
    c.bench_function("stopping_power_eval", |b| {
        let mut e = 0.1f64;
        b.iter(|| {
            e = if e > 90.0 { 0.1 } else { e * 1.01 };
            black_box(model.stopping(Particle::Alpha, Energy::from_mev(e)))
        })
    });
}

fn bench_fin_traversal(c: &mut Harness) {
    // One Fig. 4 Monte-Carlo sample: random chord + straggled deposit +
    // pair sampling. The paper runs 10^7 of these per energy point.
    let sim = FinTraversal::paper_default();
    c.bench_function("fig4_fin_traversal", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| black_box(sim.simulate(Particle::Alpha, Energy::from_mev(2.0), &mut rng)))
    });
}

fn bench_lut_build_and_lookup(c: &mut Harness) {
    let sim = FinTraversal::paper_default();
    c.bench_function("fig4_lut_build_6pts_x_500", |b| {
        b.iter_batched(
            || Xoshiro256pp::seed_from_u64(2),
            |mut rng| {
                black_box(EhpLut::build(
                    &sim,
                    Particle::Proton,
                    Energy::from_mev(0.1),
                    Energy::from_mev(100.0),
                    6,
                    500,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });

    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let lut = EhpLut::build(
        &sim,
        Particle::Alpha,
        Energy::from_mev(0.1),
        Energy::from_mev(100.0),
        12,
        2_000,
        &mut rng,
    );
    c.bench_function("lut_lookup", |b| {
        let mut e = 0.2f64;
        b.iter(|| {
            e = if e > 90.0 { 0.2 } else { e * 1.1 };
            black_box(lut.mean_pairs(Energy::from_mev(e)))
        })
    });
}

fn bench_straggling(c: &mut Harness) {
    let model = StoppingModel::silicon();
    let e = Energy::from_mev(1.0);
    let chord = Length::from_nm(25.0);
    c.bench_function("landau_sample", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        b.iter(|| {
            black_box(straggling::sample_energy_loss(
                &model,
                StragglingModel::Landau,
                Particle::Proton,
                e,
                chord,
                &mut rng,
            ))
        })
    });
    let params = straggling::landau_params(&model, Particle::Proton, e, chord);
    c.bench_function("deposit_exceedance_analytic", |b| {
        let mut t = 1.0f64;
        b.iter(|| {
            t = if t > 5.0 { 1.0 } else { t + 0.01 };
            black_box(straggling::deposit_exceedance(&params, params.mean * t, e))
        })
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_stopping_power(&mut h);
    bench_fin_traversal(&mut h);
    bench_lut_build_and_lookup(&mut h);
    bench_straggling(&mut h);
}
