//! Environment-level kernels: flux-spectrum evaluation, discretization
//! (the paper's Eq. 8 binning) and FIT integration.

use finrad_bench::harness::Harness;
use finrad_core::fit::{fit_rate, PofBin};
use finrad_environment::{AlphaSpectrum, ProtonSpectrum, Spectrum, SpectrumBin};
use finrad_units::{Area, Energy, Flux};
use std::hint::black_box;

fn bench_spectrum_eval(c: &mut Harness) {
    let proton = ProtonSpectrum::sea_level();
    c.bench_function("proton_spectrum_eval", |b| {
        let mut e = 0.1f64;
        b.iter(|| {
            e = if e > 9.0e6 { 0.1 } else { e * 1.3 };
            black_box(proton.differential(Energy::from_mev(e)))
        })
    });
    let alpha = AlphaSpectrum::paper_default();
    c.bench_function("alpha_spectrum_eval", |b| {
        let mut e = 0.1f64;
        b.iter(|| {
            e = if e > 9.5 { 0.1 } else { e + 0.05 };
            black_box(alpha.differential(Energy::from_mev(e)))
        })
    });
}

fn bench_integral_flux(c: &mut Harness) {
    let proton = ProtonSpectrum::sea_level();
    c.bench_function("integral_flux_256_panels", |b| {
        b.iter(|| black_box(proton.integral_flux(Energy::from_mev(0.1), Energy::from_mev(100.0))))
    });
}

fn bench_discretize(c: &mut Harness) {
    let alpha = AlphaSpectrum::paper_default();
    c.bench_function("discretize_20_bins", |b| {
        b.iter(|| black_box(alpha.discretize(20)))
    });
}

fn bench_fit_integration(c: &mut Harness) {
    let bins: Vec<PofBin> = (0..20)
        .map(|i| {
            let e = 0.2 * (i + 1) as f64;
            PofBin {
                spectrum: SpectrumBin {
                    energy: Energy::from_mev(e),
                    lo: Energy::from_mev(e * 0.9),
                    hi: Energy::from_mev(e * 1.1),
                    integral_flux: Flux::from_per_m2_second(1.0e-4 / e),
                },
                pof_total: 1.0e-3 / e,
                pof_seu: 0.9e-3 / e,
                pof_mbu: 0.1e-3 / e,
            }
        })
        .collect();
    let area = Area::from_square_um(2.2);
    c.bench_function("fit_rate_eq8_20bins", |b| {
        b.iter(|| black_box(fit_rate(black_box(&bins), area)))
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_spectrum_eval(&mut h);
    bench_integral_flux(&mut h);
    bench_discretize(&mut h);
    bench_fit_integration(&mut h);
}
