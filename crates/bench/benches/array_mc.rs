//! Array-level kernels: the 3-D strike Monte Carlo whose 10⁷-iteration
//! runtime the paper quotes as ≈ 2 hours for a 9×9 array (Section 6).
//! These benches measure our per-iteration cost so the same throughput
//! claim can be checked on any machine.

use finrad_bench::harness::Harness;
use finrad_core::array::{DataPattern, MemoryArray};
use finrad_core::strike::{
    combine_cell_pofs, DepositMode, DirectionLaw, FlipModel, StrikeSimulator,
};
use finrad_finfet::Technology;
use finrad_geometry::trace::trace_boxes;
use finrad_geometry::{Ray, Vec3};
use finrad_numerics::rng::Xoshiro256pp;
use finrad_sram::{CellCharacterizer, CharacterizeOptions, PofTable, Variation};
use finrad_transport::fin::FinTraversal;
use finrad_units::{Energy, Particle, Voltage};
use std::hint::black_box;

fn nominal_table() -> PofTable {
    CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.1,
            ..CharacterizeOptions::default()
        },
    )
    .build_table(Voltage::from_volts(0.8), Variation::Nominal, 1)
    .expect("characterization")
}

fn bench_ray_trace(c: &mut Harness) {
    // Tracing one ray against all 486 fin boxes of the paper's 9x9 array.
    let array = MemoryArray::build(
        &Technology::soi_finfet_14nm(),
        9,
        9,
        DataPattern::Checkerboard,
    );
    let boxes = array.fin_boxes();
    let bounds = array.bounds();
    let center = bounds.center();
    let ray = Ray::new(
        Vec3::new(center.x, center.y, bounds.max_corner().z + 1e-7),
        Vec3::new(0.3, 0.2, -1.0),
    );
    c.bench_function("trace_9x9_array_486_boxes", |b| {
        b.iter(|| black_box(trace_boxes(&ray, &boxes)))
    });
}

fn bench_strike_iteration(c: &mut Harness) {
    // One full Section 5.1 iteration (the paper's 10^7-count kernel).
    let array = MemoryArray::build(
        &Technology::soi_finfet_14nm(),
        9,
        9,
        DataPattern::Checkerboard,
    );
    let table = nominal_table();
    for (name, model) in [
        ("sampled", FlipModel::Sampled),
        ("expected", FlipModel::Expected),
    ] {
        let sim = StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            model,
            None,
        );
        c.bench_function(&format!("fig8_strike_iteration/{name}"), |b| {
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            b.iter(|| black_box(sim.simulate_one(Particle::Alpha, Energy::from_mev(2.0), &mut rng)))
        });
    }
}

fn bench_eqs_4_to_6(c: &mut Harness) {
    let pofs = [0.31, 0.02, 0.77, 0.001, 0.5];
    c.bench_function("combine_cell_pofs_eqs4to6", |b| {
        b.iter(|| black_box(combine_cell_pofs(black_box(&pofs))))
    });
}

fn bench_array_build(c: &mut Harness) {
    let tech = Technology::soi_finfet_14nm();
    c.bench_function("build_9x9_array", |b| {
        b.iter(|| black_box(MemoryArray::build(&tech, 9, 9, DataPattern::Checkerboard)))
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_ray_trace(&mut h);
    bench_strike_iteration(&mut h);
    bench_eqs_4_to_6(&mut h);
    bench_array_build(&mut h);
}
