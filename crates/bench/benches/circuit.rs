//! Circuit-level kernels: the SPICE-substitute transient engine that backs
//! the POF characterization (Section 4 of the paper).

use finrad_bench::harness::Harness;
use finrad_finfet::{FinFet, Polarity, SmallSignalBatch, Technology};
use finrad_spice::analysis::{self, NewtonOptions, Phase, TimeStepPlan};
use finrad_sram::scenario::StrikeEvent;
use finrad_sram::{
    CellCharacterizer, CellState, CharacterizeOptions, SramCell, StrikeCombo, StrikeTarget,
};
use finrad_units::Voltage;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_device_eval(c: &mut Harness) {
    let tech = Technology::soi_finfet_14nm();
    let nfet = FinFet::new(&tech, Polarity::Nmos, 1);
    c.bench_function("finfet_model_eval", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = if v > 0.8 { 0.0 } else { v + 0.001 };
            black_box(nfet.evaluate(v, 0.8 - v, 0.0))
        })
    });
}

fn bench_device_eval_batch(c: &mut Harness) {
    // SoA kernel behind the variation-MC warm seeding: one bias point,
    // 32 ΔVth lanes per call. Compare ns/iter ÷ 32 against the scalar
    // `finfet_model_eval` to read off the per-lane amortization.
    let tech = Technology::soi_finfet_14nm();
    let nfet = FinFet::new(&tech, Polarity::Nmos, 1);
    let deltas: Vec<f64> = (0..32).map(|k| (k as f64 - 16.0) * 1.0e-3).collect();
    let mut batch = SmallSignalBatch::with_capacity(deltas.len());
    c.bench_function("finfet_model_eval_batch32", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = if v > 0.8 { 0.0 } else { v + 0.001 };
            nfet.evaluate_batch(v, 0.8 - v, 0.0, &deltas, &mut batch);
            black_box(batch.lane(31))
        })
    });
}

fn bench_dc_operating_point(c: &mut Harness) {
    let cell = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8));
    let opts = NewtonOptions::default();
    let guess = cell.initial_conditions(CellState::One);
    c.bench_function("sram_dc_operating_point", |b| {
        b.iter(|| {
            black_box(
                analysis::dc_operating_point_from(cell.circuit(), &opts, &guess).expect("dc op"),
            )
        })
    });
}

fn bench_hold_transient(c: &mut Harness) {
    let cell = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8));
    let plan = TimeStepPlan::new(vec![Phase {
        duration: 5.0e-12,
        dt: 5.0e-14,
    }]);
    let ic = cell.initial_conditions(CellState::One);
    let opts = NewtonOptions::default();
    c.bench_function("sram_hold_transient_100steps", |b| {
        b.iter(|| {
            black_box(
                analysis::transient(cell.circuit(), &plan, &ic, &[cell.q()], &opts)
                    .expect("transient"),
            )
        })
    });
}

fn bench_settle_adaptive(c: &mut Harness) {
    // The post-strike settle integration alone, under the LTE step
    // controller: a short fixed-grid lead-in followed by a 5 ps adaptive
    // settle phase. Isolates the controller the strike/qcrit kernels lean
    // on from the bisection logic wrapped around them.
    let cell = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8));
    let plan = TimeStepPlan::new(vec![
        Phase {
            duration: 3.2e-14,
            dt: 2.0e-15,
        },
        Phase {
            duration: 5.0e-12,
            dt: 1.25e-14,
        },
    ])
    .with_adaptive_phase(1);
    let ic = cell.initial_conditions(CellState::One);
    let opts = NewtonOptions::default();
    c.bench_function("sram_settle_adaptive", |b| {
        b.iter(|| {
            black_box(
                analysis::transient(cell.circuit(), &plan, &ic, &[cell.q()], &opts)
                    .expect("transient"),
            )
        })
    });
}

fn bench_strike_transient(c: &mut Harness) {
    // One POF-characterization sample: inject, integrate, decode — the
    // kernel executed ~20k times per (Vdd, combo) table entry.
    let tech = Technology::soi_finfet_14nm();
    let opts = NewtonOptions::default();
    c.bench_function("sram_strike_transient", |b| {
        b.iter(|| {
            let mut cell = SramCell::new(&tech, Voltage::from_volts(0.8));
            let ev = StrikeEvent::rectangular(vec![(StrikeTarget::I1, 1.2e-16)], 2.0e-15, 1.6e-14);
            ev.inject(&mut cell, CellState::One);
            let plan = TimeStepPlan::for_pulse(2.0e-15, 1.6e-14, 5.0e-12);
            let ic = cell.initial_conditions(CellState::One);
            let res =
                analysis::transient(cell.circuit(), &plan, &ic, &[cell.q(), cell.qb()], &opts)
                    .expect("transient");
            black_box(res.final_voltage(cell.q()))
        })
    });
}

fn bench_critical_charge(c: &mut Harness) {
    let ch = CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.05,
            ..CharacterizeOptions::default()
        },
    );
    let none = HashMap::new();
    c.bench_function("characterization/critical_charge_bisection", |b| {
        b.iter(|| {
            black_box(
                ch.critical_charge(
                    Voltage::from_volts(0.8),
                    StrikeCombo::single(StrikeTarget::I1),
                    &none,
                )
                .expect("qcrit"),
            )
        })
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_device_eval(&mut h);
    bench_device_eval_batch(&mut h);
    bench_dc_operating_point(&mut h);
    bench_hold_transient(&mut h);
    bench_settle_adaptive(&mut h);
    bench_strike_transient(&mut h);
    bench_critical_charge(&mut h);
}
