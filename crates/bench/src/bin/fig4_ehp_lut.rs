//! Regenerates the paper's Fig. 4: normalized number of electrons
//! generated in a single fin by alpha-particle and proton interaction,
//! vs particle energy (0.1–100 MeV).
//!
//! This is the device-level (Geant4-substitute) Monte Carlo: 3-D fin
//! geometry, random traversal directions/positions, stopping-power energy
//! deposition with Landau straggling, 3.6 eV per pair.
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig4_ehp_lut`
//! (`FINRAD_FULL=1` for paper-scale sampling)

use finrad_bench::Scale;
use finrad_numerics::rng::Xoshiro256pp;
use finrad_transport::fin::FinTraversal;
use finrad_transport::lut::EhpLut;
use finrad_units::{Energy, Particle};

fn main() {
    let scale = Scale::from_env();
    let sim = FinTraversal::paper_default();
    let mut rng = Xoshiro256pp::seed_from_u64(4);

    let mut luts = Vec::new();
    for particle in Particle::ALL {
        let lut = EhpLut::build(
            &sim,
            particle,
            Energy::from_mev(0.1),
            Energy::from_mev(100.0),
            17,
            scale.lut_samples(),
            &mut rng,
        );
        luts.push(lut);
    }

    // Normalize both curves by the single global peak, like the figure.
    let peak = luts
        .iter()
        .map(EhpLut::peak_mean_pairs)
        .fold(0.0f64, f64::max);

    println!("# Fig. 4: normalized e-h pairs per fin traversal");
    println!(
        "# {:>12}  {:>14}  {:>14}  {:>10}",
        "E (MeV)", "mean pairs", "normalized", "particle"
    );
    for lut in &luts {
        for row in lut.rows() {
            println!(
                "{:>14.6e}  {:>14.4}  {:>14.6e}  {:>10}",
                row.energy_mev,
                row.mean_pairs,
                row.mean_pairs / peak,
                lut.particle()
            );
        }
        println!();
    }

    // The figure's qualitative claims, checked numerically.
    for e_mev in [1.0, 10.0] {
        let e = finrad_units::Energy::from_mev(e_mev);
        let ratio = luts[1].mean_pairs(e) / luts[0].mean_pairs(e).max(1e-9);
        println!("# check: alpha/proton pair ratio at {e_mev} MeV = {ratio:.2} (paper: order-of-magnitude gap)");
    }
}
