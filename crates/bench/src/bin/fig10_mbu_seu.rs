//! Regenerates the paper's Fig. 10: MBU/SEU ratio (%) vs supply voltage
//! for proton and alpha radiation.
//!
//! Expected shape (paper): alpha ≈ 6–7 % roughly flat in Vdd; proton < 2 %
//! and falling with Vdd.
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig10_mbu_seu`
//! (`FINRAD_FULL=1` for paper-scale statistics)

use finrad_bench::{figure_config, Scale, VDD_SWEEP};
use finrad_core::pipeline::SerPipeline;
use finrad_core::strike::{DepositMode, FlipModel};
use finrad_units::{Particle, Voltage};

fn main() {
    let scale = Scale::from_env();

    // Physics mode: chord-exact deposits with analytic straggling.
    let chord_exact = SerPipeline::new(figure_config(scale));
    // Paper-faithful LUT mode: every struck fin receives the device-level
    // LUT's mean pair count for the particle energy, independent of the
    // actual chord (the paper's Section 5.1 step 2). Clipped fins then
    // carry full charge, which raises the multi-cell upset rates.
    let mut lut_cfg = figure_config(scale);
    lut_cfg.deposit = DepositMode::LutMean;
    lut_cfg.flip_model = FlipModel::Sampled;
    let lut_mode = SerPipeline::new(lut_cfg);

    for (label, pipeline) in [
        ("chord-exact deposits", &chord_exact),
        ("paper LUT deposits", &lut_mode),
    ] {
        println!("# Fig. 10: MBU/SEU ratio vs Vdd ({label})");
        println!(
            "# {:>6}  {:>16}  {:>16}",
            "Vdd", "proton MBU/SEU %", "alpha MBU/SEU %"
        );
        for &vdd_v in &VDD_SWEEP {
            let vdd = Voltage::from_volts(vdd_v);
            let table = pipeline
                .build_pof_table(vdd)
                .expect("characterization failed");
            let alpha = pipeline.run_with_table(Particle::Alpha, vdd, &table);
            let proton = pipeline.run_with_table(Particle::Proton, vdd, &table);
            println!(
                "{:>8.2}  {:>16.4}  {:>16.4}",
                vdd_v,
                proton.mbu_to_seu_percent(),
                alpha.mbu_to_seu_percent()
            );
        }
        println!();
    }
}
