//! Regenerates the paper's Fig. 8: normalized POF of the 9×9 SRAM array
//! vs particle energy, for {proton, alpha} × {Vdd = 0.7 V, 0.8 V}, with
//! every particle forced to hit the array footprint.
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig8_pof_vs_energy`
//! (`FINRAD_FULL=1` for paper-scale statistics)

use finrad_bench::{figure_config, Scale};
use finrad_core::pipeline::SerPipeline;
use finrad_numerics::interp::log_space;
use finrad_units::{Energy, Particle, Voltage};

fn main() {
    let scale = Scale::from_env();
    let pipeline = SerPipeline::new(figure_config(scale));
    let energies: Vec<Energy> = log_space(0.1, 100.0, 13)
        .into_iter()
        .map(Energy::from_mev)
        .collect();

    let mut series = Vec::new();
    for vdd_v in [0.7, 0.8] {
        let vdd = Voltage::from_volts(vdd_v);
        for particle in Particle::ALL {
            let table = pipeline
                .build_pof_table(vdd)
                .expect("characterization failed");
            let sweep = pipeline.pof_vs_energy_with_table(particle, &table, &energies);
            series.push((particle, vdd_v, sweep));
        }
    }

    let peak = series
        .iter()
        .flat_map(|(_, _, s)| s.iter().map(|(_, est)| est.total.mean()))
        .fold(0.0f64, f64::max);

    println!("# Fig. 8: normalized array POF vs energy (forced hits)");
    println!(
        "# {:>10}  {:>14}  {:>14}  {:>8}  {:>6}",
        "E (MeV)", "POF", "normalized", "particle", "Vdd"
    );
    for (particle, vdd, sweep) in &series {
        for (e, est) in sweep {
            println!(
                "{:>12.4e}  {:>14.6e}  {:>14.6e}  {:>8}  {:>6}",
                e.mev(),
                est.total.mean(),
                est.total.mean() / peak.max(1e-300),
                particle,
                vdd
            );
        }
        println!();
    }
}
