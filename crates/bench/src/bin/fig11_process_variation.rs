//! Regenerates the paper's Fig. 11: alpha-particle SER vs Vdd with and
//! without process variation.
//!
//! Expected shape (paper): neglecting Vth variation underestimates SER by
//! up to ~45 %.
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig11_process_variation`
//! (`FINRAD_FULL=1` for paper-scale statistics)

use finrad_bench::{figure_config, Scale, VDD_SWEEP};
use finrad_core::pipeline::{PipelineConfig, SerPipeline};
use finrad_core::strike::{DepositMode, FlipModel};
use finrad_sram::Variation;
use finrad_units::{Particle, Voltage};

fn run_mode(label: &str, base: PipelineConfig) {
    let with_pv = SerPipeline::new(base.clone());
    let mut nominal_cfg = base;
    nominal_cfg.variation = Variation::Nominal;
    let without_pv = SerPipeline::new(nominal_cfg);

    println!("# Fig. 11: alpha SER vs Vdd, with vs without process variation ({label})");
    println!(
        "# {:>6}  {:>14}  {:>14}  {:>16}",
        "Vdd", "FIT (with PV)", "FIT (no PV)", "underestimate %"
    );
    for &vdd_v in &VDD_SWEEP {
        let vdd = Voltage::from_volts(vdd_v);
        let pv = with_pv
            .run(Particle::Alpha, vdd)
            .expect("characterization failed");
        let nom = without_pv
            .run(Particle::Alpha, vdd)
            .expect("characterization failed");
        let under = if pv.fit_total > 0.0 {
            100.0 * (pv.fit_total - nom.fit_total) / pv.fit_total
        } else {
            0.0
        };
        println!(
            "{:>8.2}  {:>14.6e}  {:>14.6e}  {:>16.2}",
            vdd_v, pv.fit_total, nom.fit_total, under
        );
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();

    // Paper-faithful LUT deposits: each struck fin receives the energy's
    // mean pair count, so Vth variation is the only smoothing of the flip
    // threshold — the regime where neglecting it bites hardest (this is
    // the paper's own methodology).
    let mut lut_cfg = figure_config(scale);
    lut_cfg.deposit = DepositMode::LutMean;
    lut_cfg.flip_model = FlipModel::Sampled;
    run_mode("paper LUT deposits", lut_cfg);

    // Chord-exact physics mode: the deposit distribution (chords +
    // straggling) already spreads the threshold, so the variation effect
    // is diluted.
    run_mode("chord-exact deposits", figure_config(scale));

    println!("# paper: neglecting PV underestimates SER by up to ~45%");
}
