//! Regenerates the paper's Fig. 2: ground-level particle spectra.
//!
//! * Fig. 2(a): sea-level proton differential intensity, 0.1–10⁷ MeV.
//! * Fig. 2(b): terrestrial alpha emission spectrum below 10 MeV,
//!   normalized to 0.001 α/(h·cm²).
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig2_spectra`

use finrad_environment::{AlphaSpectrum, ProtonSpectrum, Spectrum};
use finrad_numerics::interp::{lin_space, log_space};
use finrad_units::Energy;

fn main() {
    let proton = ProtonSpectrum::sea_level();
    println!("# Fig. 2(a): sea-level proton spectrum");
    println!("# {:>14}  {:>20}", "E (MeV)", "I (1/m^2/s/sr/MeV)");
    for e in log_space(0.1, 1.0e7, 33) {
        println!(
            "{e:>16.6e}  {:>20.6e}",
            proton.intensity_per_sr(Energy::from_mev(e))
        );
    }
    println!();

    let alpha = AlphaSpectrum::paper_default();
    println!("# Fig. 2(b): alpha emission spectrum (total 0.001 a/h/cm^2)");
    println!("# {:>14}  {:>20}", "E (MeV)", "I (1/m^2/s/MeV)");
    for e in lin_space(0.1, 10.0, 34) {
        println!(
            "{e:>16.6e}  {:>20.6e}",
            alpha.differential(Energy::from_mev(e))
        );
    }
    println!();
    println!(
        "# check: alpha total = {:.6e} a/(h cm^2) (paper assumes 1.0e-3)",
        alpha.total_flux().per_cm2_hour()
    );
    println!(
        "# check: proton integral flux (0.1-10 MeV band) = {:.6e} 1/(m^2 s)",
        proton
            .integral_flux(Energy::from_mev(0.1), Energy::from_mev(10.0))
            .per_m2_second()
    );
}
