//! Neutron-induced SER of the 9×9 array — the paper's declared future
//! work, implemented as an extension (see `finrad-core::neutron`).
//!
//! Prints the per-energy POF of the indirect-ionization Monte Carlo and
//! the integrated FIT rate next to the direct-ionization (alpha/proton)
//! rates for context.
//!
//! Usage: `cargo run --release -p finrad-bench --bin neutron_ser`

use finrad_bench::{figure_config, Scale};
use finrad_core::array::{DataPattern, MemoryArray};
use finrad_core::neutron::{NeutronSimulator, NeutronVolume};
use finrad_core::pipeline::SerPipeline;
use finrad_environment::NeutronSpectrum;
use finrad_finfet::Technology;
use finrad_transport::neutron::NeutronInteraction;
use finrad_units::{Particle, Voltage};

fn main() {
    let scale = Scale::from_env();
    let pipeline = SerPipeline::new(figure_config(scale));
    let vdd = Voltage::from_volts(0.8);
    let table = pipeline
        .build_pof_table(vdd)
        .expect("characterization failed");

    let tech = Technology::soi_finfet_14nm();
    let array = MemoryArray::build(&tech, 9, 9, DataPattern::Checkerboard);
    let sim = NeutronSimulator::new(
        &array,
        NeutronInteraction::silicon(),
        &table,
        NeutronVolume::default(),
    );

    let (fit, bins) = sim.ser(
        &NeutronSpectrum::sea_level(),
        8,
        scale.strike_iterations(),
        31,
    );

    println!("# Neutron-induced SER (extension; indirect ionization)");
    println!(
        "# {:>10}  {:>14}  {:>16}",
        "E (MeV)", "POF/history", "IntFlux (1/m2 s)"
    );
    for b in &bins {
        println!(
            "{:>12.3e}  {:>14.6e}  {:>16.6e}",
            b.spectrum.energy.mev(),
            b.pof_total,
            b.spectrum.integral_flux.per_m2_second()
        );
    }
    println!();
    println!(
        "neutron SER at 0.8 V: {:.4e} FIT (MBU/SEU = {:.3}%)",
        fit.total,
        fit.mbu_to_seu_percent()
    );

    // Context: the direct-ionization rates from the main flow.
    for particle in Particle::ALL {
        let report = pipeline.run_with_table(particle, vdd, &table);
        println!("{particle:>8} SER at 0.8 V: {:.4e} FIT", report.fit_total);
    }
    println!();
    println!("# SOI strongly suppresses indirect ionization (tiny sensitive volume,");
    println!("# BOX-isolated substrate), so the neutron FIT sits well below alpha/proton.");
}
