//! Reproduces the paper's Section 4 pulse-shape study: POF (equivalently,
//! critical charge) is insensitive to the current-pulse width and nearly
//! insensitive to its shape (rectangular vs triangular) at equal charge —
//! the generated charge is what matters.
//!
//! Usage: `cargo run --release -p finrad-bench --bin pulse_shape_study`

use finrad_finfet::Technology;
use finrad_spice::PulseShape;
use finrad_sram::{CellCharacterizer, CharacterizeOptions, StrikeCombo, StrikeTarget};
use finrad_units::Voltage;
use std::collections::HashMap;

fn main() {
    let vdd = Voltage::from_volts(0.8);
    let combo = StrikeCombo::single(StrikeTarget::I1);
    let deltas = HashMap::new();

    println!("# Pulse-shape study: critical charge vs pulse width and shape");
    println!(
        "# {:>12}  {:>12}  {:>14}",
        "width (fs)", "shape", "Qcrit (fC)"
    );
    let base_width = 1.6e-14; // the Eq. 2 transit time at 0.8 V
    for factor in [0.1, 1.0, 10.0, 100.0] {
        for shape in [PulseShape::Rectangular, PulseShape::Triangular] {
            let ch = CellCharacterizer::new(
                Technology::soi_finfet_14nm(),
                CharacterizeOptions {
                    pulse_width: Some(base_width * factor),
                    shape,
                    bisect_rel_tol: 0.005,
                    ..CharacterizeOptions::default()
                },
            );
            let q = ch
                .critical_charge(vdd, combo, &deltas)
                .expect("characterization failed");
            println!(
                "{:>14.2}  {:>12}  {:>14.5}",
                base_width * factor * 1.0e15,
                match shape {
                    PulseShape::Rectangular => "rect",
                    PulseShape::Triangular => "tri",
                },
                q.femtocoulombs()
            );
        }
    }
    println!();
    println!("# paper: POF has no sensitivity to pulse width; shape effect is negligible");
}
