//! Runs the smoke-scale SER pipeline with the in-memory metrics recorder
//! installed and prints the resulting snapshot as one machine-readable
//! `METRICSJSON {...}` line (plus a human-readable table).
//!
//! `cargo xtask bench` scrapes the `METRICSJSON` line to embed pipeline
//! counters (Newton iterations, strike-MC throughput, …) into the
//! `BENCH_<n>.json` trajectory file; see `docs/observability.md`.

use finrad_core::pipeline::{PipelineConfig, SerPipeline};
use finrad_units::{Particle, Voltage};

fn main() {
    let recorder = match finrad_observe::install_in_memory() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let pipeline = SerPipeline::new(PipelineConfig::smoke_test());
    if let Err(e) = pipeline.run(Particle::Alpha, Voltage::from_volts(0.8)) {
        eprintln!("error: smoke pipeline failed: {e}");
        std::process::exit(1);
    }

    let snapshot = recorder.snapshot();
    println!("# pipeline metrics (smoke-scale alpha run at 0.8 V)");
    for (key, value) in &snapshot.counters {
        println!("{key:<40} {value:>16}");
    }
    for (key, h) in &snapshot.histograms {
        println!("{key:<40} {:>16.6e} (n={}, mean)", h.mean(), h.count);
    }
    println!("METRICSJSON {}", snapshot.to_json());
}
