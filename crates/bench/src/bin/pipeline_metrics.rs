//! Runs the smoke-scale SER pipeline with the in-memory metrics recorder
//! installed and prints the resulting snapshot as one machine-readable
//! `METRICSJSON {...}` line (plus a human-readable table).
//!
//! `cargo xtask bench` scrapes the `METRICSJSON` line to embed pipeline
//! counters (Newton iterations, strike-MC throughput, …) into the
//! `BENCH_<n>.json` trajectory file; see `docs/observability.md`.
//!
//! The run also drives the supervised campaign service with a duplicate
//! submission, so the snapshot carries the `core.service.*` supervision
//! counters — cache hit rate and queue/bin throughput in particular —
//! plus a small variation Monte Carlo so the SPICE hot-path counters
//! (`spice.newton.warm_starts`, `sram.characterize.dcop_cache_hits`)
//! land in every trajectory file; `ci.sh` gates on their presence.

use finrad_core::campaign::CampaignConfig;
use finrad_core::pipeline::{PipelineConfig, SerPipeline};
use finrad_core::service::{CampaignService, ServiceConfig};
use finrad_finfet::Technology;
use finrad_sram::{CellCharacterizer, StrikeCombo, StrikeTarget, Variation};
use finrad_units::{Particle, Voltage};

fn main() {
    let recorder = match finrad_observe::install_in_memory() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let pipeline = SerPipeline::new(PipelineConfig::smoke_test());
    if let Err(e) = pipeline.run(Particle::Alpha, Voltage::from_volts(0.8)) {
        eprintln!("error: smoke pipeline failed: {e}");
        std::process::exit(1);
    }

    // Service workload: the same campaign twice through the job queue.
    // The first submission computes; the identical resubmission must be a
    // cache hit, which the trajectory file tracks as a regression gate on
    // the config-fingerprint dedupe path.
    let mut campaign = PipelineConfig::smoke_test();
    campaign.iterations_per_energy = 1_000;
    let cfg = CampaignConfig::new(campaign, Particle::Alpha, Voltage::from_volts(0.8));
    let service = CampaignService::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let first = service.submit(cfg.clone());
    if let Err(e) = service.wait(first) {
        eprintln!("error: service campaign {first} failed: {e}");
        std::process::exit(1);
    }
    let second = service.submit(cfg);
    if let Err(e) = service.wait(second) {
        eprintln!("error: service campaign {second} failed: {e}");
        std::process::exit(1);
    }
    service.drain();

    // Variation Monte Carlo: the smoke pipeline is nominal-only, so this
    // small MC run is what exercises (and records) the warm-started DC
    // solves and the pre-strike operating-point cache.
    let smoke = PipelineConfig::smoke_test();
    let characterizer = CellCharacterizer::new(Technology::soi_finfet_14nm(), smoke.characterize);
    if let Err(e) = characterizer.characterize_combo(
        Voltage::from_volts(0.8),
        StrikeCombo::single(StrikeTarget::I1),
        Variation::MonteCarlo { samples: 8 },
        0xF1A7_5EED,
    ) {
        eprintln!("error: variation characterization failed: {e}");
        std::process::exit(1);
    }

    let snapshot = recorder.snapshot();
    println!("# pipeline metrics (smoke-scale alpha run at 0.8 V)");
    for (key, value) in &snapshot.counters {
        println!("{key:<40} {value:>16}");
    }
    for (key, h) in &snapshot.histograms {
        println!("{key:<40} {:>16.6e} (n={}, mean)", h.mean(), h.count);
    }
    println!("METRICSJSON {}", snapshot.to_json());
}
