//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Straggling on/off** — how much of the array POF comes from
//!    energy-loss fluctuations rather than mean deposits (for protons:
//!    nearly all of it).
//! 2. **Deposit mode** — chord-exact physics vs the paper's
//!    chord-independent LUT lookup.
//! 3. **Data pattern** — checkerboard vs solid patterns (geometry of the
//!    sensitive-transistor sets).
//! 4. **Arrival-direction law** — cosine-weighted vs isotropic downward
//!    flux (grazing tracks drive MBU).
//!
//! Usage: `cargo run --release -p finrad-bench --bin ablation_study`

use finrad_bench::{figure_config, Scale};
use finrad_core::array::{DataPattern, MemoryArray};
use finrad_core::pipeline::SerPipeline;
use finrad_core::strike::{DepositMode, DirectionLaw, FlipModel, StrikeSimulator};
use finrad_finfet::Technology;
use finrad_numerics::rng::Xoshiro256pp;
use finrad_sram::{CellCharacterizer, CharacterizeOptions, PofTable, Variation};
use finrad_transport::fin::{FinGeometry, FinTraversal};
use finrad_transport::lut::EhpLut;
use finrad_transport::stopping::StoppingModel;
use finrad_transport::straggling::StragglingModel;
use finrad_units::{Energy, Particle, Voltage};

fn table(scale: Scale) -> PofTable {
    CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions::default(),
    )
    .build_table(
        Voltage::from_volts(0.8),
        Variation::MonteCarlo {
            samples: scale.variation_samples(),
        },
        11,
    )
    .expect("characterization failed")
}

fn main() {
    let scale = Scale::from_env();
    let iters = scale.strike_iterations();
    let tech = Technology::soi_finfet_14nm();
    let pof = table(scale);
    let array = MemoryArray::build(&tech, 9, 9, DataPattern::Checkerboard);

    let traversal_with = |strag: StragglingModel| {
        FinTraversal::new(FinGeometry::paper_14nm(), StoppingModel::silicon(), strag)
    };

    println!("## Ablation 1: straggling on/off (array POF at 0.8 V, forced hits)");
    println!(
        "# {:>8}  {:>10}  {:>14}  {:>14}",
        "particle", "E (MeV)", "with straggle", "mean-only"
    );
    for (particle, e_mev) in [
        (Particle::Alpha, 1.0),
        (Particle::Alpha, 10.0),
        (Particle::Proton, 0.3),
        (Particle::Proton, 3.0),
    ] {
        let e = Energy::from_mev(e_mev);
        let with = StrikeSimulator::new(
            &array,
            traversal_with(StragglingModel::Auto),
            &pof,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        )
        .estimate(particle, e, iters, 21)
        .total
        .mean();
        // Mean-only: sample the deposit without fluctuations.
        let without = StrikeSimulator::new(
            &array,
            traversal_with(StragglingModel::None),
            &pof,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            FlipModel::Sampled,
            None,
        )
        .estimate(particle, e, iters, 22)
        .total
        .mean();
        println!("{particle:>10}  {e_mev:>10.1}  {with:>14.4e}  {without:>14.4e}");
    }
    println!();

    println!("## Ablation 2: chord-exact vs paper LUT deposits (alpha, 0.8 V)");
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let lut = EhpLut::build(
        &traversal_with(StragglingModel::Auto),
        Particle::Alpha,
        Energy::from_mev(0.1),
        Energy::from_mev(100.0),
        13,
        scale.lut_samples(),
        &mut rng,
    );
    println!(
        "# {:>10}  {:>14}  {:>14}",
        "E (MeV)", "chord-exact", "LUT-mean"
    );
    for e_mev in [0.5, 2.0, 10.0] {
        let e = Energy::from_mev(e_mev);
        let exact = StrikeSimulator::new(
            &array,
            traversal_with(StragglingModel::Auto),
            &pof,
            DirectionLaw::IsotropicDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        )
        .estimate(Particle::Alpha, e, iters, 24);
        let lut_mode = StrikeSimulator::new(
            &array,
            traversal_with(StragglingModel::Auto),
            &pof,
            DirectionLaw::IsotropicDown,
            DepositMode::LutMean,
            FlipModel::Sampled,
            Some(&lut),
        )
        .estimate(Particle::Alpha, e, iters, 25);
        println!(
            "{e_mev:>12.1}  {:>14.4e}  {:>14.4e}",
            exact.total.mean(),
            lut_mode.total.mean()
        );
    }
    println!();

    println!("## Ablation 3: data pattern (alpha POF / MBU fraction at 2 MeV, 0.8 V)");
    println!("# {:>14}  {:>14}  {:>12}", "pattern", "POF", "MBU/SEU %");
    for (name, pattern) in [
        ("checkerboard", DataPattern::Checkerboard),
        ("all-ones", DataPattern::AllOnes),
        ("all-zeros", DataPattern::AllZeros),
    ] {
        let arr = MemoryArray::build(&tech, 9, 9, pattern);
        let est = StrikeSimulator::new(
            &arr,
            traversal_with(StragglingModel::Auto),
            &pof,
            DirectionLaw::IsotropicDown,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        )
        .estimate(Particle::Alpha, Energy::from_mev(2.0), iters, 26);
        println!(
            "{name:>16}  {:>14.4e}  {:>12.3}",
            est.total.mean(),
            100.0 * est.mbu_to_seu()
        );
    }
    println!();

    println!("## Ablation 4: arrival-direction law (alpha at 2 MeV, 0.8 V)");
    println!("# {:>14}  {:>14}  {:>12}", "law", "POF", "MBU/SEU %");
    for (name, law) in [
        ("cosine-down", DirectionLaw::CosineDown),
        ("isotropic-down", DirectionLaw::IsotropicDown),
    ] {
        let est = StrikeSimulator::new(
            &array,
            traversal_with(StragglingModel::Auto),
            &pof,
            law,
            DepositMode::ChordExact,
            FlipModel::Expected,
            None,
        )
        .estimate(Particle::Alpha, Energy::from_mev(2.0), iters, 27);
        println!(
            "{name:>16}  {:>14.4e}  {:>12.3}",
            est.total.mean(),
            100.0 * est.mbu_to_seu()
        );
    }
    println!();

    println!("## Context: FIT at 0.8 V from the default pipeline");
    let pipeline = SerPipeline::new(figure_config(scale));
    for particle in Particle::ALL {
        let report = pipeline.run_with_table(particle, Voltage::from_volts(0.8), &pof);
        println!(
            "  {particle:>7}: {:.4e} FIT (MBU/SEU {:.3}%)",
            report.fit_total,
            report.mbu_to_seu_percent()
        );
    }
}
