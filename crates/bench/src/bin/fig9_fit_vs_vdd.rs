//! Regenerates the paper's Fig. 9: normalized FIT rate of the 9×9 array
//! vs supply voltage (0.7–1.1 V) for proton and alpha radiation.
//!
//! Expected shape (paper): SER rises as Vdd falls; the proton curve is
//! comparable to alpha at 0.7 V and falls off much faster with rising Vdd.
//!
//! Usage: `cargo run --release -p finrad-bench --bin fig9_fit_vs_vdd`
//! (`FINRAD_FULL=1` for paper-scale statistics)

use finrad_bench::{figure_config, Scale, VDD_SWEEP};
use finrad_core::pipeline::SerPipeline;
use finrad_units::{Particle, Voltage};

fn main() {
    let scale = Scale::from_env();
    let pipeline = SerPipeline::new(figure_config(scale));

    let mut rows = Vec::new();
    for &vdd_v in &VDD_SWEEP {
        let vdd = Voltage::from_volts(vdd_v);
        let table = pipeline
            .build_pof_table(vdd)
            .expect("characterization failed");
        let alpha = pipeline.run_with_table(Particle::Alpha, vdd, &table);
        let proton = pipeline.run_with_table(Particle::Proton, vdd, &table);
        rows.push((vdd_v, proton, alpha));
    }

    let peak = rows
        .iter()
        .flat_map(|(_, p, a)| [p.fit_total, a.fit_total])
        .fold(0.0f64, f64::max);

    println!("# Fig. 9: normalized FIT rate vs Vdd");
    println!(
        "# {:>6}  {:>14}  {:>14}  {:>14}  {:>14}",
        "Vdd", "proton FIT", "alpha FIT", "proton (norm)", "alpha (norm)"
    );
    for (vdd, proton, alpha) in &rows {
        println!(
            "{:>8.2}  {:>14.6e}  {:>14.6e}  {:>14.6e}  {:>14.6e}",
            vdd,
            proton.fit_total,
            alpha.fit_total,
            proton.fit_total / peak.max(1e-300),
            alpha.fit_total / peak.max(1e-300),
        );
    }
    println!();

    let (p07, a07) = (rows[0].1.fit_total, rows[0].2.fit_total);
    let (p11, a11) = (rows[4].1.fit_total, rows[4].2.fit_total);
    println!(
        "# check: proton/alpha SER ratio at 0.7 V = {:.3} (paper: comparable, O(0.1-1))",
        p07 / a07.max(1e-300)
    );
    println!("# check: proton SER fall 0.7->1.1 V = {:.3e}x; alpha fall = {:.3e}x (paper: proton falls much faster)",
        p07 / p11.max(1e-300), a07 / a11.max(1e-300));
}
