//! Shared plumbing for the figure-regeneration binaries and the
//! dependency-free micro-benchmark harness ([`harness`]).
//!
//! Every figure of the paper's evaluation section has a binary in
//! `src/bin/` that prints the corresponding series (normalized the same
//! way the paper normalizes). Two run scales are supported:
//!
//! * **quick** (default) — minutes-scale, statistically coarser; enough to
//!   verify every trend.
//! * **full** (`FINRAD_FULL=1`) — paper-scale statistics (1000-sample
//!   variation MC, 10⁵–10⁶ strike iterations per energy).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod harness;

use finrad_core::pipeline::PipelineConfig;
use finrad_sram::Variation;

/// Run scale selected through the `FINRAD_FULL` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale statistics.
    Quick,
    /// Paper-scale statistics.
    Full,
}

impl Scale {
    /// Reads the scale from the environment: `FINRAD_FULL=1` selects
    /// [`Scale::Full`]; unset, empty or `0` selects [`Scale::Quick`]. Any
    /// other value is malformed and is rejected loudly — a warning goes to
    /// stderr and the quick scale (the documented default) is used, rather
    /// than the old behaviour of treating arbitrary garbage as "full".
    pub fn from_env() -> Self {
        let raw = std::env::var("FINRAD_FULL").ok();
        let (scale, warning) = parse_scale(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        scale
    }

    /// Variation Monte-Carlo sample count.
    pub fn variation_samples(self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Full => 1000, // the paper's count
        }
    }

    /// Strike-MC iterations per energy bin.
    pub fn strike_iterations(self) -> u64 {
        match self {
            Scale::Quick => 30_000,
            Scale::Full => 400_000,
        }
    }

    /// Energy bins per spectrum.
    pub fn energy_bins(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 20,
        }
    }

    /// Device-level LUT traversals per energy point.
    pub fn lut_samples(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 200_000,
        }
    }
}

/// Parses a `FINRAD_FULL` value. Only `1` means full scale; unset, empty
/// and `0` mean quick. Anything else yields quick plus a warning for the
/// caller to print, so a typo like `FINRAD_FULL=yes` cannot silently start
/// an hours-long paper-scale run.
fn parse_scale(raw: Option<&str>) -> (Scale, Option<String>) {
    match raw.map(str::trim) {
        None | Some("") | Some("0") => (Scale::Quick, None),
        Some("1") => (Scale::Full, None),
        Some(other) => (
            Scale::Quick,
            Some(format!(
                "FINRAD_FULL={other:?} is not recognized (use \"1\" for full scale, \
                 \"0\" or unset for quick); using the quick scale"
            )),
        ),
    }
}

/// The pipeline configuration used by the figure binaries at `scale`.
pub fn figure_config(scale: Scale) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_baseline();
    cfg.variation = Variation::MonteCarlo {
        samples: scale.variation_samples(),
    };
    cfg.iterations_per_energy = scale.strike_iterations();
    cfg.energy_bins = scale.energy_bins();
    cfg
}

/// The supply-voltage sweep of Figs. 9–11.
pub const VDD_SWEEP: [f64; 5] = [0.7, 0.8, 0.9, 1.0, 1.1];

/// Prints a two-column normalized series with a title, matching how the
/// paper reports normalized results.
pub fn print_normalized_series(title: &str, x_label: &str, xs: &[f64], ys: &[f64]) {
    assert_eq!(xs.len(), ys.len());
    let peak = ys.iter().cloned().fold(0.0f64, f64::max);
    println!("# {title}");
    println!("# {x_label:>14}  {:>14}  {:>14}", "value", "normalized");
    for (x, y) in xs.iter().zip(ys) {
        let norm = if peak > 0.0 { y / peak } else { 0.0 };
        println!("{x:>16.6e}  {y:>14.6e}  {norm:>14.6e}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_documented_values() {
        assert_eq!(parse_scale(None), (Scale::Quick, None));
        assert_eq!(parse_scale(Some("")), (Scale::Quick, None));
        assert_eq!(parse_scale(Some("0")), (Scale::Quick, None));
        assert_eq!(parse_scale(Some("1")), (Scale::Full, None));
        assert_eq!(parse_scale(Some(" 1 ")), (Scale::Full, None));
    }

    #[test]
    fn scale_rejects_malformed_values_loudly() {
        for bad in ["garbage", "yes", "true", "2", "full"] {
            let (scale, warning) = parse_scale(Some(bad));
            assert_eq!(scale, Scale::Quick, "fallback for {bad:?}");
            let w = warning.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(w.contains("FINRAD_FULL"), "warning names the var: {w}");
        }
    }

    #[test]
    fn quick_scale_is_smaller() {
        assert!(Scale::Quick.variation_samples() < Scale::Full.variation_samples());
        assert!(Scale::Quick.strike_iterations() < Scale::Full.strike_iterations());
        assert_eq!(Scale::Full.variation_samples(), 1000);
    }

    #[test]
    fn figure_config_matches_scale() {
        let cfg = figure_config(Scale::Quick);
        assert_eq!(cfg.iterations_per_energy, Scale::Quick.strike_iterations());
        assert_eq!(cfg.rows, 9);
        assert_eq!(cfg.cols, 9);
    }
}
