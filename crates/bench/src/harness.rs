//! A tiny, dependency-free micro-benchmark harness.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on `criterion`. This module provides the small slice of its API
//! the benches actually use: named benchmarks, a calibrated measurement
//! loop, and per-iteration setup via [`Bencher::iter_batched`]. Timings are
//! printed as `name ... <ns>/iter`.
//!
//! The per-benchmark time budget defaults to 300 ms and can be changed with
//! the `FINRAD_BENCH_MS` environment variable (whole milliseconds, e.g.
//! `FINRAD_BENCH_MS=50`). A malformed value is rejected loudly: a warning
//! is printed to stderr and the documented 300 ms default is used.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch-size hint, kept for call-site compatibility with criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Setup output is small; batches can be large.
    #[default]
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
}

/// Top-level harness: owns the time budget and prints results.
#[derive(Debug, Clone)]
pub struct Harness {
    budget: Duration,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Builds a harness with the budget from `FINRAD_BENCH_MS` (default
    /// 300 ms per benchmark). A malformed value does not silently become
    /// the default: a warning goes to stderr first.
    pub fn from_env() -> Self {
        let raw = std::env::var("FINRAD_BENCH_MS").ok();
        let (ms, warning) = parse_bench_ms(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        Self {
            budget: Duration::from_millis(ms),
        }
    }

    /// Runs one named benchmark. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] or [`Bencher::iter_batched`] exactly
    /// once.
    ///
    /// Besides the human-readable line, setting `FINRAD_BENCH_JSON=1`
    /// emits one machine-readable `BENCHJSON {...}` line per benchmark;
    /// `cargo xtask bench` scrapes these to build the `BENCH_<n>.json`
    /// trajectory file (see `docs/observability.md`).
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = if b.iters > 0 {
            b.elapsed.as_nanos() / u128::from(b.iters)
        } else {
            0
        };
        println!("{name:<40} {per:>12} ns/iter  ({} iters)", b.iters);
        if std::env::var("FINRAD_BENCH_JSON").as_deref() == Ok("1") {
            println!(
                "BENCHJSON {{\"name\":{},\"ns_per_iter\":{per},\"iters\":{}}}",
                json_escape(name),
                b.iters
            );
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Default per-benchmark budget when `FINRAD_BENCH_MS` is unset or
/// malformed.
pub const DEFAULT_BENCH_MS: u64 = 300;

/// Parses a `FINRAD_BENCH_MS` value into a budget in milliseconds.
///
/// Unset means the documented [`DEFAULT_BENCH_MS`]; a value that is not a
/// whole number of milliseconds also falls back to the default but returns
/// a warning for the caller to surface (the old behaviour silently
/// swallowed typos like `FINRAD_BENCH_MS=0.5s`). A parsed `0` is clamped
/// to 1 ms so the calibration loop always has a budget.
fn parse_bench_ms(raw: Option<&str>) -> (u64, Option<String>) {
    match raw {
        None => (DEFAULT_BENCH_MS, None),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) => (ms.max(1), None),
            Err(_) => (
                DEFAULT_BENCH_MS,
                Some(format!(
                    "FINRAD_BENCH_MS={v:?} is not a whole number of milliseconds; \
                     using the default {DEFAULT_BENCH_MS} ms"
                )),
            ),
        },
    }
}

/// Measurement state for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` in a calibrated loop: a short warm-up sizes the iteration
    /// count so the measured loop fills the time budget.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let mut n: u64 = 1;
        let warmup = (self.budget / 20).max(Duration::from_millis(5));
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= warmup || n >= (1 << 30) {
                let per_ns = (dt.as_nanos() / u128::from(n)).max(1);
                let target = self.budget.as_nanos().saturating_sub(dt.as_nanos());
                let iters = (target / per_ns).clamp(1, 1_000_000_000) as u64;
                let t1 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.iters = iters;
                self.elapsed = t1.elapsed();
                return;
            }
            n = n.saturating_mul(2);
        }
    }

    /// Like [`Self::iter`], but re-creates the routine input with `setup`
    /// before every call, excluding setup time from the measurement.
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
        _size: BatchSize,
    ) {
        // Calibrate on a handful of timed single calls.
        let mut timed = Duration::ZERO;
        let mut calls: u64 = 0;
        while timed < (self.budget / 20).max(Duration::from_millis(5)) && calls < (1 << 20) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            calls += 1;
        }
        let per_ns = (timed.as_nanos() / u128::from(calls.max(1))).max(1);
        let target = self.budget.as_nanos().saturating_sub(timed.as_nanos());
        let iters = (target / per_ns).clamp(1, 10_000_000) as u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
        }
        self.iters = iters + calls;
        self.elapsed = elapsed + timed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ms_parses_valid_values() {
        assert_eq!(parse_bench_ms(None), (DEFAULT_BENCH_MS, None));
        assert_eq!(parse_bench_ms(Some("50")), (50, None));
        assert_eq!(parse_bench_ms(Some(" 50 ")), (50, None));
        // Zero is clamped so the calibration loop has a budget.
        assert_eq!(parse_bench_ms(Some("0")), (1, None));
    }

    #[test]
    fn bench_ms_rejects_malformed_values_loudly() {
        for bad in ["0.5s", "abc", "", "-3", "1e3"] {
            let (ms, warning) = parse_bench_ms(Some(bad));
            assert_eq!(ms, DEFAULT_BENCH_MS, "fallback for {bad:?}");
            let w = warning.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(w.contains("FINRAD_BENCH_MS"), "warning names the var: {w}");
        }
    }

    #[test]
    fn iter_measures_something() {
        let mut h = Harness {
            budget: Duration::from_millis(10),
        };
        h.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut h = Harness {
            budget: Duration::from_millis(10),
        };
        h.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
