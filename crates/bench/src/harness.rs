//! A tiny, dependency-free micro-benchmark harness.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on `criterion`. This module provides the small slice of its API
//! the benches actually use: named benchmarks, a calibrated measurement
//! loop, and per-iteration setup via [`Bencher::iter_batched`]. Timings are
//! printed as `name ... <ns>/iter`.
//!
//! The per-benchmark time budget defaults to 300 ms and can be changed with
//! the `FINRAD_BENCH_MS` environment variable.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch-size hint, kept for call-site compatibility with criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Setup output is small; batches can be large.
    #[default]
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
}

/// Top-level harness: owns the time budget and prints results.
#[derive(Debug, Clone)]
pub struct Harness {
    budget: Duration,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Builds a harness with the budget from `FINRAD_BENCH_MS` (default
    /// 300 ms per benchmark).
    pub fn from_env() -> Self {
        let ms = std::env::var("FINRAD_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            budget: Duration::from_millis(ms.max(1)),
        }
    }

    /// Runs one named benchmark. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] or [`Bencher::iter_batched`] exactly
    /// once.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = if b.iters > 0 {
            b.elapsed.as_nanos() / u128::from(b.iters)
        } else {
            0
        };
        println!("{name:<40} {per:>12} ns/iter  ({} iters)", b.iters);
    }
}

/// Measurement state for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` in a calibrated loop: a short warm-up sizes the iteration
    /// count so the measured loop fills the time budget.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let mut n: u64 = 1;
        let warmup = (self.budget / 20).max(Duration::from_millis(5));
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= warmup || n >= (1 << 30) {
                let per_ns = (dt.as_nanos() / u128::from(n)).max(1);
                let target = self.budget.as_nanos().saturating_sub(dt.as_nanos());
                let iters = (target / per_ns).clamp(1, 1_000_000_000) as u64;
                let t1 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.iters = iters;
                self.elapsed = t1.elapsed();
                return;
            }
            n = n.saturating_mul(2);
        }
    }

    /// Like [`Self::iter`], but re-creates the routine input with `setup`
    /// before every call, excluding setup time from the measurement.
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
        _size: BatchSize,
    ) {
        // Calibrate on a handful of timed single calls.
        let mut timed = Duration::ZERO;
        let mut calls: u64 = 0;
        while timed < (self.budget / 20).max(Duration::from_millis(5)) && calls < (1 << 20) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            calls += 1;
        }
        let per_ns = (timed.as_nanos() / u128::from(calls.max(1))).max(1);
        let target = self.budget.as_nanos().saturating_sub(timed.as_nanos());
        let iters = (target / per_ns).clamp(1, 10_000_000) as u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
        }
        self.iters = iters + calls;
        self.elapsed = elapsed + timed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut h = Harness {
            budget: Duration::from_millis(10),
        };
        h.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut h = Harness {
            budget: Duration::from_millis(10),
        };
        h.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
