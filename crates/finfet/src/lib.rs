//! 14 nm SOI FinFET technology description and compact model.
//!
//! The paper characterizes its 6T SRAM cell with SPICE simulations against
//! a 14 nm SOI FinFET library (PTM-class, with device data from Wang et
//! al.). That library is proprietary/tooling-gated, so this crate provides
//! the substitute: an **EKV-style unified charge-sheet compact model** that
//! is smooth from weak to strong inversion (essential for Newton
//! convergence), includes DIBL, and exposes analytic derivatives for the
//! MNA Jacobian. The quantities the soft-error flow actually depends on —
//! ON current restoring the cell node, subthreshold leakage of the OFF
//! device, node capacitance, and the Vdd dependence of all three — are
//! reproduced at 14 nm-class values.
//!
//! * [`Technology`] — geometry, oxide, threshold and variation parameters.
//! * [`FinFet`] — a sized device instance evaluating `I_d(V_g, V_d, V_s)`
//!   and its derivatives.
//! * [`variation`] — Pelgrom-scaled threshold-voltage variation sampling
//!   (the paper's process-variation axis).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod model;
pub mod technology;
pub mod variation;

pub use model::{FinFet, Polarity, SmallSignal, SmallSignalBatch};
pub use technology::Technology;
pub use variation::VariationModel;
