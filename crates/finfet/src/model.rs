//! EKV-style FinFET compact model.
//!
//! The drain current is the difference of a forward and a reverse
//! interpolation function,
//!
//! ```text
//! I_d = I_spec · [F(x_s) − F(x_d)],   F(x) = ln²(1 + e^{x/2})
//! x_s = v_p/φt,  x_d = (v_p − v_ds)/φt,  v_p = (v_gs − V_th,eff)/n
//! V_th,eff = V_th0 + δV_th − η·v_ds          (DIBL)
//! I_spec = 2·n·µ·C_ox·(W_eff/L)·φt²
//! ```
//!
//! which is smooth from deep subthreshold (`F → e^x`, giving the exponential
//! leakage with slope `n·φt·ln 10`) to strong inversion (`F → (x/2)²`,
//! giving square-law saturation), and is infinitely differentiable — the
//! property the Newton solver in `finrad-spice` relies on. Source/drain
//! symmetry is handled by terminal swap; PMOS by voltage mirroring.

use crate::technology::Technology;
use finrad_units::Voltage;

/// Channel polarity of a FinFET instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Polarity {
    /// N-channel (pull-down and pass-gate devices in the 6T cell).
    Nmos,
    /// P-channel (pull-up devices).
    Pmos,
}

/// Operating-point evaluation of a device: drain current and its partial
/// derivatives with respect to the three terminal voltages.
///
/// `id` is the conventional current flowing *into* the drain terminal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SmallSignal {
    /// Drain current, amperes.
    pub id: f64,
    /// ∂I_d/∂V_g, siemens.
    pub did_dvg: f64,
    /// ∂I_d/∂V_d, siemens.
    pub did_dvd: f64,
    /// ∂I_d/∂V_s, siemens.
    pub did_dvs: f64,
}

/// Structure-of-arrays result of [`FinFet::evaluate_batch`]: lane `k`
/// holds the evaluation the scalar path would produce for
/// `device.with_delta_vth(delta_vths[k]).evaluate(vg, vd, vs)`, bit for
/// bit. The columnar layout keeps the per-lane math contiguous so the
/// Monte-Carlo inner loop amortizes call overhead and vectorizes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SmallSignalBatch {
    /// Drain current per lane, amperes.
    pub id: Vec<f64>,
    /// ∂I_d/∂V_g per lane, siemens.
    pub did_dvg: Vec<f64>,
    /// ∂I_d/∂V_d per lane, siemens.
    pub did_dvd: Vec<f64>,
    /// ∂I_d/∂V_s per lane, siemens.
    pub did_dvs: Vec<f64>,
}

impl SmallSignalBatch {
    /// An empty batch with room for `n` lanes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            id: Vec::with_capacity(n),
            did_dvg: Vec::with_capacity(n),
            did_dvd: Vec::with_capacity(n),
            did_dvs: Vec::with_capacity(n),
        }
    }

    /// Number of lanes currently held.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Lane `k` as a scalar [`SmallSignal`].
    pub fn lane(&self, k: usize) -> SmallSignal {
        SmallSignal {
            id: self.id[k],
            did_dvg: self.did_dvg[k],
            did_dvd: self.did_dvd[k],
            did_dvs: self.did_dvs[k],
        }
    }

    fn reset(&mut self, n: usize) {
        self.id.clear();
        self.did_dvg.clear();
        self.did_dvd.clear();
        self.did_dvs.clear();
        self.id.resize(n, 0.0);
        self.did_dvg.resize(n, 0.0);
        self.did_dvd.resize(n, 0.0);
        self.did_dvs.resize(n, 0.0);
    }
}

/// A sized FinFET instance bound to a [`Technology`].
///
/// # Examples
///
/// ```
/// use finrad_finfet::{FinFet, Polarity, Technology};
///
/// let tech = Technology::soi_finfet_14nm();
/// let nfet = FinFet::new(&tech, Polarity::Nmos, 1);
/// let on = nfet.evaluate(0.8, 0.8, 0.0);
/// let off = nfet.evaluate(0.0, 0.8, 0.0);
/// assert!(on.id > 1e3 * off.id); // strong ON/OFF ratio
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FinFet {
    polarity: Polarity,
    n_fins: u32,
    /// Zero-bias threshold magnitude, volts.
    vth0: f64,
    /// Per-instance threshold shift (process variation), volts.
    delta_vth: f64,
    /// Subthreshold slope factor.
    n_slope: f64,
    /// DIBL coefficient.
    eta: f64,
    /// Specific current I_spec, amperes.
    i_spec: f64,
    /// Thermal voltage, volts.
    phi_t: f64,
    /// Gate capacitance (total, all fins), farads.
    c_gate: f64,
    /// Junction capacitance at drain and at source (each), farads.
    c_junction: f64,
}

/// Numerically safe softplus: `ln(1 + e^x)`.
fn softplus(x: f64) -> f64 {
    if x > 40.0 {
        x
    } else if x < -40.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic sigmoid, the derivative of softplus.
fn sigmoid(x: f64) -> f64 {
    if x > 40.0 {
        1.0
    } else if x < -40.0 {
        x.exp()
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

/// The EKV interpolation function `F(x) = ln²(1 + e^{x/2})`.
fn ekv_f(x: f64) -> f64 {
    let s = softplus(0.5 * x);
    s * s
}

/// Its derivative `F'(x) = ln(1 + e^{x/2}) · σ(x/2)`.
fn ekv_f_prime(x: f64) -> f64 {
    softplus(0.5 * x) * sigmoid(0.5 * x)
}

impl FinFet {
    /// Creates a device with `n_fins` parallel fins in `tech`.
    ///
    /// # Panics
    ///
    /// Panics if `n_fins == 0`.
    pub fn new(tech: &Technology, polarity: Polarity, n_fins: u32) -> Self {
        assert!(n_fins > 0, "device needs at least one fin");
        let (vth0, mu_cm2) = match polarity {
            Polarity::Nmos => (tech.vth_n.volts(), tech.mu_n_cm2),
            Polarity::Pmos => (tech.vth_p.volts(), tech.mu_p_cm2),
        };
        let phi_t = tech.thermal_voltage().volts();
        let w_over_l = tech.w_eff_per_fin().meters() * n_fins as f64 / tech.l_gate.meters();
        let mu_m2 = mu_cm2 * 1.0e-4;
        let i_spec = 2.0 * tech.slope_factor * mu_m2 * tech.cox_f_per_m2 * w_over_l * phi_t * phi_t;
        Self {
            polarity,
            n_fins,
            vth0,
            delta_vth: 0.0,
            n_slope: tech.slope_factor,
            eta: tech.dibl,
            i_spec,
            phi_t,
            c_gate: tech.gate_cap_per_fin_f() * n_fins as f64,
            c_junction: tech.junction_cap_per_fin_f * n_fins as f64,
        }
    }

    /// Returns a copy with an added threshold-voltage shift (used by the
    /// process-variation Monte Carlo; positive `delta` weakens an NMOS and
    /// strengthens nothing — the sign convention is "added to |Vth|").
    pub fn with_delta_vth(&self, delta: Voltage) -> Self {
        let mut d = self.clone();
        d.delta_vth = delta.volts();
        d
    }

    /// Channel polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Number of parallel fins.
    pub fn n_fins(&self) -> u32 {
        self.n_fins
    }

    /// Total gate capacitance, farads.
    pub fn gate_cap_f(&self) -> f64 {
        self.c_gate
    }

    /// Junction capacitance at each of drain and source, farads.
    pub fn junction_cap_f(&self) -> f64 {
        self.c_junction
    }

    /// The applied threshold shift, volts.
    pub fn delta_vth_v(&self) -> f64 {
        self.delta_vth
    }

    /// Evaluates drain current and derivatives at terminal voltages
    /// `(v_gate, v_drain, v_source)` in volts (ground-referenced).
    pub fn evaluate(&self, v_gate: f64, v_drain: f64, v_source: f64) -> SmallSignal {
        match self.polarity {
            Polarity::Nmos => self.evaluate_nmos(v_gate, v_drain, v_source),
            Polarity::Pmos => {
                // Mirror: a PMOS at (vg, vd, vs) behaves as an NMOS at the
                // negated voltages with the current direction flipped.
                let m = self.evaluate_nmos(-v_gate, -v_drain, -v_source);
                SmallSignal {
                    id: -m.id,
                    did_dvg: m.did_dvg,
                    did_dvd: m.did_dvd,
                    did_dvs: m.did_dvs,
                }
            }
        }
    }

    fn evaluate_nmos(&self, vg: f64, vd: f64, vs: f64) -> SmallSignal {
        if vd >= vs {
            self.evaluate_nmos_forward(vg, vd, vs)
        } else {
            // Source/drain symmetry: swap terminals, flip the current.
            let sw = self.evaluate_nmos_forward(vg, vs, vd);
            SmallSignal {
                id: -sw.id,
                did_dvg: -sw.did_dvg,
                // Swapped: derivative wrt our vd is theirs wrt vs.
                did_dvd: -sw.did_dvs,
                did_dvs: -sw.did_dvd,
            }
        }
    }

    /// Core evaluation with `vd >= vs` guaranteed.
    fn evaluate_nmos_forward(&self, vg: f64, vd: f64, vs: f64) -> SmallSignal {
        let (n, eta, phi_t) = (self.n_slope, self.eta, self.phi_t);
        let vgs = vg - vs;
        let vds = vd - vs;
        let vth_eff = self.vth0 + self.delta_vth - eta * vds;
        let vp = (vgs - vth_eff) / n;
        let xs = vp / phi_t;
        let xd = (vp - vds) / phi_t;

        let f_s = ekv_f(xs);
        let f_d = ekv_f(xd);
        let fp_s = ekv_f_prime(xs);
        let fp_d = ekv_f_prime(xd);

        let id = self.i_spec * (f_s - f_d);

        // Chain rule: dvp/dvg = 1/n, dvp/dvd = eta/n, dvp/dvs = -(1+eta)/n;
        // dvds/dvd = 1, dvds/dvs = -1, dvds/dvg = 0.
        let dvp = [1.0 / n, eta / n, -(1.0 + eta) / n];
        let dvds = [0.0, 1.0, -1.0];
        let mut deriv = [0.0f64; 3];
        for k in 0..3 {
            let dxs = dvp[k] / phi_t;
            let dxd = (dvp[k] - dvds[k]) / phi_t;
            deriv[k] = self.i_spec * (fp_s * dxs - fp_d * dxd);
        }
        SmallSignal {
            id,
            did_dvg: deriv[0],
            did_dvd: deriv[1],
            did_dvs: deriv[2],
        }
    }

    /// Evaluates this device at one bias point across a batch of
    /// threshold-shift overrides: lane `k` equals
    /// `self.with_delta_vth(delta_vths[k]).evaluate(v_gate, v_drain,
    /// v_source)` bit for bit (pinned by a test). The polarity mirror and
    /// the source/drain swap depend only on the shared voltages, so both
    /// are resolved once and the per-lane loop is branch-free apart from
    /// the softplus range guards.
    pub fn evaluate_batch(
        &self,
        v_gate: f64,
        v_drain: f64,
        v_source: f64,
        delta_vths: &[f64],
        out: &mut SmallSignalBatch,
    ) {
        out.reset(delta_vths.len());
        if delta_vths.is_empty() {
            return;
        }

        // Resolve the PMOS mirror and the source/drain swap once; the
        // lane loop then runs the same statements as the scalar
        // `evaluate_nmos_forward`, with only `delta_vth` varying.
        let pmos = self.polarity == Polarity::Pmos;
        let (mvg, mvd, mvs) = if pmos {
            (-v_gate, -v_drain, -v_source)
        } else {
            (v_gate, v_drain, v_source)
        };
        let swap = mvd < mvs;
        let (vg, vd, vs) = if swap {
            (mvg, mvs, mvd)
        } else {
            (mvg, mvd, mvs)
        };

        let (n, eta, phi_t) = (self.n_slope, self.eta, self.phi_t);
        let vgs = vg - vs;
        let vds = vd - vs;
        let dvp = [1.0 / n, eta / n, -(1.0 + eta) / n];
        let dvds = [0.0, 1.0, -1.0];
        let mut dxs = [0.0f64; 3];
        let mut dxd = [0.0f64; 3];
        for k in 0..3 {
            dxs[k] = dvp[k] / phi_t;
            dxd[k] = (dvp[k] - dvds[k]) / phi_t;
        }

        for (lane, &delta) in delta_vths.iter().enumerate() {
            let vth_eff = self.vth0 + delta - eta * vds;
            let vp = (vgs - vth_eff) / n;
            let xs = vp / phi_t;
            let xd = (vp - vds) / phi_t;

            let f_s = ekv_f(xs);
            let f_d = ekv_f(xd);
            let fp_s = ekv_f_prime(xs);
            let fp_d = ekv_f_prime(xd);

            let id_f = self.i_spec * (f_s - f_d);
            let dvg_f = self.i_spec * (fp_s * dxs[0] - fp_d * dxd[0]);
            let dvd_f = self.i_spec * (fp_s * dxs[1] - fp_d * dxd[1]);
            let dvs_f = self.i_spec * (fp_s * dxs[2] - fp_d * dxd[2]);

            // Undo the swap and the mirror with the exact negation
            // sequence of the scalar path so lanes stay bit-identical.
            let (id_n, dvg, dvd, dvs) = if swap {
                (-id_f, -dvg_f, -dvs_f, -dvd_f)
            } else {
                (id_f, dvg_f, dvd_f, dvs_f)
            };
            let id = if pmos { -id_n } else { id_n };

            out.id[lane] = id;
            out.did_dvg[lane] = dvg;
            out.did_dvd[lane] = dvd;
            out.did_dvs[lane] = dvs;
        }

        finrad_observe::counter_add(
            finrad_observe::keys::FINFET_MODEL_BATCHED_EVALS,
            delta_vths.len() as u64,
        );
    }

    /// ON-state drain current at `vdd` (gate and drain at `vdd`, source at
    /// ground for NMOS; mirrored for PMOS).
    pub fn on_current(&self, vdd: Voltage) -> f64 {
        let v = vdd.volts();
        match self.polarity {
            Polarity::Nmos => self.evaluate(v, v, 0.0).id,
            Polarity::Pmos => -self.evaluate(0.0, 0.0, v).id,
        }
    }

    /// OFF-state leakage magnitude at `vdd` (gate at the source potential).
    pub fn off_current(&self, vdd: Voltage) -> f64 {
        let v = vdd.volts();
        match self.polarity {
            Polarity::Nmos => self.evaluate(0.0, v, 0.0).id,
            Polarity::Pmos => -self.evaluate(v, 0.0, v).id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::soi_finfet_14nm()
    }

    fn nfet() -> FinFet {
        FinFet::new(&tech(), Polarity::Nmos, 1)
    }

    fn pfet() -> FinFet {
        FinFet::new(&tech(), Polarity::Pmos, 1)
    }

    #[test]
    fn on_current_is_14nm_class() {
        // Per-fin drive current should be tens of µA.
        let ion = nfet().on_current(Voltage::from_volts(0.8)) * 1.0e6;
        assert!((10.0..300.0).contains(&ion), "I_on = {ion} uA");
    }

    #[test]
    fn on_off_ratio_large() {
        let d = nfet();
        let vdd = Voltage::from_volts(0.8);
        let ratio = d.on_current(vdd) / d.off_current(vdd);
        assert!(ratio > 1.0e4, "ON/OFF ratio {ratio}");
    }

    #[test]
    fn subthreshold_slope_near_ideal() {
        // Current should fall ~1 decade per n·φt·ln10 ≈ 65 mV of Vgs.
        let d = nfet();
        let i1 = d.evaluate(0.15, 0.8, 0.0).id;
        let i2 = d.evaluate(0.15 - 0.0655, 0.8, 0.0).id;
        let decade = (i1 / i2).log10();
        assert!((decade - 1.0).abs() < 0.15, "decades per 65.5mV: {decade}");
    }

    #[test]
    fn dibl_raises_leakage_with_vds() {
        let d = nfet();
        let low = d.evaluate(0.0, 0.4, 0.0).id;
        let high = d.evaluate(0.0, 0.8, 0.0).id;
        assert!(high > 1.5 * low, "DIBL: {high} vs {low}");
    }

    #[test]
    fn saturation_region_flat() {
        // Beyond vdsat, current grows only weakly with vd (DIBL only).
        let d = nfet();
        let a = d.evaluate(0.8, 0.5, 0.0).id;
        let b = d.evaluate(0.8, 0.8, 0.0).id;
        assert!(b > a); // monotone
        assert!(b < 1.3 * a, "should be nearly saturated: {a} vs {b}");
    }

    #[test]
    fn zero_vds_zero_current() {
        let d = nfet();
        let s = d.evaluate(0.8, 0.3, 0.3);
        assert!(s.id.abs() < 1e-12);
    }

    #[test]
    fn symmetry_swap_antisymmetric() {
        let d = nfet();
        let fwd = d.evaluate(0.6, 0.5, 0.1);
        let rev = d.evaluate(0.6, 0.1, 0.5);
        assert!((fwd.id + rev.id).abs() < 1e-15 + 1e-9 * fwd.id.abs());
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = pfet();
        // PMOS ON: gate low, source at vdd, drain low => current out of drain.
        let on = p.evaluate(0.0, 0.0, 0.8);
        assert!(
            on.id < 0.0,
            "PMOS pulls current out of its drain (id={})",
            on.id
        );
        assert!(p.on_current(Voltage::from_volts(0.8)) > 1e-6);
        // OFF: gate high.
        let off = p.evaluate(0.8, 0.0, 0.8);
        assert!(off.id.abs() < on.id.abs() / 1e4);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let d = nfet();
        let p = pfet();
        let h = 1e-7;
        for dev in [&d, &p] {
            for (vg, vd, vs) in [
                (0.8, 0.8, 0.0),
                (0.4, 0.2, 0.0),
                (0.1, 0.8, 0.0),
                (0.6, 0.1, 0.5),
                (0.0, 0.0, 0.8),
                (0.3, 0.7, 0.7),
            ] {
                let s = dev.evaluate(vg, vd, vs);
                let num_g =
                    (dev.evaluate(vg + h, vd, vs).id - dev.evaluate(vg - h, vd, vs).id) / (2.0 * h);
                let num_d =
                    (dev.evaluate(vg, vd + h, vs).id - dev.evaluate(vg, vd - h, vs).id) / (2.0 * h);
                let num_s =
                    (dev.evaluate(vg, vd, vs + h).id - dev.evaluate(vg, vd, vs - h).id) / (2.0 * h);
                let scale = s.did_dvg.abs() + s.did_dvd.abs() + s.did_dvs.abs() + 1e-12;
                assert!(
                    (s.did_dvg - num_g).abs() / scale < 1e-4,
                    "gm mismatch at ({vg},{vd},{vs}): {} vs {num_g}",
                    s.did_dvg
                );
                assert!(
                    (s.did_dvd - num_d).abs() / scale < 1e-4,
                    "gds mismatch at ({vg},{vd},{vs}): {} vs {num_d}",
                    s.did_dvd
                );
                assert!(
                    (s.did_dvs - num_s).abs() / scale < 1e-4,
                    "gms mismatch at ({vg},{vd},{vs}): {} vs {num_s}",
                    s.did_dvs
                );
            }
        }
    }

    #[test]
    fn common_mode_shift_invariance() {
        let d = nfet();
        let a = d.evaluate(0.5, 0.4, 0.1);
        let b = d.evaluate(0.8, 0.7, 0.4);
        assert!((a.id - b.id).abs() < 1e-12 + 1e-9 * a.id.abs());
    }

    #[test]
    fn delta_vth_weakens_device() {
        let d = nfet();
        let weak = d.with_delta_vth(Voltage::from_mv(50.0));
        let strong = d.with_delta_vth(Voltage::from_mv(-50.0));
        let vdd = Voltage::from_volts(0.8);
        assert!(weak.on_current(vdd) < d.on_current(vdd));
        assert!(strong.on_current(vdd) > d.on_current(vdd));
        assert_eq!(weak.delta_vth_v(), 0.05);
    }

    #[test]
    fn fins_scale_current_and_caps() {
        let t = tech();
        let d1 = FinFet::new(&t, Polarity::Nmos, 1);
        let d2 = FinFet::new(&t, Polarity::Nmos, 2);
        let vdd = Voltage::from_volts(0.8);
        let r = d2.on_current(vdd) / d1.on_current(vdd);
        assert!((r - 2.0).abs() < 1e-9);
        assert!((d2.gate_cap_f() / d1.gate_cap_f() - 2.0).abs() < 1e-9);
        assert!((d2.junction_cap_f() / d1.junction_cap_f() - 2.0).abs() < 1e-9);
        assert_eq!(d2.n_fins(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn rejects_zero_fins() {
        let _ = FinFet::new(&tech(), Polarity::Nmos, 0);
    }

    #[test]
    fn batch_lanes_bit_identical_to_scalar_path() {
        // Bias points cover forward, swapped (vd < vs), and PMOS-mirrored
        // regions so every branch resolved outside the lane loop is hit.
        let deltas = [-0.08, -0.03, 0.0, 0.012, 0.05, 0.1];
        let mut batch = SmallSignalBatch::with_capacity(deltas.len());
        for dev in [&nfet(), &pfet()] {
            for (vg, vd, vs) in [
                (0.8, 0.8, 0.0),
                (0.4, 0.2, 0.0),
                (0.6, 0.1, 0.5),
                (0.0, 0.0, 0.8),
                (0.3, 0.7, 0.7),
            ] {
                dev.evaluate_batch(vg, vd, vs, &deltas, &mut batch);
                assert_eq!(batch.len(), deltas.len());
                for (k, &delta) in deltas.iter().enumerate() {
                    let scalar = dev
                        .with_delta_vth(Voltage::from_volts(delta))
                        .evaluate(vg, vd, vs);
                    let lane = batch.lane(k);
                    for (b, s) in [
                        (lane.id, scalar.id),
                        (lane.did_dvg, scalar.did_dvg),
                        (lane.did_dvd, scalar.did_dvd),
                        (lane.did_dvs, scalar.did_dvs),
                    ] {
                        assert_eq!(
                            b.to_bits(),
                            s.to_bits(),
                            "lane {k} at ({vg},{vd},{vs}): batch {b} vs scalar {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_empty_and_reuse() {
        let d = nfet();
        let mut batch = SmallSignalBatch::default();
        d.evaluate_batch(0.8, 0.8, 0.0, &[0.0, 0.01], &mut batch);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        // Reusing the same buffer with fewer lanes truncates it.
        d.evaluate_batch(0.8, 0.8, 0.0, &[], &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn ekv_f_limits() {
        // Subthreshold: F(x) ~ e^x for very negative x.
        let x = -20.0;
        assert!((ekv_f(x) / x.exp() - 1.0).abs() < 0.01);
        // Strong inversion: F(x) ~ (x/2)^2 for large x.
        let y = 60.0;
        assert!((ekv_f(y) / (y / 2.0 + 1.0e-9).powi(2) - 1.0).abs() < 0.05);
        // No overflow at extreme drive.
        assert!(ekv_f(4000.0).is_finite());
        assert!(ekv_f_prime(4000.0).is_finite());
        assert!(ekv_f(-4000.0) >= 0.0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use finrad_numerics::rng::{Rng, Xoshiro256pp};

    #[test]
    fn current_finite_and_sign_consistent() {
        let d = FinFet::new(&Technology::soi_finfet_14nm(), Polarity::Nmos, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(0xF1);
        for _ in 0..500 {
            let vg = rng.gen_range(-1.5..1.5);
            let vd = rng.gen_range(-1.5..1.5);
            let vs = rng.gen_range(-1.5..1.5);
            let s = d.evaluate(vg, vd, vs);
            assert!(s.id.is_finite());
            if vd > vs {
                assert!(s.id >= -1e-18);
            } else if vd < vs {
                assert!(s.id <= 1e-18);
            }
        }
    }

    #[test]
    fn gm_nonnegative() {
        let d = FinFet::new(&Technology::soi_finfet_14nm(), Polarity::Nmos, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(0x9E);
        for _ in 0..500 {
            let vg = rng.gen_range(-1.0..1.0);
            let vd = rng.gen_range(0.0..1.0);
            let s = d.evaluate(vg, vd, 0.0);
            assert!(s.did_dvg >= -1e-18);
        }
    }

    #[test]
    fn monotone_in_vgs() {
        let d = FinFet::new(&Technology::soi_finfet_14nm(), Polarity::Nmos, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(0x360);
        for _ in 0..500 {
            let vd = rng.gen_range(0.1..1.0);
            let v1 = rng.gen_range(-0.5..1.0);
            let v2 = rng.gen_range(-0.5..1.0);
            let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
            let i_lo = d.evaluate(lo, vd, 0.0).id;
            let i_hi = d.evaluate(hi, vd, 0.0).id;
            assert!(i_hi >= i_lo - 1e-18);
        }
    }
}
