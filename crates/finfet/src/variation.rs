//! Process-variation model: per-instance threshold-voltage sampling.
//!
//! The paper's Section 4 characterizes POF "considering the threshold
//! voltage variation by performing 1000 MC simulations". Threshold
//! variation in FinFETs is dominated by work-function granularity and
//! line-edge roughness and is well described by a normal distribution whose
//! σ follows Pelgrom area scaling, `σ_Vth = A_Vt/√(W_eff·L)`.

use crate::technology::Technology;
use finrad_numerics::rng::Rng;
use finrad_units::Voltage;

/// Threshold-variation model bound to a technology.
///
/// # Examples
///
/// ```
/// use finrad_finfet::{Technology, VariationModel};
/// use finrad_numerics::rng::Xoshiro256pp;
///
/// let tech = Technology::soi_finfet_14nm();
/// let var = VariationModel::pelgrom(&tech);
/// let mut rng = Xoshiro256pp::seed_from_u64(3);
/// let d = var.sample_delta_vth(1, &mut rng);
/// assert!(d.volts().abs() < 0.5); // a few sigma at most
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VariationModel {
    sigma_one_fin: Voltage,
    /// Global scale knob (1.0 = nominal technology corner).
    scale: f64,
}

impl VariationModel {
    /// Pelgrom-scaled variation for `tech`.
    pub fn pelgrom(tech: &Technology) -> Self {
        Self {
            sigma_one_fin: tech.sigma_vth(1),
            scale: 1.0,
        }
    }

    /// Returns a copy with σ multiplied by `scale` (corner exploration).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn with_scale(&self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "invalid sigma scale");
        Self {
            sigma_one_fin: self.sigma_one_fin,
            scale,
        }
    }

    /// σ_Vth for a device with `n_fins` fins.
    pub fn sigma_vth(&self, n_fins: u32) -> Voltage {
        assert!(n_fins > 0, "device needs at least one fin");
        self.sigma_one_fin * self.scale / (n_fins as f64).sqrt()
    }

    /// Draws one ΔVth for a device with `n_fins` fins.
    pub fn sample_delta_vth<R: Rng + ?Sized>(&self, n_fins: u32, rng: &mut R) -> Voltage {
        let sigma = self.sigma_vth(n_fins);
        sigma * standard_normal(rng)
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(0.0f64..1.0);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    #[test]
    fn sample_statistics_match_sigma() {
        let tech = Technology::soi_finfet_14nm();
        let var = VariationModel::pelgrom(&tech);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| var.sample_delta_vth(1, &mut rng).volts())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var_est = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sigma_expect = var.sigma_vth(1).volts();
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!(
            (var_est.sqrt() - sigma_expect).abs() / sigma_expect < 0.03,
            "sigma {} vs {}",
            var_est.sqrt(),
            sigma_expect
        );
    }

    #[test]
    fn scale_zero_is_deterministic() {
        let tech = Technology::soi_finfet_14nm();
        let var = VariationModel::pelgrom(&tech).with_scale(0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(var.sample_delta_vth(1, &mut rng).volts(), 0.0);
        }
    }

    #[test]
    fn multi_fin_averaging() {
        let tech = Technology::soi_finfet_14nm();
        let var = VariationModel::pelgrom(&tech);
        let r = var.sigma_vth(1).volts() / var.sigma_vth(4).volts();
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid sigma scale")]
    fn rejects_negative_scale() {
        let tech = Technology::soi_finfet_14nm();
        let _ = VariationModel::pelgrom(&tech).with_scale(-1.0);
    }
}
