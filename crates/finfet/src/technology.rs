//! Technology parameters for the 14 nm SOI FinFET node.

use finrad_units::{Length, Voltage};

/// A FinFET technology node description.
///
/// Default parameters are 14 nm SOI FinFET class, assembled from the public
/// values the paper's sources describe (Wang et al.'s 14 nm SOI device and
/// PTM-MG): fin width 8 nm, fin height 30 nm, gate length 20 nm, EOT
/// ≈ 0.9 nm, |Vth| ≈ 0.25–0.3 V, nominal Vdd 0.8 V.
///
/// # Examples
///
/// ```
/// use finrad_finfet::Technology;
///
/// let tech = Technology::soi_finfet_14nm();
/// assert!((tech.w_eff_per_fin().nanometers() - 68.0).abs() < 1e-9);
/// assert!(tech.vdd_nominal.volts() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Technology {
    /// Human-readable node name.
    pub name: String,
    /// Fin width (the thin silicon body dimension).
    pub w_fin: Length,
    /// Fin height above the buried oxide.
    pub h_fin: Length,
    /// Physical gate length.
    pub l_gate: Length,
    /// Gate-oxide capacitance per area, F/m².
    pub cox_f_per_m2: f64,
    /// NMOS threshold voltage at zero Vds.
    pub vth_n: Voltage,
    /// PMOS threshold voltage magnitude at zero Vds.
    pub vth_p: Voltage,
    /// Subthreshold slope factor `n` (SS = n·φt·ln10; FinFETs are near 1).
    pub slope_factor: f64,
    /// DIBL coefficient η: ΔVth = −η·Vds, V/V.
    pub dibl: f64,
    /// Effective NMOS mobility (compact-model fit), cm²/(V·s).
    pub mu_n_cm2: f64,
    /// Effective PMOS mobility (compact-model fit), cm²/(V·s).
    pub mu_p_cm2: f64,
    /// Pelgrom matching coefficient A_Vt, V·m (σ_Vth = A_Vt/√(W_eff·L)).
    pub avt_v_m: f64,
    /// Nominal supply voltage.
    pub vdd_nominal: Voltage,
    /// Extra junction/wiring capacitance per fin at drain/source, farads.
    /// SOI devices have no bulk junction — raised source/drain sit on the
    /// buried oxide — so this is a few attofarads of fringe/contact only.
    pub junction_cap_per_fin_f: f64,
    /// Ratio of the bias-averaged intrinsic gate capacitance to the oxide
    /// capacitance `Cox·W_eff·L`. The full oxide capacitance only appears
    /// in strong inversion; averaged over an upset transient (devices
    /// swing through off/linear/saturation) the effective value is about
    /// half, which is what the MNA cap stamps use.
    pub gate_cap_utilization: f64,
}

impl Technology {
    /// The 14 nm SOI FinFET technology used throughout the paper's
    /// evaluation.
    pub fn soi_finfet_14nm() -> Self {
        Self {
            name: "soi-finfet-14nm".to_owned(),
            w_fin: Length::from_nm(8.0),
            h_fin: Length::from_nm(30.0),
            l_gate: Length::from_nm(20.0),
            // EOT ~0.9 nm: Cox = eps0 * 3.9 / 0.9 nm.
            cox_f_per_m2: 3.9 * 8.854_187_8e-12 / 0.9e-9,
            vth_n: Voltage::from_mv(280.0),
            vth_p: Voltage::from_mv(290.0),
            slope_factor: 1.10,
            dibl: 0.06,
            mu_n_cm2: 90.0,
            mu_p_cm2: 70.0,
            // Tuned to give sigma_Vth ~= 30-40 mV on a single-fin device,
            // the measured 14 nm FinFET class (Wang et al. report ~30 mV).
            avt_v_m: 1.3e-9,
            vdd_nominal: Voltage::from_mv(800.0),
            junction_cap_per_fin_f: 3.0e-18,
            gate_cap_utilization: 0.5,
        }
    }

    /// Effective electrical width of one fin: `2·H_fin + W_fin`
    /// (both sidewalls plus the top surface conduct).
    pub fn w_eff_per_fin(&self) -> Length {
        Length::from_meters(2.0 * self.h_fin.meters() + self.w_fin.meters())
    }

    /// Effective (bias-averaged) gate capacitance of one fin:
    /// `gate_cap_utilization · Cox · W_eff · L_gate`.
    pub fn gate_cap_per_fin_f(&self) -> f64 {
        self.gate_cap_utilization
            * self.cox_f_per_m2
            * self.w_eff_per_fin().meters()
            * self.l_gate.meters()
    }

    /// σ_Vth of a device with `n_fins` parallel fins (Pelgrom scaling over
    /// the total gate area).
    pub fn sigma_vth(&self, n_fins: u32) -> Voltage {
        assert!(n_fins > 0, "device needs at least one fin");
        let area = self.w_eff_per_fin().meters() * n_fins as f64 * self.l_gate.meters();
        Voltage::from_volts(self.avt_v_m / area.sqrt())
    }

    /// Thermal voltage at 300 K.
    pub fn thermal_voltage(&self) -> Voltage {
        Voltage::from_mv(25.852)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::soi_finfet_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_eff_formula() {
        let t = Technology::soi_finfet_14nm();
        assert!((t.w_eff_per_fin().nanometers() - 68.0).abs() < 1e-9);
    }

    #[test]
    fn gate_cap_is_tens_of_attofarads() {
        let t = Technology::soi_finfet_14nm();
        let cg = t.gate_cap_per_fin_f();
        assert!(
            (1.0e-17..2.0e-16).contains(&cg),
            "gate cap {cg} F should be ~5e-17"
        );
    }

    #[test]
    fn sigma_vth_in_measured_band() {
        let t = Technology::soi_finfet_14nm();
        let s1 = t.sigma_vth(1);
        assert!(
            (15.0..60.0).contains(&s1.millivolts()),
            "sigma {} mV",
            s1.millivolts()
        );
        // Pelgrom: doubling the number of fins shrinks sigma by sqrt(2).
        let s2 = t.sigma_vth(2);
        assert!((s1.millivolts() / s2.millivolts() - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn sigma_rejects_zero_fins() {
        let _ = Technology::soi_finfet_14nm().sigma_vth(0);
    }
}
