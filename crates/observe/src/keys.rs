//! Canonical metric keys used across the workspace.
//!
//! Keys are dotted paths, `<crate>.<subsystem>.<quantity>`. Counters count
//! events; histogram keys ending in `_seconds` hold wall-time observations
//! in seconds, and keys ending in `_per_sec` hold throughput observations.
//! The full catalogue (with units and producers) is documented in
//! `docs/observability.md`.
//!
//! This file doubles as the machine-readable key registry: the
//! `metrics-key-registry` lint (`cargo xtask lint`) indexes every
//! `pub const NAME: &str` here and rejects recorder calls elsewhere in
//! the workspace whose key literal is neither declared below nor under
//! a `*_PREFIX` constant. Add the constant first, then use it.

/// Newton iterations executed by the SPICE solver (converged or not).
pub const SPICE_NEWTON_ITERATIONS: &str = "spice.newton.iterations";
/// Newton solves attempted (each may take many iterations).
pub const SPICE_NEWTON_SOLVES: &str = "spice.newton.solves";
/// Newton solves that failed to converge (before any recovery rung).
pub const SPICE_NEWTON_FAILURES: &str = "spice.newton.failures";
/// Newton solves aborted by a cooperative cancellation token (explicit
/// cancel or expired deadline).
pub const SPICE_NEWTON_CANCELLED: &str = "spice.newton.cancelled";
/// Prefix for recovery-ladder rung attempts; the rung's display name and
/// outcome are appended, e.g. `spice.recovery.rung.gmin-stepping.ok`.
pub const SPICE_RECOVERY_RUNG_PREFIX: &str = "spice.recovery.rung.";
/// DC operating-point solves seeded from a previously solved state
/// (Monte-Carlo warm starts).
pub const SPICE_NEWTON_WARM_STARTS: &str = "spice.newton.warm_starts";
/// Newton iterations spent inside warm-started DC solves — compare with
/// the cold-start iteration cost to read off the warm-start saving.
pub const SPICE_NEWTON_WARM_ITERATIONS: &str = "spice.newton.warm_start_iterations";
/// Linear solves served by the structure-exploiting fixed-pattern LU.
pub const SPICE_LU_STRUCTURED: &str = "spice.newton.lu_structured";
/// Linear solves that fell back to dense partial-pivot LU because the
/// frozen pivot order failed the stability guard.
pub const SPICE_LU_DENSE_FALLBACKS: &str = "spice.newton.lu_dense_fallbacks";
/// Newton iterations served by a retained Jacobian factorization
/// (quasi-Newton chord steps: RHS restamped, no refactorization).
pub const SPICE_NEWTON_JACOBIAN_REUSES: &str = "spice.newton.jacobian_reuses";
/// Newton iterations that stamped and factored a fresh Jacobian (the
/// complement of `jacobian_reuses`; together they sum to `iterations`).
pub const SPICE_NEWTON_REFACTORIZATIONS: &str = "spice.newton.refactorizations";
/// Transient steps on which the LTE controller doubled the settle-phase
/// timestep because the BE truncation-error estimate permitted it.
pub const SPICE_TRANSIENT_LTE_STEP_GROWTHS: &str = "spice.transient.lte_step_growths";

/// FinFET model evaluations served by the structure-of-arrays batch path
/// (one lane per Monte-Carlo ΔVth sample).
pub const FINFET_MODEL_BATCHED_EVALS: &str = "finfet.model.batched_evals";

/// Critical-charge bisection/bracketing transient evaluations.
pub const SRAM_BISECTION_STEPS: &str = "sram.characterize.bisection_steps";
/// Pre-strike DC operating points answered from the per-(vdd, deltas)
/// cache instead of a fresh recovery-ladder solve.
pub const SRAM_DCOP_CACHE_HITS: &str = "sram.characterize.dcop_cache_hits";
/// Pre-strike DC operating points that missed the cache and were solved.
pub const SRAM_DCOP_CACHE_MISSES: &str = "sram.characterize.dcop_cache_misses";
/// Transient settle phases cut short by the stationarity early exit.
pub const SRAM_SETTLE_EARLY_EXITS: &str = "sram.characterize.settle_early_exits";
/// Strike combos characterized.
pub const SRAM_COMBOS: &str = "sram.characterize.combos";
/// Wall time per characterized combo, seconds.
pub const SRAM_COMBO_SECONDS: &str = "sram.characterize.combo_seconds";

/// Array-level strike-MC iterations executed.
pub const STRIKE_ITERATIONS: &str = "core.strike.iterations";
/// Strike-MC iterations rejected by the accumulator NaN quarantine.
pub const STRIKE_QUARANTINED: &str = "core.strike.quarantined";
/// Wall time of one `StrikeSimulator::estimate` call, seconds.
pub const STRIKE_ESTIMATE_SECONDS: &str = "core.strike.estimate_seconds";
/// Strike-MC throughput of one estimate call, iterations/second.
pub const STRIKE_ITERS_PER_SEC: &str = "core.strike.iters_per_sec";

/// Neutron-MC histories executed.
pub const NEUTRON_ITERATIONS: &str = "core.neutron.iterations";
/// Neutron-MC histories rejected by the accumulator NaN quarantine.
pub const NEUTRON_QUARANTINED: &str = "core.neutron.quarantined";
/// Wall time of one `NeutronSimulator::estimate` call, seconds.
pub const NEUTRON_ESTIMATE_SECONDS: &str = "core.neutron.estimate_seconds";
/// Neutron-MC throughput of one estimate call, histories/second.
pub const NEUTRON_ITERS_PER_SEC: &str = "core.neutron.iters_per_sec";

/// Wall time per campaign energy bin, seconds.
pub const CAMPAIGN_BIN_SECONDS: &str = "core.campaign.bin_seconds";
/// Campaign energy bins that completed.
pub const CAMPAIGN_BINS_OK: &str = "core.campaign.bins_ok";
/// Campaign energy bins that failed (degraded coverage).
pub const CAMPAIGN_BINS_FAILED: &str = "core.campaign.bins_failed";

/// Campaign-service jobs accepted by `submit` (cache hits included).
pub const SERVICE_JOBS_SUBMITTED: &str = "core.service.jobs_submitted";
/// Campaign-service jobs that completed with a report.
pub const SERVICE_JOBS_COMPLETED: &str = "core.service.jobs_completed";
/// Campaign-service jobs that terminated with a typed error.
pub const SERVICE_JOBS_FAILED: &str = "core.service.jobs_failed";
/// Submissions answered from the fingerprint-keyed result cache.
pub const SERVICE_CACHE_HITS: &str = "core.service.cache_hits";
/// Submissions that missed the result cache and were scheduled.
pub const SERVICE_CACHE_MISSES: &str = "core.service.cache_misses";
/// Submissions coalesced onto an identical already-running job.
pub const SERVICE_JOBS_COALESCED: &str = "core.service.jobs_coalesced";
/// Bin executions re-queued after a supervised worker panic.
pub const SERVICE_BIN_RETRIES: &str = "core.service.bin_retries";
/// Bins quarantined to the dead-letter list after retry exhaustion.
pub const SERVICE_BINS_QUARANTINED: &str = "core.service.bins_quarantined";
/// Work items a worker stole from another worker's queue.
pub const SERVICE_QUEUE_STEALS: &str = "core.service.queue_steals";
/// Jobs aborted because their wall-clock deadline expired.
pub const SERVICE_DEADLINE_CANCELLATIONS: &str = "core.service.deadline_cancellations";
/// Partial checkpoints flushed during a graceful drain/shutdown.
pub const SERVICE_DRAIN_FLUSHES: &str = "core.service.drain_flushes";
/// Total queued work items observed at each enqueue (queue-depth gauge,
/// recorded as a histogram so the trajectory captures min/mean/max depth).
pub const SERVICE_QUEUE_DEPTH: &str = "core.service.queue_depth";
/// Wall time from job submission to its terminal state, seconds.
pub const SERVICE_JOB_SECONDS: &str = "core.service.job_seconds";
/// Queue throughput of one completed job, energy bins per second.
pub const SERVICE_BINS_PER_SEC: &str = "core.service.bins_per_sec";
