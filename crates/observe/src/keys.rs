//! Canonical metric keys used across the workspace.
//!
//! Keys are dotted paths, `<crate>.<subsystem>.<quantity>`. Counters count
//! events; histogram keys ending in `_seconds` hold wall-time observations
//! in seconds, and keys ending in `_per_sec` hold throughput observations.
//! The full catalogue (with units and producers) is documented in
//! `docs/observability.md`.
//!
//! This file doubles as the machine-readable key registry: the
//! `metrics-key-registry` lint (`cargo xtask lint`) indexes every
//! `pub const NAME: &str` here and rejects recorder calls elsewhere in
//! the workspace whose key literal is neither declared below nor under
//! a `*_PREFIX` constant. Add the constant first, then use it.

/// Newton iterations executed by the SPICE solver (converged or not).
pub const SPICE_NEWTON_ITERATIONS: &str = "spice.newton.iterations";
/// Newton solves attempted (each may take many iterations).
pub const SPICE_NEWTON_SOLVES: &str = "spice.newton.solves";
/// Newton solves that failed to converge (before any recovery rung).
pub const SPICE_NEWTON_FAILURES: &str = "spice.newton.failures";
/// Prefix for recovery-ladder rung attempts; the rung's display name and
/// outcome are appended, e.g. `spice.recovery.rung.gmin-stepping.ok`.
pub const SPICE_RECOVERY_RUNG_PREFIX: &str = "spice.recovery.rung.";

/// Critical-charge bisection/bracketing transient evaluations.
pub const SRAM_BISECTION_STEPS: &str = "sram.characterize.bisection_steps";
/// Strike combos characterized.
pub const SRAM_COMBOS: &str = "sram.characterize.combos";
/// Wall time per characterized combo, seconds.
pub const SRAM_COMBO_SECONDS: &str = "sram.characterize.combo_seconds";

/// Array-level strike-MC iterations executed.
pub const STRIKE_ITERATIONS: &str = "core.strike.iterations";
/// Strike-MC iterations rejected by the accumulator NaN quarantine.
pub const STRIKE_QUARANTINED: &str = "core.strike.quarantined";
/// Wall time of one `StrikeSimulator::estimate` call, seconds.
pub const STRIKE_ESTIMATE_SECONDS: &str = "core.strike.estimate_seconds";
/// Strike-MC throughput of one estimate call, iterations/second.
pub const STRIKE_ITERS_PER_SEC: &str = "core.strike.iters_per_sec";

/// Neutron-MC histories executed.
pub const NEUTRON_ITERATIONS: &str = "core.neutron.iterations";
/// Neutron-MC histories rejected by the accumulator NaN quarantine.
pub const NEUTRON_QUARANTINED: &str = "core.neutron.quarantined";
/// Wall time of one `NeutronSimulator::estimate` call, seconds.
pub const NEUTRON_ESTIMATE_SECONDS: &str = "core.neutron.estimate_seconds";
/// Neutron-MC throughput of one estimate call, histories/second.
pub const NEUTRON_ITERS_PER_SEC: &str = "core.neutron.iters_per_sec";

/// Wall time per campaign energy bin, seconds.
pub const CAMPAIGN_BIN_SECONDS: &str = "core.campaign.bin_seconds";
/// Campaign energy bins that completed.
pub const CAMPAIGN_BINS_OK: &str = "core.campaign.bins_ok";
/// Campaign energy bins that failed (degraded coverage).
pub const CAMPAIGN_BINS_FAILED: &str = "core.campaign.bins_failed";
