//! Dependency-free observability for the finrad workspace.
//!
//! Every layer of the pipeline — the SPICE Newton solver, the circuit-level
//! characterization, the array-level Monte Carlo, the campaign runtime —
//! reports what it did through this crate: monotonic **counters** (Newton
//! iterations, MC iterations, quarantined samples, recovery-ladder rung
//! attempts) and **histograms** of timings and throughputs (per-combo
//! characterization seconds, per-bin wall time, strike iterations/second).
//!
//! The design is deliberately minimal and zero-cost when unused:
//!
//! * [`Recorder`] is the sink trait. The workspace never assumes a
//!   particular implementation.
//! * Nothing is recorded until a process installs a global recorder with
//!   [`install`]. Before that, every [`counter_add`]/[`record`] call is a
//!   single atomic load and an untaken branch, and [`span`] never reads the
//!   clock — hot Monte-Carlo paths pay nothing in the default
//!   configuration. Instrumented code also batches its reports at chunk or
//!   solve granularity, never per random sample.
//! * [`InMemoryRecorder`] is the batteries-included sink: thread-safe
//!   aggregation into sorted maps, with a [`MetricsSnapshot`] that
//!   serializes itself to JSON for the machine-readable bench trajectory
//!   (`BENCH_*.json`, see `docs/observability.md`).
//!
//! # Examples
//!
//! ```
//! use finrad_observe::{InMemoryRecorder, Recorder};
//!
//! let rec = InMemoryRecorder::default();
//! rec.counter_add("core.strike.iterations", 4096);
//! rec.record("core.strike.chunk_seconds", 0.012);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["core.strike.iterations"], 4096);
//! assert_eq!(snap.histograms["core.strike.chunk_seconds"].count, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod keys;

/// A metrics sink. Implementations must be cheap and thread-safe: the
/// instrumented code calls them from Monte-Carlo worker threads (at chunk
/// granularity, never per sample).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter named `key`.
    fn counter_add(&self, key: &str, delta: u64);

    /// Records one observation of `value` into the histogram named `key`.
    /// Timings are reported in seconds, throughputs in events/second.
    fn record(&self, key: &str, value: f64);
}

/// A recorder that discards everything — the explicit form of the default
/// "not installed" state, useful for tests of instrumented code paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _key: &str, _delta: u64) {}
    fn record(&self, _key: &str, _value: f64) {}
}

static GLOBAL: OnceLock<&'static dyn Recorder> = OnceLock::new();

/// Error returned by [`install`] when a recorder is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlreadyInstalled;

impl fmt::Display for AlreadyInstalled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global metrics recorder is already installed")
    }
}

impl std::error::Error for AlreadyInstalled {}

/// Installs the process-wide recorder. May succeed at most once per
/// process; the recorder is leaked so instrumented code can hold a
/// `'static` reference without synchronization on the hot path.
///
/// # Errors
///
/// [`AlreadyInstalled`] if a recorder was installed earlier (the earlier
/// one stays active).
pub fn install(recorder: Box<dyn Recorder>) -> Result<(), AlreadyInstalled> {
    let leaked: &'static dyn Recorder = Box::leak(recorder);
    install_ref(leaked)
}

/// Installs an already-`'static` recorder (see [`install`]).
///
/// # Errors
///
/// [`AlreadyInstalled`] if a recorder was installed earlier (the earlier
/// one stays active).
pub fn install_ref(recorder: &'static dyn Recorder) -> Result<(), AlreadyInstalled> {
    GLOBAL.set(recorder).map_err(|_| AlreadyInstalled)
}

/// Leaks and installs a fresh [`InMemoryRecorder`], returning the typed
/// handle so callers can still take [`InMemoryRecorder::snapshot`]s — the
/// one-liner for binaries and integration tests that want process-wide
/// metrics collection.
///
/// # Errors
///
/// [`AlreadyInstalled`] if a recorder was installed earlier (the earlier
/// one stays active; the freshly leaked recorder records nothing).
pub fn install_in_memory() -> Result<&'static InMemoryRecorder, AlreadyInstalled> {
    let rec: &'static InMemoryRecorder = Box::leak(Box::new(InMemoryRecorder::new()));
    install_ref(rec)?;
    Ok(rec)
}

/// The installed recorder, if any. Instrumented code should prefer the
/// free functions below, which fold the `None` branch away.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    GLOBAL.get().copied()
}

/// Whether a recorder is installed (one atomic load).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

/// Adds `delta` to counter `key` on the installed recorder, if any.
#[inline]
pub fn counter_add(key: &str, delta: u64) {
    if let Some(r) = recorder() {
        r.counter_add(key, delta);
    }
}

/// Records `value` into histogram `key` on the installed recorder, if any.
#[inline]
pub fn record(key: &str, value: f64) {
    if let Some(r) = recorder() {
        r.record(key, value);
    }
}

/// A scope timer: measures wall time from [`span`] to drop and records it
/// (in seconds) into the histogram named at creation. When no recorder is
/// installed the clock is never read.
#[derive(Debug)]
pub struct Span {
    key: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Seconds elapsed so far, or `None` when disabled.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.start.map(|t| t.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(r)) = (self.start, recorder()) {
            r.record(self.key, start.elapsed().as_secs_f64());
        }
    }
}

/// Starts a [`Span`] recording into histogram `key` when dropped.
#[inline]
pub fn span(key: &'static str) -> Span {
    Span {
        key,
        start: enabled().then(Instant::now),
    }
}

/// Streaming summary of one histogram: count, sum, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSummary {
    fn new(value: f64) -> Self {
        Self {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

/// Thread-safe aggregating recorder: counters sum, histograms keep a
/// streaming [`HistogramSummary`]. Keys are reported sorted.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    inner: Mutex<Inner>,
}

impl InMemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking worker thread must not disable metrics for the rest
        // of the run; the aggregates stay internally consistent because
        // each update is a single guarded mutation. `finrad-observe` sits
        // below `finrad-spice` in the crate graph, so it cannot call the
        // workspace-sanctioned `finrad_spice::sync::lock_recovering` and
        // keeps the recovery idiom inline.
        // finrad-lint: allow(lock-order-audit)
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn counter_add(&self, key: &str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(key.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn record(&self, key: &str, value: f64) {
        if !value.is_finite() {
            return; // quarantine poisoned observations at the sink boundary
        }
        let mut inner = self.lock();
        match inner.histograms.entry(key.to_owned()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(HistogramSummary::new(value));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().push(value),
        }
    }
}

/// A point-in-time copy of an [`InMemoryRecorder`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, sorted by key.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The counter's total, or 0 when never touched.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The histogram's summary, if any observation was recorded.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms.get(key)
    }

    /// Serializes the snapshot as a compact JSON object:
    /// `{"counters": {..}, "histograms": {"k": {"count":..,"sum":..,"min":..,"max":..}, ..}}`.
    /// Non-finite aggregate values (impossible through [`Recorder::record`],
    /// which rejects them) would serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count,
                json_number(h.sum),
                json_number(h.min),
                json_number(h.max)
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}"); // Debug format round-trips f64 exactly
        s
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn counters_sum_and_saturate() {
        let rec = InMemoryRecorder::new();
        rec.counter_add("a", 2);
        rec.counter_add("a", 3);
        rec.counter_add("b", u64::MAX);
        rec.counter_add("b", 10); // saturates instead of wrapping
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), u64::MAX);
        assert_eq!(snap.counter("never-touched"), 0);
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let rec = InMemoryRecorder::new();
        for v in [2.0, 0.5, 8.0] {
            rec.record("h", v);
        }
        rec.record("h", f64::NAN); // rejected at the sink boundary
        rec.record("h", f64::INFINITY);
        let snap = rec.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - 10.5).abs() < 1e-12);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 8.0);
        assert!((h.mean() - 3.5).abs() < 1e-12);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn snapshot_is_a_copy() {
        let rec = InMemoryRecorder::new();
        rec.counter_add("a", 1);
        let before = rec.snapshot();
        rec.counter_add("a", 1);
        assert_eq!(before.counter("a"), 1);
        assert_eq!(rec.snapshot().counter("a"), 2);
    }

    #[test]
    fn json_snapshot_shape() {
        let rec = InMemoryRecorder::new();
        rec.counter_add("x.count", 7);
        rec.record("x.seconds", 1.5);
        let json = rec.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x.count\":7"));
        assert!(json.contains("\"x.seconds\":{\"count\":1,\"sum\":1.5,\"min\":1.5,\"max\":1.5}"));
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(2.5), "2.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn noop_recorder_discards() {
        let rec = NoopRecorder;
        rec.counter_add("a", 1);
        rec.record("b", 1.0);
    }

    #[test]
    fn span_without_recorder_never_reads_clock() {
        // Before installation the span must be inert: no start time at all.
        // (This test must run before `install` succeeds anywhere in this
        // process; the install test below uses a child-free ordering trick
        // by asserting on a fresh span only when still disabled.)
        if !enabled() {
            let s = span("test.span");
            assert!(s.elapsed_seconds().is_none());
        }
    }

    /// Routes through the free functions after installing; counts with a
    /// custom recorder to prove trait-object dispatch.
    #[test]
    fn install_routes_free_functions() {
        struct Counting(AtomicU64);
        impl Recorder for Counting {
            fn counter_add(&self, _key: &str, delta: u64) {
                self.0.fetch_add(delta, Ordering::Relaxed);
            }
            fn record(&self, _key: &str, _value: f64) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Another test (or an earlier install) may have won the race; both
        // outcomes keep the invariants we assert.
        let installed = install(Box::new(Counting(AtomicU64::new(0)))).is_ok();
        assert!(enabled());
        counter_add("k", 5);
        record("h", 1.0);
        drop(span("s")); // records one observation when installed
        if installed {
            assert!(install(Box::new(NoopRecorder)).is_err());
        }
    }
}
