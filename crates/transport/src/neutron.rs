//! Neutron–silicon nuclear interactions and secondary-ion production.
//!
//! **Extension beyond the paper** (its declared future work): neutrons are
//! uncharged and deposit no charge directly; they act through "indirect
//! ionization" — a nuclear reaction in (or near) the device produces a
//! charged secondary (a Si/Mg/Al recoil or an (n,α)/(n,p) product) whose
//! dense track then deposits charge exactly like the direct-ionizing
//! particles of the main flow.
//!
//! The model here is deliberately simple but captures the three knobs that
//! matter for SER: the *rate* of reactions (macroscopic cross-section
//! Σ(E) = N_Si·σ(E)), the *energy* of the secondary (an exponential
//! spectrum whose mean grows with neutron energy), and its *stopping power*
//! (log-uniform over the heavy-recoil LET band, far above alpha LET —
//! which is why a single reaction can upset several cells).

use finrad_numerics::interp::LogLogTable;
use finrad_numerics::rng::Rng;
use finrad_units::{Energy, Length, StoppingPower};

/// Number density of silicon atoms, 1/cm³.
const N_SI_PER_CM3: f64 = 4.99e22;

/// A charged secondary produced by a neutron reaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondaryIon {
    /// Kinetic energy of the secondary.
    pub energy: Energy,
    /// Its (assumed constant-over-track) linear stopping power.
    pub let_linear: StoppingPower,
}

impl SecondaryIon {
    /// Track length until the ion has spent its energy.
    pub fn range(&self) -> Length {
        self.energy / self.let_linear
    }
}

/// Neutron reaction model for silicon.
///
/// # Examples
///
/// ```
/// use finrad_transport::neutron::NeutronInteraction;
/// use finrad_units::{Energy, Length};
///
/// let model = NeutronInteraction::silicon();
/// let p = model.interaction_probability(Energy::from_mev(100.0), Length::from_um(1.0));
/// assert!(p > 0.0 && p < 1.0e-3); // reactions are rare per micron
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NeutronInteraction {
    /// Reaction (upset-relevant) cross-section vs energy, barns.
    sigma_barn: LogLogTable,
    /// Mean secondary energy offset, MeV.
    secondary_mean_base_mev: f64,
    /// Mean secondary energy slope vs neutron energy.
    secondary_mean_fraction: f64,
    /// Cap on the mean secondary energy, MeV.
    secondary_mean_cap_mev: f64,
    /// LET sampling band of the secondaries, MeV·cm²/mg.
    let_band_mev_cm2_mg: (f64, f64),
}

impl NeutronInteraction {
    /// The silicon reaction model: cross-section rising from the ~2 MeV
    /// region to the ≈ 0.5 barn inelastic plateau above 50 MeV; secondary
    /// energies of a few MeV; heavy-recoil LETs of 0.5–8 MeV·cm²/mg
    /// (≈ 0.12–1.9 MeV/µm in silicon).
    pub fn silicon() -> Self {
        Self {
            sigma_barn: LogLogTable::from_static(
                vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 300.0, 1.0e3],
                vec![0.02, 0.05, 0.15, 0.30, 0.45, 0.50, 0.46, 0.45, 0.45],
            ),
            secondary_mean_base_mev: 1.0,
            secondary_mean_fraction: 0.05,
            secondary_mean_cap_mev: 10.0,
            let_band_mev_cm2_mg: (0.5, 8.0),
        }
    }

    /// Macroscopic cross-section Σ(E), 1/m.
    pub fn macroscopic_cross_section_per_m(&self, energy: Energy) -> f64 {
        let e = energy.mev().clamp(1.0, 1.0e3);
        let sigma_cm2 = self.sigma_barn.eval(e) * 1.0e-24;
        N_SI_PER_CM3 * sigma_cm2 * 1.0e2 // 1/cm -> 1/m
    }

    /// Mean free path between reactions.
    pub fn mean_free_path(&self, energy: Energy) -> Length {
        Length::from_meters(1.0 / self.macroscopic_cross_section_per_m(energy))
    }

    /// Probability of at least one reaction along `path` of silicon:
    /// `1 − exp(−Σ·L)`.
    pub fn interaction_probability(&self, energy: Energy, path: Length) -> f64 {
        let x = self.macroscopic_cross_section_per_m(energy) * path.meters();
        -(-x).exp_m1()
    }

    /// Samples the charged secondary of one reaction at neutron energy
    /// `energy`.
    pub fn sample_secondary<R: Rng + ?Sized>(&self, energy: Energy, rng: &mut R) -> SecondaryIon {
        let mean_mev = (self.secondary_mean_base_mev + self.secondary_mean_fraction * energy.mev())
            .min(self.secondary_mean_cap_mev);
        // Exponential secondary-energy spectrum, capped at half the
        // neutron energy (kinematics).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0f64);
        let e_mev = (-u.ln() * mean_mev).min(0.5 * energy.mev()).max(1.0e-3);
        // Log-uniform LET over the heavy-recoil band.
        let (lo, hi) = self.let_band_mev_cm2_mg;
        let v: f64 = rng.gen_range(0.0f64..1.0);
        let let_mass = lo * (hi / lo).powf(v); // MeV·cm²/mg
        let let_linear = StoppingPower::from_mass_stopping(
            let_mass * 1.0e3, // MeV·cm²/g
            finrad_units::constants::SILICON_DENSITY_G_CM3,
        );
        SecondaryIon {
            energy: Energy::from_mev(e_mev),
            let_linear,
        }
    }
}

impl Default for NeutronInteraction {
    fn default() -> Self {
        Self::silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    #[test]
    fn mean_free_path_is_centimetres() {
        let m = NeutronInteraction::silicon();
        let mfp = m.mean_free_path(Energy::from_mev(100.0));
        let cm = mfp.centimeters();
        assert!((10.0..100.0).contains(&cm), "mfp {cm} cm");
    }

    #[test]
    fn probability_linear_for_thin_paths() {
        let m = NeutronInteraction::silicon();
        let e = Energy::from_mev(50.0);
        let p1 = m.interaction_probability(e, Length::from_um(1.0));
        let p2 = m.interaction_probability(e, Length::from_um(2.0));
        assert!((p2 / p1 - 2.0).abs() < 1e-5);
        assert!(p1 < 1e-4);
        assert!(p1 > 0.0);
    }

    #[test]
    fn cross_section_rises_then_plateaus() {
        let m = NeutronInteraction::silicon();
        let s2 = m.macroscopic_cross_section_per_m(Energy::from_mev(2.0));
        let s50 = m.macroscopic_cross_section_per_m(Energy::from_mev(50.0));
        let s500 = m.macroscopic_cross_section_per_m(Energy::from_mev(500.0));
        assert!(s50 > 3.0 * s2);
        assert!((s500 / s50 - 1.0).abs() < 0.3);
    }

    #[test]
    fn secondary_statistics() {
        let m = NeutronInteraction::silicon();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let e_n = Energy::from_mev(100.0);
        let n = 20_000;
        let mut sum_e = 0.0;
        for _ in 0..n {
            let s = m.sample_secondary(e_n, &mut rng);
            assert!(s.energy.mev() > 0.0);
            assert!(s.energy.mev() <= 50.0 + 1e-9);
            let let_um = s.let_linear.kev_per_um();
            assert!(
                (100.0..2000.0).contains(&let_um),
                "secondary LET {let_um} keV/um"
            );
            sum_e += s.energy.mev();
        }
        let mean = sum_e / n as f64;
        // mean ≈ base + 0.05·100 = 6 MeV (minus the cap's truncation).
        assert!((3.0..8.0).contains(&mean), "mean secondary energy {mean}");
    }

    #[test]
    fn secondary_range_is_microns() {
        let m = NeutronInteraction::silicon();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let s = m.sample_secondary(Energy::from_mev(100.0), &mut rng);
        let r = s.range().micrometers();
        assert!((0.001..1000.0).contains(&r), "range {r} um");
    }

    #[test]
    fn heavy_secondaries_outstop_alphas() {
        // The point of indirect ionization: secondary LET far exceeds the
        // alpha LET at the same energy.
        use crate::stopping::StoppingModel;
        let m = NeutronInteraction::silicon();
        let alpha_let = StoppingModel::silicon()
            .stopping(finrad_units::Particle::Alpha, Energy::from_mev(2.0))
            .kev_per_um();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut above = 0;
        let n = 1000;
        for _ in 0..n {
            let s = m.sample_secondary(Energy::from_mev(50.0), &mut rng);
            if s.let_linear.kev_per_um() > alpha_let {
                above += 1;
            }
        }
        assert!(
            above > n / 2,
            "only {above}/{n} secondaries above alpha LET"
        );
    }
}
