//! The device-level look-up table of the paper's flow.
//!
//! "A Monte Carlo simulation of the interaction of the particle and the 3-D
//! material structure needs to be performed to obtain the number of
//! generated electron-hole pairs for different particle energies and the
//! results are stored in look-up tables" (Section 2). [`EhpLut`] is that
//! table: per species, mean pairs per fin traversal indexed by energy,
//! reproducing the paper's Fig. 4. It is built once (the expensive step)
//! and serialized with `serde` so downstream runs can reuse it.

use crate::fin::FinTraversal;
use finrad_numerics::interp::{log_space, LinearTable};
use finrad_numerics::rng::Rng;
use finrad_numerics::stats::RunningStats;
use finrad_numerics::NumericsError;
use finrad_units::{Energy, Particle};

/// One row of the LUT: traversal statistics at a single energy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LutRow {
    /// Particle energy of the row.
    pub energy_mev: f64,
    /// Mean electron–hole pairs per traversal.
    pub mean_pairs: f64,
    /// Standard deviation of the pair count across traversals.
    pub stddev_pairs: f64,
    /// Number of Monte-Carlo traversals behind the row.
    pub samples: u64,
}

/// Energy-indexed electron–hole pair LUT for one particle species.
///
/// # Examples
///
/// ```
/// use finrad_transport::{fin::FinTraversal, lut::EhpLut};
/// use finrad_units::{Energy, Particle};
/// use finrad_numerics::rng::Xoshiro256pp;
///
/// let mut rng = Xoshiro256pp::seed_from_u64(9);
/// let lut = EhpLut::build(
///     &FinTraversal::paper_default(),
///     Particle::Alpha,
///     Energy::from_mev(0.5),
///     Energy::from_mev(20.0),
///     6,    // energy points
///     500,  // traversals per point
///     &mut rng,
/// );
/// assert!(lut.mean_pairs(Energy::from_mev(1.0)) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EhpLut {
    particle: Particle,
    rows: Vec<LutRow>,
    table: LinearTable,
}

impl EhpLut {
    /// Builds the LUT by running `samples_per_point` fin traversals at each
    /// of `energy_points` log-spaced energies in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the energy range is invalid, `energy_points < 2`, or
    /// `samples_per_point == 0`.
    pub fn build<R: Rng + ?Sized>(
        sim: &FinTraversal,
        particle: Particle,
        lo: Energy,
        hi: Energy,
        energy_points: usize,
        samples_per_point: u64,
        rng: &mut R,
    ) -> Self {
        assert!(samples_per_point > 0, "need at least one sample per point");
        let energies = log_space(lo.mev(), hi.mev(), energy_points);
        let rows: Vec<LutRow> = energies
            .iter()
            .map(|&e_mev| {
                let mut stats = RunningStats::new();
                for _ in 0..samples_per_point {
                    let o = sim.simulate(particle, Energy::from_mev(e_mev), rng);
                    stats.push(o.pairs as f64);
                }
                LutRow {
                    energy_mev: e_mev,
                    mean_pairs: stats.mean(),
                    stddev_pairs: stats.stddev(),
                    samples: stats.count(),
                }
            })
            .collect();
        match Self::from_rows(particle, rows) {
            Ok(lut) => lut,
            // log_space yields ≥ 2 strictly increasing finite energies and
            // the means are clamped non-negative, so the table is valid by
            // construction.
            Err(e) => unreachable!("freshly built LUT rows are well-formed: {e}"),
        }
    }

    /// Assembles a LUT from precomputed rows (e.g. deserialized from disk).
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidTable`] if fewer than two rows are given,
    /// any entry is non-finite, or the energies are not strictly
    /// increasing — exactly the failure modes of untrusted on-disk data.
    pub fn from_rows(particle: Particle, rows: Vec<LutRow>) -> Result<Self, NumericsError> {
        let xs: Vec<f64> = rows.iter().map(|r| r.energy_mev).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_pairs.max(0.0)).collect();
        let table = LinearTable::new(xs, ys)?;
        Ok(Self {
            particle,
            rows,
            table,
        })
    }

    /// The particle species this LUT describes.
    pub fn particle(&self) -> Particle {
        self.particle
    }

    /// Interpolated mean pair count at `energy` (clamped at the ends).
    pub fn mean_pairs(&self, energy: Energy) -> f64 {
        self.table.eval(energy.mev())
    }

    /// Borrowed view of the underlying rows (for plotting / benchmarking).
    pub fn rows(&self) -> &[LutRow] {
        &self.rows
    }

    /// Maximum mean pair count over the table — the normalization constant
    /// used when reporting the paper's normalized Fig. 4.
    pub fn peak_mean_pairs(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.mean_pairs)
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    fn small_lut(particle: Particle, seed: u64) -> EhpLut {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        EhpLut::build(
            &FinTraversal::paper_default(),
            particle,
            Energy::from_mev(0.1),
            Energy::from_mev(100.0),
            8,
            2000,
            &mut rng,
        )
    }

    #[test]
    fn rows_cover_requested_grid() {
        let lut = small_lut(Particle::Alpha, 1);
        assert_eq!(lut.rows().len(), 8);
        assert!((lut.rows()[0].energy_mev - 0.1).abs() < 1e-9);
        assert!((lut.rows()[7].energy_mev - 100.0).abs() < 1e-6);
        assert!(lut.rows().iter().all(|r| r.samples == 2000));
    }

    #[test]
    fn fig4_shape_alpha_above_proton_and_decreasing() {
        let alpha = small_lut(Particle::Alpha, 2);
        let proton = small_lut(Particle::Proton, 3);
        // Alpha curve is well above the proton curve everywhere (Fig. 4);
        // the margin narrows near the alpha Bragg peak (~0.5 MeV).
        for (e, factor) in [(0.5, 1.2), (1.0, 2.0), (5.0, 2.0), (20.0, 2.0)] {
            let ea = alpha.mean_pairs(Energy::from_mev(e));
            let ep = proton.mean_pairs(Energy::from_mev(e));
            assert!(ea > factor * ep, "at {e} MeV: alpha {ea} vs proton {ep}");
        }
        // Both decrease from a few MeV to 100 MeV.
        for lut in [&alpha, &proton] {
            let mid = lut.mean_pairs(Energy::from_mev(3.0));
            let hi = lut.mean_pairs(Energy::from_mev(100.0));
            assert!(mid > hi, "{}: {mid} vs {hi}", lut.particle());
        }
    }

    #[test]
    fn interpolation_between_rows() {
        let lut = small_lut(Particle::Alpha, 4);
        let rows = lut.rows();
        let (a, b) = (rows[3], rows[4]);
        let mid_e = (a.energy_mev * b.energy_mev).sqrt();
        let v = lut.mean_pairs(Energy::from_mev(mid_e));
        let (lo, hi) = (
            a.mean_pairs.min(b.mean_pairs),
            a.mean_pairs.max(b.mean_pairs),
        );
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn peak_is_max_of_rows() {
        let lut = small_lut(Particle::Alpha, 6);
        let max_row = lut
            .rows()
            .iter()
            .map(|r| r.mean_pairs)
            .fold(0.0f64, f64::max);
        assert_eq!(lut.peak_mean_pairs(), max_row);
    }

    #[test]
    fn from_rows_rejects_unsorted() {
        let rows = vec![
            LutRow {
                energy_mev: 2.0,
                mean_pairs: 10.0,
                stddev_pairs: 1.0,
                samples: 10,
            },
            LutRow {
                energy_mev: 1.0,
                mean_pairs: 20.0,
                stddev_pairs: 1.0,
                samples: 10,
            },
        ];
        assert!(matches!(
            EhpLut::from_rows(Particle::Alpha, rows),
            Err(NumericsError::InvalidTable(_))
        ));
    }
}
