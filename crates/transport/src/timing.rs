//! The paper's Eqs. 1–3: passage time, transit time and the current pulse.
//!
//! * **Eq. 1** — particle passage time `τ_p = w_Fin / v_p`: how long the
//!   particle spends crossing the fin (< 1 fs for alphas, ~10× less for
//!   protons at equal energy because they are ~4× lighter ⇒ 2× faster,
//!   and typically carry higher velocities at the relevant energies).
//! * **Eq. 2** — carrier transit time `τ = L²_Fin / (µₑ·V_ds)`: the drift
//!   collection timescale. With confined-fin mobility this exceeds 10 fs
//!   at V_ds = 1 V, so τ ≫ τ_p and all pairs can be treated as generated
//!   instantaneously and collected by drift — the paper's justification
//!   for the rectangular pulse model.
//! * **Eq. 3** — pulse amplitude `I = Q/τ = nₑ·e/τ` over width τ.

use finrad_units::{Charge, Current, Energy, Length, Particle, Time, Voltage};

/// Effective electron mobility in a confined 14 nm fin, cm²/(V·s).
///
/// Bulk silicon mobility (~1417) is strongly degraded by confinement and
/// surface scattering in a fin; 300 cm²/Vs places the transit time above
/// 10 fs at V_ds = 1 V, matching the paper's Section 3.3 statement.
pub const FIN_ELECTRON_MOBILITY_CM2_PER_VS: f64 = 300.0;

/// Eq. 1: time for the particle to pass through a fin of width `w_fin`.
///
/// # Examples
///
/// ```
/// use finrad_transport::timing::passage_time;
/// use finrad_units::{Energy, Length, Particle};
///
/// let tp = passage_time(Particle::Alpha, Energy::from_mev(5.0), Length::from_nm(8.0));
/// assert!(tp.femtoseconds() < 1.0); // paper: τp < 1 fs for alphas
/// ```
pub fn passage_time(particle: Particle, energy: Energy, w_fin: Length) -> Time {
    let v = particle.speed_m_per_s(energy);
    Time::from_seconds(w_fin.meters() / v)
}

/// Eq. 2: average electron drift transit time between source and drain.
///
/// # Panics
///
/// Panics if `vds` is not strictly positive.
pub fn transit_time(l_fin: Length, vds: Voltage) -> Time {
    assert!(vds.volts() > 0.0, "transit time requires positive Vds");
    let mu_m2 = FIN_ELECTRON_MOBILITY_CM2_PER_VS * 1.0e-4; // cm²/Vs → m²/Vs
    let l = l_fin.meters();
    Time::from_seconds(l * l / (mu_m2 * vds.volts()))
}

/// A rectangular parasitic current pulse (the paper's Fig. 3(b)):
/// amplitude `I = Q/τ` over width `τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CurrentPulse {
    /// Pulse amplitude.
    pub amplitude: Current,
    /// Pulse width (the carrier transit time τ).
    pub width: Time,
}

impl CurrentPulse {
    /// Eq. 3: builds the pulse carrying `charge` over `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn from_charge(charge: Charge, width: Time) -> Self {
        assert!(width.seconds() > 0.0, "pulse width must be positive");
        Self {
            amplitude: charge / width,
            width,
        }
    }

    /// Total charge under the pulse (the quantity POF actually depends on,
    /// per the paper's Section 4 pulse-shape study).
    pub fn charge(&self) -> Charge {
        self.amplitude * self.width
    }
}

/// Convenience: the pulse induced by `pairs` electron–hole pairs collected
/// over the transit time of a fin of gated length `l_fin` at drain bias
/// `vds`.
pub fn pulse_from_pairs(pairs: u64, l_fin: Length, vds: Voltage) -> CurrentPulse {
    let tau = transit_time(l_fin, vds);
    CurrentPulse::from_charge(Charge::from_electrons(pairs as f64), tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_tau_exceeds_10fs_at_1v() {
        let tau = transit_time(Length::from_nm(20.0), Voltage::from_volts(1.0));
        assert!(tau.femtoseconds() > 10.0, "tau {} fs", tau.femtoseconds());
    }

    #[test]
    fn paper_claim_alpha_passage_below_1fs() {
        // At the alpha energies of interest (≳ 2 MeV), τp < 1 fs.
        for e in [2.0, 5.0, 10.0] {
            let tp = passage_time(Particle::Alpha, Energy::from_mev(e), Length::from_nm(8.0));
            assert!(
                tp.femtoseconds() < 1.0,
                "tp {} fs at {e} MeV",
                tp.femtoseconds()
            );
        }
    }

    #[test]
    fn paper_claim_proton_passage_much_shorter() {
        // "For proton, τp is approximately 10 times smaller than that of
        // alpha-particle" — the paper compares the particles at the energies
        // where each matters (protons are faster at equal energy, and the
        // relevant proton energies are higher). At equal energy the ratio is
        // √(m_α/m_p) ≈ 2; at 10× the energy it approaches the paper's 10×.
        let w = Length::from_nm(8.0);
        let tp_alpha = passage_time(Particle::Alpha, Energy::from_mev(1.0), w);
        let tp_proton = passage_time(Particle::Proton, Energy::from_mev(10.0), w);
        let ratio = tp_alpha.femtoseconds() / tp_proton.femtoseconds();
        assert!(ratio > 5.0, "ratio {ratio}");
    }

    #[test]
    fn tau_much_greater_than_tau_p() {
        // The separation that justifies instantaneous generation (§3.3).
        let tau = transit_time(Length::from_nm(20.0), Voltage::from_volts(0.7));
        let tp = passage_time(Particle::Alpha, Energy::from_mev(2.0), Length::from_nm(8.0));
        assert!(tau.seconds() > 10.0 * tp.seconds());
    }

    #[test]
    fn transit_time_scales() {
        // τ ∝ L² and ∝ 1/Vdd.
        let t1 = transit_time(Length::from_nm(20.0), Voltage::from_volts(1.0));
        let t2 = transit_time(Length::from_nm(40.0), Voltage::from_volts(1.0));
        assert!(((t2 / t1).value() - 4.0).abs() < 1e-9);
        let t3 = transit_time(Length::from_nm(20.0), Voltage::from_volts(0.5));
        assert!(((t3 / t1).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pulse_charge_round_trip() {
        let q = Charge::from_electrons(1000.0);
        let p = CurrentPulse::from_charge(q, Time::from_fs(15.0));
        assert!((p.charge().electrons() - 1000.0).abs() < 1e-6);
        assert!(p.amplitude.microamperes() > 0.0);
    }

    #[test]
    fn pulse_from_pairs_amplitude_order_of_magnitude() {
        // 1000 pairs (0.16 fC) compressed into the ~13 fs transit time is a
        // ~12 mA rectangle. The amplitude looks large only because the
        // paper's model concentrates all charge into τ; POF depends on the
        // charge, not the amplitude (paper §4 pulse-shape study).
        let p = pulse_from_pairs(1000, Length::from_nm(20.0), Voltage::from_volts(1.0));
        let ma = p.amplitude.amperes() * 1.0e3;
        assert!((1.0..100.0).contains(&ma), "amplitude {ma} mA");
        assert!((p.charge().femtocoulombs() - 0.1602).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive Vds")]
    fn transit_rejects_zero_vds() {
        let _ = transit_time(Length::from_nm(20.0), Voltage::ZERO);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn pulse_rejects_zero_width() {
        let _ = CurrentPulse::from_charge(Charge::from_electrons(1.0), Time::ZERO);
    }
}
