//! The 3-D fin target and the single-fin traversal Monte Carlo.
//!
//! The paper's device level (Section 3.2) fires 10 million particles with
//! random directions and positions at the 3-D structure of a single fin and
//! records the number of electron–hole pairs generated. [`FinGeometry`]
//! describes the target (a silicon box sitting on a buried oxide, per the
//! paper's Fig. 3(a)); [`FinTraversal`] reproduces the Monte-Carlo.

use crate::ehp;
use crate::stopping::StoppingModel;
use crate::straggling::{sample_energy_loss, StragglingModel};
use finrad_geometry::{sampling, Aabb, Ray, Vec3};
use finrad_numerics::rng::Rng;
use finrad_units::{Energy, Length, Particle};

/// Dimensions of a single fin (the sensitive silicon volume between source
/// and drain; the BOX below it blocks diffusion-collected charge, which is
/// why SOI FinFETs only collect drift charge from the fin itself).
///
/// Default values follow the 14 nm SOI FinFET device of Wang et al. that
/// the paper cites: fin width 8 nm, gate length 20 nm, fin height 30 nm.
///
/// # Examples
///
/// ```
/// use finrad_transport::fin::FinGeometry;
///
/// let fin = FinGeometry::paper_14nm();
/// assert!((fin.width.nanometers() - 8.0).abs() < 1e-9);
/// let b = fin.to_aabb();
/// assert!(b.volume() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FinGeometry {
    /// Fin width (x): the thin dimension the paper's Eq. 1 calls `w_Fin`.
    pub width: Length,
    /// Gated fin length (y): source-to-drain distance, Eq. 2's `L_Fin`.
    pub length: Length,
    /// Fin height (z) above the buried oxide.
    pub height: Length,
}

impl FinGeometry {
    /// The 14 nm-class SOI fin used throughout the paper's evaluation.
    pub fn paper_14nm() -> Self {
        Self {
            width: Length::from_nm(8.0),
            length: Length::from_nm(20.0),
            height: Length::from_nm(30.0),
        }
    }

    /// Builds a geometry from nanometre dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive.
    pub fn from_nm(width: f64, length: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && length > 0.0 && height > 0.0,
            "fin dimensions must be positive"
        );
        Self {
            width: Length::from_nm(width),
            length: Length::from_nm(length),
            height: Length::from_nm(height),
        }
    }

    /// The fin as an axis-aligned box with its minimum corner at the origin
    /// (x = width, y = length, z = height).
    pub fn to_aabb(&self) -> Aabb {
        Aabb::from_min_size(
            Vec3::ZERO,
            Vec3::new(
                self.width.meters(),
                self.length.meters(),
                self.height.meters(),
            ),
        )
    }

    /// Mean chord length of the fin box under isotropic illumination
    /// (Cauchy's formula: 4V/S).
    pub fn mean_chord(&self) -> Length {
        let (w, l, h) = (
            self.width.meters(),
            self.length.meters(),
            self.height.meters(),
        );
        let volume = w * l * h;
        let surface = 2.0 * (w * l + w * h + l * h);
        Length::from_meters(4.0 * volume / surface)
    }
}

impl Default for FinGeometry {
    fn default() -> Self {
        Self::paper_14nm()
    }
}

/// Outcome of one simulated fin traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalOutcome {
    /// Chord length the particle cut through the fin.
    pub chord: Length,
    /// Energy deposited in the fin.
    pub deposited: Energy,
    /// Electron–hole pairs generated.
    pub pairs: u64,
}

/// Single-fin traversal Monte Carlo: the Geant4-substitute kernel.
#[derive(Debug, Clone)]
pub struct FinTraversal {
    geometry: FinGeometry,
    stopping: StoppingModel,
    straggling: StragglingModel,
}

impl FinTraversal {
    /// Creates a traversal simulator.
    pub fn new(
        geometry: FinGeometry,
        stopping: StoppingModel,
        straggling: StragglingModel,
    ) -> Self {
        Self {
            geometry,
            stopping,
            straggling,
        }
    }

    /// The paper-default simulator: 14 nm fin, silicon stopping model,
    /// automatic straggling-regime selection.
    pub fn paper_default() -> Self {
        Self::new(
            FinGeometry::paper_14nm(),
            StoppingModel::silicon(),
            StragglingModel::Auto,
        )
    }

    /// The fin geometry being traversed.
    pub fn geometry(&self) -> FinGeometry {
        self.geometry
    }

    /// The underlying stopping model.
    pub fn stopping(&self) -> &StoppingModel {
        &self.stopping
    }

    /// Simulates one particle of energy `energy` with a random position and
    /// direction *through* the fin (rejection-free: the ray is anchored at a
    /// uniform point inside the fin with an isotropic direction, which
    /// samples the chord distribution of an isotropic flux).
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        rng: &mut R,
    ) -> TraversalOutcome {
        let fin_box = self.geometry.to_aabb();
        let anchor = sampling::point_in_box(rng, &fin_box);
        let dir = sampling::isotropic_direction(rng);
        // Walk backwards to the entry point so the full chord is covered.
        let back_ray = Ray::new(anchor, -dir);
        let t_back = fin_box
            .intersect(&back_ray)
            .map(|h| h.t_exit)
            .unwrap_or(0.0);
        let entry = back_ray.at(t_back * (1.0 - 1e-12));
        let ray = Ray::new(entry, dir);
        let chord = fin_box
            .intersect(&ray)
            .map(|h| Length::from_meters(h.chord_length()))
            .unwrap_or(Length::ZERO);
        self.deposit(particle, energy, chord, rng)
    }

    /// Deposits energy over a known `chord` (used by the array-level MC,
    /// which computes chords from the real layout geometry).
    pub fn deposit<R: Rng + ?Sized>(
        &self,
        particle: Particle,
        energy: Energy,
        chord: Length,
        rng: &mut R,
    ) -> TraversalOutcome {
        debug_assert!(
            energy.ev().is_finite() && energy.ev() >= 0.0,
            "incident energy must be finite and non-negative, got {} eV",
            energy.ev()
        );
        debug_assert!(
            chord.meters().is_finite() && chord.meters() >= 0.0,
            "chord length must be finite and non-negative, got {} m",
            chord.meters()
        );
        let deposited = sample_energy_loss(
            &self.stopping,
            self.straggling,
            particle,
            energy,
            chord,
            rng,
        );
        debug_assert!(
            deposited.ev() >= 0.0 && deposited.ev() <= energy.ev(),
            "deposited energy {} eV outside [0, incident {} eV]",
            deposited.ev(),
            energy.ev()
        );
        let pairs = ehp::sample_pairs(deposited, rng);
        TraversalOutcome {
            chord,
            deposited,
            pairs,
        }
    }
}

impl Default for FinTraversal {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    #[test]
    fn geometry_accessors() {
        let g = FinGeometry::from_nm(8.0, 20.0, 30.0);
        assert_eq!(g, FinGeometry::paper_14nm());
        let b = g.to_aabb();
        assert!((b.size().x - 8.0e-9).abs() < 1e-18);
        assert!((b.size().y - 20.0e-9).abs() < 1e-18);
        assert!((b.size().z - 30.0e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_degenerate_geometry() {
        let _ = FinGeometry::from_nm(0.0, 20.0, 30.0);
    }

    #[test]
    fn mean_chord_cauchy_bounds() {
        let g = FinGeometry::paper_14nm();
        let mc = g.mean_chord().nanometers();
        // Must be between the smallest dimension/2 and the diagonal.
        assert!(mc > 4.0 && mc < 38.0, "mean chord {mc} nm");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "incident energy must be finite and non-negative")]
    fn deposit_rejects_negative_incident_energy() {
        let sim = FinTraversal::paper_default();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let _ = sim.deposit(
            Particle::Alpha,
            Energy::from_mev(-1.0),
            Length::from_nm(10.0),
            &mut rng,
        );
    }

    #[test]
    fn traversal_produces_positive_chords() {
        let sim = FinTraversal::paper_default();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..500 {
            let o = sim.simulate(Particle::Alpha, Energy::from_mev(2.0), &mut rng);
            assert!(o.chord.nanometers() > 0.0);
            assert!(o.chord.nanometers() < 40.0); // bounded by the diagonal
            assert!(o.deposited.ev() >= 0.0);
        }
    }

    #[test]
    fn sampled_mean_chord_matches_cauchy() {
        let sim = FinTraversal::paper_default();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 30_000;
        let mean_nm: f64 = (0..n)
            .map(|_| {
                sim.simulate(Particle::Alpha, Energy::from_mev(5.0), &mut rng)
                    .chord
                    .nanometers()
            })
            .sum::<f64>()
            / n as f64;
        let cauchy = sim.geometry().mean_chord().nanometers();
        // Interior-point anchoring length-biases the chord distribution
        // relative to a uniform external flux, so allow a generous band
        // around the Cauchy value.
        assert!(
            (mean_nm - cauchy).abs() / cauchy < 0.65,
            "sampled {mean_nm} vs cauchy {cauchy}"
        );
    }

    #[test]
    fn alpha_generates_more_pairs_than_proton() {
        let sim = FinTraversal::paper_default();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 10_000;
        let mean_pairs = |p: Particle, rng: &mut Xoshiro256pp| -> f64 {
            (0..n)
                .map(|_| sim.simulate(p, Energy::from_mev(2.0), rng).pairs as f64)
                .sum::<f64>()
                / n as f64
        };
        let alpha = mean_pairs(Particle::Alpha, &mut rng);
        let proton = mean_pairs(Particle::Proton, &mut rng);
        assert!(
            alpha > 3.0 * proton,
            "alpha {alpha} pairs vs proton {proton}"
        );
    }

    #[test]
    fn pairs_fall_with_energy_above_peak() {
        // The Fig. 4 trend over the plotted 0.1-100 MeV band.
        let sim = FinTraversal::paper_default();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 10_000;
        let mean = |e_mev: f64, rng: &mut Xoshiro256pp| -> f64 {
            (0..n)
                .map(|_| {
                    sim.simulate(Particle::Alpha, Energy::from_mev(e_mev), rng)
                        .pairs as f64
                })
                .sum::<f64>()
                / n as f64
        };
        let at_2 = mean(2.0, &mut rng);
        let at_50 = mean(50.0, &mut rng);
        assert!(at_2 > 1.5 * at_50, "{at_2} vs {at_50}");
    }

    #[test]
    fn deposit_with_explicit_chord_deterministic_chord() {
        let sim = FinTraversal::new(
            FinGeometry::paper_14nm(),
            StoppingModel::silicon(),
            StragglingModel::None,
        );
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let o = sim.deposit(
            Particle::Proton,
            Energy::from_mev(1.0),
            Length::from_nm(10.0),
            &mut rng,
        );
        assert_eq!(o.chord, Length::from_nm(10.0));
        // 1 MeV proton, ~39 keV/um * 10nm = ~390 eV => ~100 pairs.
        assert!(o.pairs > 20 && o.pairs < 500, "pairs {}", o.pairs);
    }
}
