//! Electronic stopping power of silicon for protons and alpha particles.
//!
//! Direct ionization — the mechanism the paper scopes to — is governed by
//! the electronic stopping power `S(E) = −dE/dx`. We model it with the
//! classic two-regime construction used by SRIM-family codes:
//!
//! * **Low energy** (below the Bragg peak): velocity-proportional stopping
//!   à la Lindhard–Scharff / Andersen–Ziegler, `S_low = A·(E/m)^0.45`.
//! * **High energy**: the Bethe formula
//!   `S_high = K z² (Z/A) β⁻² [ln(2 mₑc² β²γ²/I) − β²]`.
//! * The two are joined with the Varelas–Biersack reciprocal rule
//!   `1/S = 1/S_low + 1/S_high`, which naturally produces the Bragg peak.
//!
//! Alpha stopping is obtained from the proton curve at equal velocity with
//! Ziegler's effective-charge scaling `z_eff = 2·(1 − e^(−κβ))`, which
//! captures electron pickup by slow helium ions.
//!
//! Absolute accuracy is within a factor ≈ 2 of ICRU-49 tables; the paper's
//! results are all normalized, so the *shape* (peak position, high-energy
//! fall-off, alpha/proton ratio) is what matters, and those are preserved.

use finrad_units::{constants, kinematics, Energy, Length, Particle, StoppingPower};

/// Electronic stopping model for a (silicon) target.
///
/// # Examples
///
/// ```
/// use finrad_transport::stopping::StoppingModel;
/// use finrad_units::{Energy, Particle};
///
/// let m = StoppingModel::silicon();
/// // Above the Bragg peak stopping falls with energy:
/// let s1 = m.stopping(Particle::Proton, Energy::from_mev(1.0));
/// let s10 = m.stopping(Particle::Proton, Energy::from_mev(10.0));
/// assert!(s1.kev_per_um() > s10.kev_per_um());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StoppingModel {
    /// Target atomic number.
    z_target: f64,
    /// Target atomic weight (g/mol).
    a_target: f64,
    /// Target density (g/cm³).
    density_g_cm3: f64,
    /// Mean excitation energy (eV).
    mean_excitation_ev: f64,
    /// Low-energy prefactor for protons, MeV·cm²/g at 1 MeV/amu.
    low_energy_prefactor: f64,
    /// Andersen–Ziegler low-energy exponent.
    low_energy_exponent: f64,
}

impl StoppingModel {
    /// The silicon model used throughout the workspace, calibrated so that
    /// the proton curve peaks near 0.1 MeV at ≈ 100 keV/µm and passes
    /// ≈ 35–40 keV/µm at 1 MeV (ICRU-49 class values).
    pub fn silicon() -> Self {
        Self {
            z_target: constants::SILICON_Z,
            a_target: constants::SILICON_A,
            density_g_cm3: constants::SILICON_DENSITY_G_CM3,
            mean_excitation_ev: constants::SILICON_MEAN_EXCITATION_EV,
            low_energy_prefactor: 2.5e3,
            low_energy_exponent: 0.45,
        }
    }

    /// Target density in g/cm³.
    pub fn density_g_cm3(&self) -> f64 {
        self.density_g_cm3
    }

    /// Mass stopping power of a *proton* at kinetic energy `e`, MeV·cm²/g.
    fn proton_mass_stopping(&self, e_mev: f64) -> f64 {
        if e_mev <= 0.0 {
            return 0.0;
        }
        let s_low = self.low_energy_prefactor * e_mev.powf(self.low_energy_exponent);
        let s_high = self.bethe_mass_stopping(1.0, e_mev, constants::PROTON_REST_MEV);
        1.0 / (1.0 / s_low + 1.0 / s_high)
    }

    /// Bethe mass stopping for charge `z` and kinetic energy `t_mev`
    /// (projectile rest mass `rest_mev`), MeV·cm²/g.
    ///
    /// The logarithmic bracket uses `ln(1 + arg)` instead of `ln(arg)`:
    /// asymptotically identical where Bethe is valid (`arg ≫ 1`, i.e.
    /// above ~1 MeV/amu), but smoothly saturating below, so the
    /// Varelas–Biersack reciprocal join produces a single, clean Bragg
    /// peak with no clamping artifacts.
    fn bethe_mass_stopping(&self, z: f64, t_mev: f64, rest_mev: f64) -> f64 {
        let beta2 = kinematics::beta_squared(t_mev, rest_mev);
        let gamma = kinematics::gamma(t_mev, rest_mev);
        let i_mev = self.mean_excitation_ev * 1.0e-6;
        let arg = 2.0 * constants::ELECTRON_REST_MEV * beta2 * gamma * gamma / i_mev;
        let bracket = (arg.ln_1p() - beta2).max(1.0e-6);
        constants::BETHE_K_MEV_CM2_PER_MOL * z * z * (self.z_target / self.a_target) / beta2
            * bracket
    }

    /// Ziegler effective charge of a helium ion at velocity β.
    fn helium_effective_charge(beta: f64) -> f64 {
        // z_eff = z (1 - exp(-125 β z^{-2/3})); for He, z^{-2/3} = 2^{-2/3}.
        let kappa = 125.0 * 2.0f64.powf(-2.0 / 3.0);
        2.0 * (1.0 - (-kappa * beta).exp())
    }

    /// Mass stopping power for `particle` at kinetic energy `e`, MeV·cm²/g.
    pub fn mass_stopping(&self, particle: Particle, energy: Energy) -> f64 {
        let e_mev = energy.mev();
        if e_mev <= 0.0 {
            return 0.0;
        }
        match particle {
            Particle::Proton => self.proton_mass_stopping(e_mev),
            Particle::Alpha => {
                // Equal-velocity proton energy: E_p = E_α · m_p / m_α.
                let e_equiv = e_mev * Particle::Proton.mass_amu() / Particle::Alpha.mass_amu();
                let beta = kinematics::beta_squared(e_mev, constants::ALPHA_REST_MEV).sqrt();
                let z_eff = Self::helium_effective_charge(beta);
                z_eff * z_eff * self.proton_mass_stopping(e_equiv)
            }
        }
    }

    /// Linear stopping power for `particle` at kinetic energy `energy`.
    pub fn stopping(&self, particle: Particle, energy: Energy) -> StoppingPower {
        StoppingPower::from_mass_stopping(self.mass_stopping(particle, energy), self.density_g_cm3)
    }

    /// Mean energy lost over a chord of length `chord` in the continuous
    /// slowing-down approximation, never exceeding the particle energy.
    ///
    /// For the nm-scale chords of a fin the relative energy loss is ≤ 10⁻³,
    /// so evaluating S at the entry energy is exact to first order; for
    /// longer chords (e.g. traversing many microns of back-end stack in an
    /// extension study) the loss is capped at the available energy.
    pub fn mean_energy_loss(&self, particle: Particle, energy: Energy, chord: Length) -> Energy {
        let de = self.stopping(particle, energy) * chord;
        de.qmin(energy)
    }

    /// CSDA range: distance to slow from `energy` to rest, by integrating
    /// `1/S(E)` over energy (trapezoidal, log grid).
    ///
    /// # Panics
    ///
    /// Panics if `energy` is not strictly positive.
    pub fn csda_range(&self, particle: Particle, energy: Energy) -> Length {
        let e_mev = energy.mev();
        assert!(e_mev > 0.0, "range requires positive energy");
        // Below ~10 keV nuclear stopping (not modelled here) dominates and
        // the residual range is < 100 nm, so the electronic-stopping
        // integral is cut off there; particles at or below the cutoff are
        // treated as stopped.
        let lo = 1.0e-2;
        if e_mev <= lo {
            return Length::ZERO;
        }
        let grid = finrad_numerics::interp::log_space(lo, e_mev, 256);
        let mut acc_cm = 0.0;
        for w in grid.windows(2) {
            let s0 = self.stopping(particle, Energy::from_mev(w[0])).mev_per_cm();
            let s1 = self.stopping(particle, Energy::from_mev(w[1])).mev_per_cm();
            // dR = dE / S; trapezoid in E.
            acc_cm += 0.5 * (1.0 / s0 + 1.0 / s1) * (w[1] - w[0]);
        }
        Length::from_cm(acc_cm)
    }
}

impl Default for StoppingModel {
    fn default() -> Self {
        Self::silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StoppingModel {
        StoppingModel::silicon()
    }

    #[test]
    fn proton_bragg_peak_near_100_kev() {
        let m = model();
        let grid = finrad_numerics::interp::log_space(1.0e-3, 100.0, 200);
        let (mut peak_e, mut peak_s) = (0.0, 0.0);
        for &e in &grid {
            let s = m
                .stopping(Particle::Proton, Energy::from_mev(e))
                .kev_per_um();
            if s > peak_s {
                peak_s = s;
                peak_e = e;
            }
        }
        assert!(
            (0.02..0.5).contains(&peak_e),
            "proton Bragg peak at {peak_e} MeV"
        );
        assert!(
            (40.0..250.0).contains(&peak_s),
            "proton peak stopping {peak_s} keV/um"
        );
    }

    #[test]
    fn proton_1mev_matches_icru_class_value() {
        // ICRU-49: ~170 MeV cm²/g => ~39 keV/µm. Accept a factor-2 band.
        let s = model()
            .stopping(Particle::Proton, Energy::from_mev(1.0))
            .kev_per_um();
        assert!((18.0..80.0).contains(&s), "S_p(1 MeV) = {s} keV/um");
    }

    #[test]
    fn alpha_exceeds_proton_at_equal_energy() {
        let m = model();
        for e in [1.0, 2.0, 5.0, 10.0, 50.0] {
            let sa = m
                .stopping(Particle::Alpha, Energy::from_mev(e))
                .kev_per_um();
            let sp = m
                .stopping(Particle::Proton, Energy::from_mev(e))
                .kev_per_um();
            assert!(
                sa > 2.0 * sp,
                "alpha should deposit much more at {e} MeV: {sa} vs {sp}"
            );
        }
        // Near the alpha Bragg peak the effective charge is reduced and the
        // margin narrows, but alpha still dominates.
        let e = Energy::from_mev(0.5);
        assert!(
            m.stopping(Particle::Alpha, e).kev_per_um()
                > 1.2 * m.stopping(Particle::Proton, e).kev_per_um()
        );
    }

    #[test]
    fn both_species_fall_above_their_peaks() {
        // Fig. 4 behaviour: deposited charge decreases with energy in the
        // 1–100 MeV band for both species.
        let m = model();
        for p in Particle::ALL {
            let s1 = m.stopping(p, Energy::from_mev(2.0)).kev_per_um();
            let s2 = m.stopping(p, Energy::from_mev(20.0)).kev_per_um();
            let s3 = m.stopping(p, Energy::from_mev(100.0)).kev_per_um();
            assert!(s1 > s2 && s2 > s3, "{p}: {s1} {s2} {s3}");
        }
    }

    #[test]
    fn high_energy_relativistic_rise_is_mild() {
        // Between 1 GeV and 10 GeV the stopping power is within a factor 2
        // (minimum-ionizing plateau).
        let m = model();
        let a = m
            .stopping(Particle::Proton, Energy::from_mev(1.0e3))
            .kev_per_um();
        let b = m
            .stopping(Particle::Proton, Energy::from_mev(1.0e4))
            .kev_per_um();
        assert!(b / a < 2.0 && a / b < 2.0);
    }

    #[test]
    fn zero_energy_zero_stopping() {
        let m = model();
        assert_eq!(m.mass_stopping(Particle::Proton, Energy::ZERO), 0.0);
    }

    #[test]
    fn effective_charge_limits() {
        // Slow helium is nearly neutral; fast helium is fully stripped.
        let slow = StoppingModel::helium_effective_charge(1.0e-4);
        let fast = StoppingModel::helium_effective_charge(0.2);
        assert!(slow < 0.1);
        assert!(fast > 1.99);
    }

    #[test]
    fn alpha_to_proton_ratio_in_plausible_band() {
        // At a few MeV the measured ratio of stopping powers is ~5-8.
        let m = model();
        let e = Energy::from_mev(5.0);
        let ratio = m.stopping(Particle::Alpha, e).kev_per_um()
            / m.stopping(Particle::Proton, e).kev_per_um();
        assert!((3.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mean_energy_loss_over_fin_chord() {
        // 1 MeV alpha over 20 nm: hundreds of e-h pairs worth of energy.
        let m = model();
        let de = m.mean_energy_loss(
            Particle::Alpha,
            Energy::from_mev(1.0),
            Length::from_nm(20.0),
        );
        let pairs = (de / constants::EHP_PAIR_ENERGY).value();
        assert!((100.0..10_000.0).contains(&pairs), "pairs {pairs}");
    }

    #[test]
    fn energy_loss_capped_at_available_energy() {
        let m = model();
        let de = m.mean_energy_loss(
            Particle::Alpha,
            Energy::from_kev(1.0),
            Length::from_um(100.0),
        );
        assert!(de <= Energy::from_kev(1.0));
    }

    #[test]
    fn csda_range_increases_with_energy() {
        let m = model();
        let r1 = m.csda_range(Particle::Alpha, Energy::from_mev(1.0));
        let r5 = m.csda_range(Particle::Alpha, Energy::from_mev(5.0));
        assert!(r5 > r1);
        // 5 MeV alpha range in Si is ~25 µm; accept a wide band.
        let um = r5.micrometers();
        assert!((5.0..120.0).contains(&um), "range {um} um");
    }

    #[test]
    fn tracks_icru49_within_factor_two() {
        // Absolute accuracy contract: mass stopping within 2x of the
        // ICRU-49/PSTAR-class reference values across the band the SER
        // analysis uses. (The paper's results are normalized, so a global
        // factor cancels; the contract pins the shape to reality.)
        let reference_proton: [(f64, f64); 5] = [
            // (MeV, MeV·cm²/g)
            (0.3, 310.0),
            (1.0, 170.0),
            (3.0, 75.0),
            (10.0, 33.0),
            (100.0, 5.8),
        ];
        let m = model();
        for (e_mev, s_ref) in reference_proton {
            let s = m.mass_stopping(Particle::Proton, Energy::from_mev(e_mev));
            let ratio = s / s_ref;
            assert!(
                (0.5..2.0).contains(&ratio),
                "proton {e_mev} MeV: {s} vs ICRU {s_ref} (x{ratio:.2})"
            );
        }
        // Alpha reference (ASTAR-class); the effective-charge model is
        // cruder, so a 2.5x band.
        let reference_alpha: [(f64, f64); 4] = [
            (1.0, 1200.0),
            (3.0, 690.0),
            (5.49, 480.0), // Am-241 line
            (10.0, 310.0),
        ];
        for (e_mev, s_ref) in reference_alpha {
            let s = m.mass_stopping(Particle::Alpha, Energy::from_mev(e_mev));
            let ratio = s / s_ref;
            assert!(
                (0.4..2.5).contains(&ratio),
                "alpha {e_mev} MeV: {s} vs ASTAR {s_ref} (x{ratio:.2})"
            );
        }
    }

    #[test]
    fn csda_ranges_track_reference_values() {
        // PSTAR: 1 MeV proton in Si ~ 16.5 um; ASTAR: 5.49 MeV alpha ~ 28 um.
        let m = model();
        let r_p = m
            .csda_range(Particle::Proton, Energy::from_mev(1.0))
            .micrometers();
        assert!((8.0..33.0).contains(&r_p), "proton range {r_p} um");
        let r_a = m
            .csda_range(Particle::Alpha, Energy::from_mev(5.49))
            .micrometers();
        assert!((14.0..56.0).contains(&r_a), "alpha range {r_a} um");
    }

    #[test]
    fn linear_vs_mass_consistency() {
        let m = model();
        let e = Energy::from_mev(2.0);
        let lin = m.stopping(Particle::Proton, e).mev_per_cm();
        let mass = m.mass_stopping(Particle::Proton, e);
        assert!((lin - mass * m.density_g_cm3()).abs() / lin < 1e-12);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use finrad_numerics::rng::{Rng, Xoshiro256pp};

    #[test]
    fn stopping_nonnegative_and_finite() {
        let m = StoppingModel::silicon();
        let mut rng = Xoshiro256pp::seed_from_u64(0x5709);
        for _ in 0..400 {
            // Log-uniform energy over 1e-4..1e7 MeV.
            let e = 10.0f64.powf(rng.gen_range(-4.0..7.0));
            for p in Particle::ALL {
                let s = m.stopping(p, Energy::from_mev(e)).kev_per_um();
                assert!(s.is_finite() && s >= 0.0);
            }
        }
    }

    #[test]
    fn energy_loss_never_exceeds_energy() {
        let m = StoppingModel::silicon();
        let mut rng = Xoshiro256pp::seed_from_u64(0x1055);
        for _ in 0..400 {
            let e = 10.0f64.powf(rng.gen_range(-3.0..2.0));
            let chord_nm = 10.0f64.powf(rng.gen_range(-1.0..6.0));
            let de = m.mean_energy_loss(
                Particle::Alpha,
                Energy::from_mev(e),
                finrad_units::Length::from_nm(chord_nm),
            );
            assert!(de.mev() <= e * (1.0 + 1e-12));
            assert!(de.mev() >= 0.0);
        }
    }

    #[test]
    fn loss_monotone_in_chord() {
        let m = StoppingModel::silicon();
        let mut rng = Xoshiro256pp::seed_from_u64(0x10C0);
        for _ in 0..400 {
            let e = rng.gen_range(0.5..50.0);
            let l1 = rng.gen_range(1.0..100.0);
            let l2 = rng.gen_range(1.0..100.0);
            let (short, long) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
            let d_short = m.mean_energy_loss(
                Particle::Proton,
                Energy::from_mev(e),
                finrad_units::Length::from_nm(short),
            );
            let d_long = m.mean_energy_loss(
                Particle::Proton,
                Energy::from_mev(e),
                finrad_units::Length::from_nm(long),
            );
            assert!(d_long >= d_short);
        }
    }
}
