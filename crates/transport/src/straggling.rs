//! Energy-loss straggling in thin silicon layers.
//!
//! Over a nanometre-scale chord the *mean* energy loss `S(E)·l` is only a
//! few hundred eV to a few keV, and the loss distribution is strongly
//! non-Gaussian: rare hard δ-ray collisions produce a long high-loss tail.
//! This is the Landau regime (the thickness parameter κ = ξ/T_max ≪ 1).
//! Geant4 handles this with its fluctuation models; we implement:
//!
//! * **Landau sampling** via the exact Moyal-form transform: if
//!   `Z ~ N(0,1)` then `λ = −ln(Z²)` follows the Moyal distribution, a
//!   close analytic approximation to the Landau shape with the correct
//!   exponential-of-exponential tail.
//! * **Bohr Gaussian** for thick segments (κ ≳ 10), variance
//!   `Ω² = 0.1569·z²·(Z/A)·ρ·Δx` MeV².
//! * Automatic regime selection through κ.
//!
//! All sampled losses are clamped to `[0, E]` — a particle cannot deposit
//! more energy than it carries.

use crate::stopping::StoppingModel;
use finrad_numerics::rng::Rng;
use finrad_units::{constants, kinematics, Energy, Length, Particle};

/// Draws a standard-normal deviate via Box–Muller (keeps the approved
/// dependency set to `rand` itself, without `rand_distr`).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(0.0f64..1.0);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Which fluctuation model to apply on top of the mean energy loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StragglingModel {
    /// No fluctuation: deposit exactly the mean loss. Useful for ablations
    /// and for deterministic tests.
    None,
    /// Gaussian with the Bohr variance (thick-absorber limit).
    Bohr,
    /// Landau/Moyal sampling (thin-absorber limit).
    Landau,
    /// Choose Landau or Bohr per segment from the thickness parameter κ.
    #[default]
    Auto,
}

/// Samples the energy deposited by `particle` of kinetic energy `energy`
/// along a silicon chord of length `chord`.
///
/// The return value is clamped to `[0, energy]`.
///
/// # Examples
///
/// ```
/// use finrad_transport::{stopping::StoppingModel, straggling};
/// use finrad_units::{Energy, Length, Particle};
/// use finrad_numerics::rng::Xoshiro256pp;
///
/// let model = StoppingModel::silicon();
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let de = straggling::sample_energy_loss(
///     &model,
///     straggling::StragglingModel::Auto,
///     Particle::Alpha,
///     Energy::from_mev(2.0),
///     Length::from_nm(20.0),
///     &mut rng,
/// );
/// assert!(de.ev() >= 0.0);
/// ```
pub fn sample_energy_loss<R: Rng + ?Sized>(
    model: &StoppingModel,
    straggling: StragglingModel,
    particle: Particle,
    energy: Energy,
    chord: Length,
    rng: &mut R,
) -> Energy {
    let mean = model.mean_energy_loss(particle, energy, chord);
    if mean.ev() <= 0.0 {
        return Energy::ZERO;
    }
    let sampled = match straggling {
        StragglingModel::None => mean,
        StragglingModel::Bohr => sample_bohr(particle, energy, chord, mean, rng),
        StragglingModel::Landau => sample_landau(particle, energy, chord, mean, rng),
        StragglingModel::Auto => {
            if kappa(particle, energy, chord) > 10.0 {
                sample_bohr(particle, energy, chord, mean, rng)
            } else {
                sample_landau(particle, energy, chord, mean, rng)
            }
        }
    };
    sampled.qmax(Energy::ZERO).qmin(energy)
}

/// The Landau ξ parameter in MeV: `ξ = (K/2)(Z/A)(z²/β²)·ρΔx`.
fn xi_mev(particle: Particle, energy: Energy, chord: Length) -> f64 {
    let beta2 = kinematics::beta_squared(energy.mev(), particle.rest_energy_mev()).max(1e-12);
    let x_g_cm2 = constants::SILICON_DENSITY_G_CM3 * chord.centimeters();
    let z = particle.charge_number();
    0.5 * constants::BETHE_K_MEV_CM2_PER_MOL * (constants::SILICON_Z / constants::SILICON_A) * z * z
        / beta2
        * x_g_cm2
}

/// Maximum kinematically transferable energy to an electron, MeV.
fn t_max_mev(particle: Particle, energy: Energy) -> f64 {
    let beta2 = kinematics::beta_squared(energy.mev(), particle.rest_energy_mev());
    let gamma = kinematics::gamma(energy.mev(), particle.rest_energy_mev());
    // Heavy-projectile approximation (m_e << M).
    (2.0 * constants::ELECTRON_REST_MEV * beta2 * gamma * gamma).max(1e-12)
}

/// Thickness parameter κ = ξ / T_max. κ ≪ 1 ⇒ Landau; κ ≫ 1 ⇒ Gaussian.
pub fn kappa(particle: Particle, energy: Energy, chord: Length) -> f64 {
    xi_mev(particle, energy, chord) / t_max_mev(particle, energy)
}

/// Bohr straggling standard deviation for the segment.
pub fn bohr_sigma(particle: Particle, energy: Energy, chord: Length) -> Energy {
    let _ = energy; // Bohr variance is velocity-independent to first order.
    let z = particle.charge_number();
    let x_g_cm2 = constants::SILICON_DENSITY_G_CM3 * chord.centimeters();
    let var_mev2 = 0.1569 * z * z * (constants::SILICON_Z / constants::SILICON_A) * x_g_cm2;
    Energy::from_mev(var_mev2.sqrt())
}

fn sample_bohr<R: Rng + ?Sized>(
    particle: Particle,
    energy: Energy,
    chord: Length,
    mean: Energy,
    rng: &mut R,
) -> Energy {
    let sigma = bohr_sigma(particle, energy, chord);
    let z: f64 = sample_standard_normal(rng);
    mean + sigma * z
}

/// Draws a Moyal-distributed deviate with mode 0 and unit scale:
/// `λ = −ln(Z²)` for `Z ~ N(0,1)`.
pub fn sample_moyal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let z: f64 = sample_standard_normal(rng);
        let z2 = z * z;
        if z2 > 0.0 {
            return -z2.ln();
        }
    }
}

/// The Moyal-form deposit distribution of one thin-chord segment:
/// `ΔE = mean + scale·(λ − 1.2704)` with `λ ~ Moyal(0, 1)`.
///
/// These are the parameters the conditional-expectation flip model in
/// `finrad-core` integrates over analytically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandauParams {
    /// Mean deposited energy (the CSDA mean loss).
    pub mean: Energy,
    /// Moyal scale (physical straggling σ divided by the Moyal stddev).
    pub scale: Energy,
}

/// Mean of the standard Moyal distribution (γ_E + ln 2).
pub const MOYAL_MEAN: f64 = 1.270_362_845;
/// Standard deviation of the standard Moyal distribution (π/√2).
pub const MOYAL_STDDEV: f64 = 2.221_441_469;

/// Deposit-distribution parameters for `particle` at `energy` over `chord`.
pub fn landau_params(
    model: &StoppingModel,
    particle: Particle,
    energy: Energy,
    chord: Length,
) -> LandauParams {
    let mean = model.mean_energy_loss(particle, energy, chord);
    let scale = bohr_sigma(particle, energy, chord) / MOYAL_STDDEV;
    LandauParams { mean, scale }
}

/// Survival function of the standard Moyal distribution:
/// `P(λ > x) = P(χ²₁ < e^(−x)) = erf(√(e^(−x)/2))`.
///
/// # Examples
///
/// ```
/// use finrad_transport::straggling::moyal_survival;
///
/// assert!((moyal_survival(-50.0) - 1.0).abs() < 1e-9);
/// assert!(moyal_survival(20.0) < 1e-4);
/// let p = moyal_survival(0.0);
/// assert!(p > 0.4 && p < 0.7); // median is near the mode
/// ```
pub fn moyal_survival(x: f64) -> f64 {
    finrad_numerics::special::erf((0.5 * (-x).exp()).sqrt())
}

/// Probability that the deposit described by `params` reaches `threshold`,
/// given at most `available` energy can be deposited (hard kinematic cap).
pub fn deposit_exceedance(params: &LandauParams, threshold: Energy, available: Energy) -> f64 {
    if threshold > available {
        return 0.0;
    }
    if threshold.ev() <= 0.0 {
        return 1.0;
    }
    if params.scale.ev() <= 0.0 {
        return if params.mean >= threshold { 1.0 } else { 0.0 };
    }
    let lambda = ((threshold - params.mean) / params.scale).value() + MOYAL_MEAN;
    moyal_survival(lambda)
}

fn sample_landau<R: Rng + ?Sized>(
    particle: Particle,
    energy: Energy,
    chord: Length,
    mean: Energy,
    rng: &mut R,
) -> Energy {
    // Moyal-shaped fluctuation scaled so that mean and variance match the
    // physical values (the straggling variance ξ·T_max equals the Bohr
    // variance at γ ≈ 1). The Moyal shape contributes the defining Landau
    // feature: a right-skewed distribution whose rare hard-collision tail
    // reaches several times the mean loss, which a symmetric Gaussian
    // cannot produce.
    let params = landau_params_from_mean(particle, energy, chord, mean);
    let lambda = sample_moyal(rng);
    params.mean + params.scale * (lambda - MOYAL_MEAN)
}

/// Internal variant avoiding a second stopping-power evaluation when the
/// mean loss is already known.
fn landau_params_from_mean(
    particle: Particle,
    energy: Energy,
    chord: Length,
    mean: Energy,
) -> LandauParams {
    LandauParams {
        mean,
        scale: bohr_sigma(particle, energy, chord) / MOYAL_STDDEV,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    fn model() -> StoppingModel {
        StoppingModel::silicon()
    }

    #[test]
    fn fin_chords_are_in_the_landau_regime() {
        // nm chords, MeV particles: kappa << 1.
        let k = kappa(
            Particle::Proton,
            Energy::from_mev(1.0),
            Length::from_nm(20.0),
        );
        assert!(k < 0.1, "kappa {k}");
        let ka = kappa(
            Particle::Alpha,
            Energy::from_mev(5.0),
            Length::from_nm(20.0),
        );
        assert!(ka < 0.5, "kappa {ka}");
    }

    #[test]
    fn thick_segments_reach_gaussian_regime() {
        let k = kappa(
            Particle::Alpha,
            Energy::from_kev(400.0),
            Length::from_um(50.0),
        );
        assert!(k > 10.0, "kappa {k}");
    }

    #[test]
    fn none_model_is_deterministic_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let m = model();
        let e = Energy::from_mev(1.0);
        let l = Length::from_nm(20.0);
        let de = sample_energy_loss(&m, StragglingModel::None, Particle::Alpha, e, l, &mut rng);
        assert_eq!(de, m.mean_energy_loss(Particle::Alpha, e, l));
    }

    #[test]
    fn sampled_mean_tracks_csda_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let m = model();
        let e = Energy::from_mev(2.0);
        let l = Length::from_nm(30.0);
        let expect = m.mean_energy_loss(Particle::Alpha, e, l).ev();
        for strag in [
            StragglingModel::Landau,
            StragglingModel::Bohr,
            StragglingModel::Auto,
        ] {
            let n = 40_000;
            let mean_ev: f64 = (0..n)
                .map(|_| sample_energy_loss(&m, strag, Particle::Alpha, e, l, &mut rng).ev())
                .sum::<f64>()
                / n as f64;
            // Clamping at zero biases slightly upward; allow 15 %.
            assert!(
                (mean_ev - expect).abs() / expect < 0.15,
                "{strag:?}: sampled {mean_ev} eV vs mean {expect} eV"
            );
        }
    }

    #[test]
    fn landau_has_heavier_upper_tail_than_gaussian() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let m = model();
        let e = Energy::from_mev(1.0);
        let l = Length::from_nm(20.0);
        let mean = m.mean_energy_loss(Particle::Proton, e, l).ev();
        let n = 30_000;
        let count_tail = |strag: StragglingModel, rng: &mut Xoshiro256pp| {
            (0..n)
                .filter(|_| {
                    sample_energy_loss(&m, strag, Particle::Proton, e, l, rng).ev() > 3.0 * mean
                })
                .count()
        };
        let landau_tail = count_tail(StragglingModel::Landau, &mut rng);
        let bohr_tail = count_tail(StragglingModel::Bohr, &mut rng);
        assert!(
            landau_tail > bohr_tail.max(1) * 2,
            "landau tail {landau_tail} vs bohr {bohr_tail}"
        );
    }

    #[test]
    fn losses_clamped_to_particle_energy() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let m = model();
        let e = Energy::from_kev(2.0); // nearly stopped particle
        let l = Length::from_um(10.0);
        for _ in 0..2000 {
            let de = sample_energy_loss(&m, StragglingModel::Auto, Particle::Alpha, e, l, &mut rng);
            assert!(de >= Energy::ZERO && de <= e);
        }
    }

    #[test]
    fn moyal_sampler_statistics() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_moyal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // E[λ] = γ_E + ln 2 ≈ 1.2704.
        assert!((mean - 1.2704).abs() < 0.03, "moyal mean {mean}");
        // Mode near zero: more mass in [-1, 1] than in [1, 3].
        let near = samples
            .iter()
            .filter(|&&x| (-1.0..1.0).contains(&x))
            .count();
        let far = samples.iter().filter(|&&x| (1.0..3.0).contains(&x)).count();
        assert!(near > far);
    }

    #[test]
    fn bohr_sigma_scales_with_sqrt_thickness() {
        let s1 = bohr_sigma(
            Particle::Alpha,
            Energy::from_mev(1.0),
            Length::from_nm(10.0),
        );
        let s4 = bohr_sigma(
            Particle::Alpha,
            Energy::from_mev(1.0),
            Length::from_nm(40.0),
        );
        assert!(((s4 / s1).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exceedance_matches_sampled_frequency() {
        // The analytic deposit_exceedance must agree with Landau sampling.
        let m = model();
        let e = Energy::from_mev(1.0);
        let l = Length::from_nm(30.0);
        let params = landau_params(&m, Particle::Alpha, e, l);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for factor in [0.8, 1.0, 1.5, 2.0] {
            let threshold = params.mean * factor;
            let analytic = deposit_exceedance(&params, threshold, e);
            let n = 60_000;
            let hits = (0..n)
                .filter(|_| {
                    sample_energy_loss(&m, StragglingModel::Landau, Particle::Alpha, e, l, &mut rng)
                        >= threshold
                })
                .count();
            let sampled = hits as f64 / n as f64;
            assert!(
                (analytic - sampled).abs() < 0.02 + 0.15 * sampled,
                "factor {factor}: analytic {analytic} vs sampled {sampled}"
            );
        }
    }

    #[test]
    fn exceedance_edge_cases() {
        let m = model();
        let e = Energy::from_mev(2.0);
        let params = landau_params(&m, Particle::Proton, e, Length::from_nm(20.0));
        // More than the particle carries: impossible.
        assert_eq!(deposit_exceedance(&params, e * 2.0, e), 0.0);
        // Zero threshold: certain.
        assert_eq!(deposit_exceedance(&params, Energy::ZERO, e), 1.0);
        // Monotone decreasing in threshold.
        let mut prev = 1.0;
        for k in 1..40 {
            let p = deposit_exceedance(&params, params.mean * (k as f64 * 0.2), e);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn moyal_survival_bounds() {
        assert!((moyal_survival(-100.0) - 1.0).abs() < 1e-12);
        assert!(moyal_survival(50.0) >= 0.0);
        assert!(moyal_survival(50.0) < 1e-9);
        // Median of the Moyal is ~0.787.
        let med = moyal_survival(0.787);
        assert!((med - 0.5).abs() < 0.01, "SF(median) = {med}");
    }

    #[test]
    fn alpha_xi_is_4x_proton_xi_at_equal_beta() {
        // Same beta: z² scaling only. Arrange equal beta via energy ratio.
        let e_p = Energy::from_mev(1.0);
        let e_a = Energy::from_mev(1.0 * Particle::Alpha.mass_amu() / Particle::Proton.mass_amu());
        let l = Length::from_nm(20.0);
        let r = xi_mev(Particle::Alpha, e_a, l) / xi_mev(Particle::Proton, e_p, l);
        assert!((r - 4.0).abs() < 0.05, "xi ratio {r}");
    }
}
