//! Charged-particle transport through FinFET fin structures.
//!
//! This crate is the workspace's substitute for **Geant4** (the paper's
//! Section 3): it answers the single question the cross-layer flow asks of
//! the device level — *how many electron–hole pairs does a particle of
//! energy E deposit in a fin?* — using analytic charged-particle physics
//! instead of a full nuclear-interaction Monte Carlo:
//!
//! * [`stopping`] — electronic stopping power of silicon for protons and
//!   alphas: a Varelas–Biersack join of a low-energy velocity-proportional
//!   term and the Bethe formula, with Ziegler effective-charge scaling for
//!   helium. This reproduces the Bragg-peak shape that drives the paper's
//!   Fig. 4 (deposited charge falls with energy above ~0.1 MeV for protons
//!   and ~0.5 MeV for alphas, with alphas depositing ~5–20× more).
//! * [`straggling`] — energy-loss fluctuations in nm-scale silicon chords:
//!   Landau sampling (exact Moyal-form tail via the χ²₁ transform) for thin
//!   segments, Bohr-variance Gaussian for thick ones.
//! * [`ehp`] — conversion of deposited energy to electron–hole pairs at
//!   3.6 eV/pair with Fano-factor fluctuation.
//! * [`fin`] — the 3-D fin target and single-fin traversal Monte Carlo.
//! * [`lut`] — the energy-indexed pair-count LUT of the paper's flow
//!   (built once, consumed by the array-level simulation).
//! * [`timing`] — the paper's Eqs. 1–3: passage time, transit time, and the
//!   rectangular current-pulse model.
//!
//! # Examples
//!
//! ```
//! use finrad_transport::stopping::StoppingModel;
//! use finrad_units::{Energy, Particle};
//!
//! let model = StoppingModel::silicon();
//! let s_alpha = model.stopping(Particle::Alpha, Energy::from_mev(5.0));
//! let s_proton = model.stopping(Particle::Proton, Energy::from_mev(5.0));
//! assert!(s_alpha.kev_per_um() > s_proton.kev_per_um());
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod ehp;
pub mod fin;
pub mod lut;
pub mod neutron;
pub mod stopping;
pub mod straggling;
pub mod timing;
