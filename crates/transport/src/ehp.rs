//! Electron–hole pair generation from deposited energy.
//!
//! "For every 3.6 eV of particle energy lost in silicon, an electron-hole
//! pair is generated" (paper, Section 3.2). On top of that mean we model
//! the sub-Poissonian fluctuation of the pair count with silicon's Fano
//! factor F ≈ 0.115 (variance = F·n̄), which matters for strikes close to
//! the flip threshold.

use finrad_numerics::rng::Rng;
use finrad_units::{constants, Charge, Energy};

use crate::straggling::sample_standard_normal;

/// Mean number of electron–hole pairs for `deposited` energy.
///
/// # Examples
///
/// ```
/// use finrad_transport::ehp;
/// use finrad_units::Energy;
///
/// let n = ehp::mean_pairs(Energy::from_kev(3.6));
/// assert!((n - 1000.0).abs() < 1e-9);
/// ```
pub fn mean_pairs(deposited: Energy) -> f64 {
    (deposited / constants::EHP_PAIR_ENERGY).value().max(0.0)
}

/// Samples an integer pair count with Fano-suppressed Gaussian statistics
/// around the mean (σ² = F·n̄), clamped at zero.
///
/// For very small means (< 10 pairs) the Gaussian approximation is replaced
/// by a simple Bernoulli rounding of the mean, which keeps the expectation
/// exact without needing a full Poisson sampler.
pub fn sample_pairs<R: Rng + ?Sized>(deposited: Energy, rng: &mut R) -> u64 {
    let mean = mean_pairs(deposited);
    if mean <= 0.0 {
        return 0;
    }
    if mean < 10.0 {
        // Bernoulli-rounded mean: E[result] == mean.
        let floor = mean.floor();
        let frac = mean - floor;
        let extra = u64::from(rng.gen_range(0.0f64..1.0) < frac);
        return floor as u64 + extra;
    }
    let sigma = (constants::SILICON_FANO_FACTOR * mean).sqrt();
    let n = mean + sigma * sample_standard_normal(rng);
    n.round().max(0.0) as u64
}

/// Charge carried by `pairs` electron–hole pairs (one electron each).
pub fn pairs_to_charge(pairs: u64) -> Charge {
    Charge::from_electrons(pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    #[test]
    fn paper_conversion_factor() {
        // 1 MeV deposited => 1e6/3.6 ≈ 277,778 pairs.
        let n = mean_pairs(Energy::from_mev(1.0));
        assert!((n - 277_777.78).abs() < 1.0);
    }

    #[test]
    fn zero_and_negative_deposits() {
        assert_eq!(mean_pairs(Energy::ZERO), 0.0);
        assert_eq!(mean_pairs(Energy::from_ev(-5.0)), 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(sample_pairs(Energy::ZERO, &mut rng), 0);
    }

    #[test]
    fn sampled_mean_matches_expectation() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let e = Energy::from_kev(1.0); // ~278 pairs
        let expect = mean_pairs(e);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_pairs(e, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - expect).abs() / expect < 0.01, "{mean} vs {expect}");
    }

    #[test]
    fn fano_variance_sub_poissonian() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let e = Energy::from_kev(10.0); // ~2778 pairs
        let expect = mean_pairs(e);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_pairs(e, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        // Variance should be ~F * mean, far below Poisson (var = mean).
        assert!(var < 0.3 * expect, "var {var} vs poisson {expect}");
        assert!(var > 0.03 * expect, "var {var} suspiciously small");
    }

    #[test]
    fn small_mean_bernoulli_branch_unbiased() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let e = Energy::from_ev(3.6 * 2.5); // mean = 2.5 pairs
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_pairs(e, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn charge_of_pairs() {
        let q = pairs_to_charge(1000);
        assert!((q.electrons() - 1000.0).abs() < 1e-9);
        assert!(q.femtocoulombs() > 0.16 && q.femtocoulombs() < 0.17);
    }
}
