//! Hand-rolled type-level integers for compile-time dimensional analysis.
//!
//! The [`Quantity`](crate::Quantity) wrapper encodes the exponent of each
//! SI base dimension (mass, length, time, current) as a *type* from this
//! module, so that multiplying or dividing two quantities adds or
//! subtracts the exponents **in the type system** and a dimensionally
//! invalid expression is a compile error, not a runtime surprise.
//!
//! The encoding is typenum-style but deliberately bounded: one marker type
//! per integer in `[-8, +8]` ([`N8`] … [`Z0`] … [`P8`]), chained through
//! the [`Integer::Succ`]/[`Integer::Pred`] associated types. Arithmetic is
//! expressed as trait-level recursion on the right-hand operand:
//!
//! * `A + Z0 = A`
//! * `A + P(n) = (A + P(n-1)) + P1`, where `A + P1 = A::Succ`
//! * `A + N(n) = (A + N(n+1)) + N1`, where `A + N1 = A::Pred`
//! * `A - B = A + (-B)`
//!
//! The endpoints chain into [`OutOfRange`], which does **not** implement
//! [`Integer`], so any operation whose result would leave `[-8, +8]` simply
//! has no impl and fails to compile. The physical quantities used in this
//! workspace keep their exponents within `[-3, +3]`; the extra headroom
//! covers intermediate products (e.g. `Volume · Volume`).
//!
//! Everything here is `std`-only: no `typenum`, no build script, no macros
//! visible to downstream crates.
//!
//! # Examples
//!
//! ```
//! use finrad_units::tyint::{Integer, Sum, Diff, Negate, P2, P3, N1, Z0};
//!
//! assert_eq!(<Sum<P2, N1> as Integer>::I32, 1);
//! assert_eq!(<Diff<P2, P3> as Integer>::I32, -1);
//! assert_eq!(<Negate<P2> as Integer>::I32, -2);
//! assert_eq!(<Z0 as Integer>::I32, 0);
//! ```
//!
//! A sum that would leave the supported range does not compile:
//!
//! ```compile_fail
//! use finrad_units::tyint::{Integer, Sum, P8, P1};
//!
//! // +8 + 1 = +9 is outside [-8, +8]: `Sum<P8, P1>` has no impl.
//! let _ = <Sum<P8, P1> as Integer>::I32;
//! ```

/// A type-level integer in `[-8, +8]`.
///
/// Implemented only by the marker types of this module; [`OutOfRange`] is
/// deliberately excluded so arithmetic saturating past an endpoint is a
/// compile error.
pub trait Integer {
    /// The integer this type encodes.
    const I32: i32;
    /// The next integer (`self + 1`); [`OutOfRange`] at the top endpoint.
    type Succ;
    /// The previous integer (`self - 1`); [`OutOfRange`] at the bottom
    /// endpoint.
    type Pred;
}

/// Sentinel one step past either endpoint of the supported range.
///
/// Does **not** implement [`Integer`], so any type-level sum or difference
/// that lands here fails to compile.
pub struct OutOfRange;

macro_rules! int_types {
    ($(($name:ident, $val:literal, $succ:ident, $pred:ident)),+ $(,)?) => {$(
        #[doc = concat!("Type-level integer `", stringify!($val), "`.")]
        pub struct $name;

        impl Integer for $name {
            const I32: i32 = $val;
            type Succ = $succ;
            type Pred = $pred;
        }
    )+};
}

int_types!(
    (N8, -8, N7, OutOfRange),
    (N7, -7, N6, N8),
    (N6, -6, N5, N7),
    (N5, -5, N4, N6),
    (N4, -4, N3, N5),
    (N3, -3, N2, N4),
    (N2, -2, N1, N3),
    (N1, -1, Z0, N2),
    (Z0, 0, P1, N1),
    (P1, 1, P2, Z0),
    (P2, 2, P3, P1),
    (P3, 3, P4, P2),
    (P4, 4, P5, P3),
    (P5, 5, P6, P4),
    (P6, 6, P7, P5),
    (P7, 7, P8, P6),
    (P8, 8, OutOfRange, P7),
);

/// Type-level addition: `Sum<A, B>` is the type encoding `A + B`.
pub trait TyAdd<Rhs> {
    /// The type encoding the sum.
    type Output;
}

/// Shorthand for `<A as TyAdd<B>>::Output`.
pub type Sum<A, B> = <A as TyAdd<B>>::Output;

impl<A: Integer> TyAdd<Z0> for A {
    type Output = A;
}

impl<A: Integer> TyAdd<P1> for A
where
    A::Succ: Integer,
{
    type Output = A::Succ;
}

impl<A: Integer> TyAdd<N1> for A
where
    A::Pred: Integer,
{
    type Output = A::Pred;
}

/// `A + rhs = (A + prev) + step`, recursing one unit step at a time.
macro_rules! add_via {
    ($rhs:ident, $prev:ident, $step:ident) => {
        impl<A: Integer> TyAdd<$rhs> for A
        where
            A: TyAdd<$prev>,
            Sum<A, $prev>: TyAdd<$step>,
        {
            type Output = Sum<Sum<A, $prev>, $step>;
        }
    };
}

add_via!(P2, P1, P1);
add_via!(P3, P2, P1);
add_via!(P4, P3, P1);
add_via!(P5, P4, P1);
add_via!(P6, P5, P1);
add_via!(P7, P6, P1);
add_via!(P8, P7, P1);
add_via!(N2, N1, N1);
add_via!(N3, N2, N1);
add_via!(N4, N3, N1);
add_via!(N5, N4, N1);
add_via!(N6, N5, N1);
add_via!(N7, N6, N1);
add_via!(N8, N7, N1);

/// Type-level negation: `Negate<A>` is the type encoding `-A`.
pub trait TyNeg {
    /// The type encoding the negation.
    type Output;
}

/// Shorthand for `<A as TyNeg>::Output`.
pub type Negate<A> = <A as TyNeg>::Output;

macro_rules! neg_impls {
    ($(($a:ident, $b:ident)),+ $(,)?) => {$(
        impl TyNeg for $a {
            type Output = $b;
        }
    )+};
}

neg_impls!(
    (Z0, Z0),
    (P1, N1),
    (P2, N2),
    (P3, N3),
    (P4, N4),
    (P5, N5),
    (P6, N6),
    (P7, N7),
    (P8, N8),
    (N1, P1),
    (N2, P2),
    (N3, P3),
    (N4, P4),
    (N5, P5),
    (N6, P6),
    (N7, P7),
    (N8, P8),
);

/// Type-level subtraction: `Diff<A, B>` is the type encoding `A - B`,
/// derived as `A + (-B)`.
pub trait TySub<Rhs> {
    /// The type encoding the difference.
    type Output;
}

/// Shorthand for `<A as TySub<B>>::Output`.
pub type Diff<A, B> = <A as TySub<B>>::Output;

impl<A, B> TySub<B> for A
where
    B: TyNeg,
    A: TyAdd<Negate<B>>,
{
    type Output = Sum<A, Negate<B>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::marker::PhantomData;

    /// Compile-time type-identity witness: both arguments must be the
    /// *same* type, not merely types with equal `I32`.
    fn same_type<T>(_: PhantomData<T>, _: PhantomData<T>) {}

    /// Expands `$mac!($fixed, X)` for every `X` in the exponent range the
    /// workspace actually uses, `[-3, +3]`.
    macro_rules! with_each {
        ($mac:ident, $fixed:ty) => {
            $mac!($fixed, N3);
            $mac!($fixed, N2);
            $mac!($fixed, N1);
            $mac!($fixed, Z0);
            $mac!($fixed, P1);
            $mac!($fixed, P2);
            $mac!($fixed, P3);
        };
    }

    /// Expands `with_each!($mac, A)` for every `A` in `[-3, +3]`, giving
    /// the full 7×7 cartesian product.
    macro_rules! all_pairs {
        ($mac:ident) => {
            with_each!($mac, N3);
            with_each!($mac, N2);
            with_each!($mac, N1);
            with_each!($mac, Z0);
            with_each!($mac, P1);
            with_each!($mac, P2);
            with_each!($mac, P3);
        };
    }

    #[test]
    fn add_exhaustive_over_used_range() {
        macro_rules! chk {
            ($a:ty, $b:ty) => {
                assert_eq!(
                    <Sum<$a, $b> as Integer>::I32,
                    <$a as Integer>::I32 + <$b as Integer>::I32,
                );
            };
        }
        all_pairs!(chk);
    }

    #[test]
    fn sub_exhaustive_over_used_range() {
        macro_rules! chk {
            ($a:ty, $b:ty) => {
                assert_eq!(
                    <Diff<$a, $b> as Integer>::I32,
                    <$a as Integer>::I32 - <$b as Integer>::I32,
                );
            };
        }
        all_pairs!(chk);
    }

    #[test]
    fn neg_exhaustive_and_involutive() {
        macro_rules! chk {
            ($a:ty) => {
                assert_eq!(<Negate<$a> as Integer>::I32, -<$a as Integer>::I32);
                // neg(neg(a)) is *the same type* as a, not just equal-valued.
                same_type(PhantomData::<Negate<Negate<$a>>>, PhantomData::<$a>);
            };
        }
        chk!(N3);
        chk!(N2);
        chk!(N1);
        chk!(Z0);
        chk!(P1);
        chk!(P2);
        chk!(P3);
    }

    #[test]
    fn additive_identities_are_type_identities() {
        macro_rules! chk {
            ($a:ty) => {
                // a + 0 = a and a - a = 0, as type equalities.
                same_type(PhantomData::<Sum<$a, Z0>>, PhantomData::<$a>);
                same_type(PhantomData::<Diff<$a, $a>>, PhantomData::<Z0>);
                // a - b = a + (-b) holds definitionally; spot-check the
                // commuted form a + b = b + a normalizes to one type.
                same_type(PhantomData::<Sum<$a, P2>>, PhantomData::<Sum<P2, $a>>);
            };
        }
        chk!(N3);
        chk!(N2);
        chk!(N1);
        chk!(Z0);
        chk!(P1);
        chk!(P2);
        chk!(P3);
    }

    #[test]
    fn full_range_endpoints_resolve() {
        assert_eq!(<Sum<P7, P1> as Integer>::I32, 8);
        assert_eq!(<Sum<N7, N1> as Integer>::I32, -8);
        assert_eq!(<Sum<P8, N8> as Integer>::I32, 0);
        assert_eq!(<Diff<N8, N8> as Integer>::I32, 0);
    }
}
