//! The generic dimensioned quantity at the heart of `finrad-units`.
//!
//! [`Quantity<M, L, T, I>`] wraps an `f64` stored in SI base units and
//! carries the exponents of the four SI base dimensions this workspace
//! needs — **M**ass, **L**ength, **T**ime, electric current **I** — as
//! type-level integers from [`crate::tyint`]. `Mul`/`Div` between any two
//! quantities add and subtract the exponents in the type system, so *every*
//! dimensionally valid product or quotient works out of the box
//! (`Energy / Charge → Voltage`, `Charge / Time → Current`,
//! `Flux · Area · Time → Dimensionless`) and every invalid one is rejected
//! at compile time. The former hand-enumerated `impl Mul`/`impl Div` matrix
//! is gone.
//!
//! Same-dimension comparison helpers come in two flavours: the lenient
//! `PartialOrd` operators, and the total-order [`Quantity::cmp_total`] /
//! [`Quantity::qmin`] / [`Quantity::qmax`] family built on
//! [`f64::total_cmp`], which the workspace float-discipline rules require
//! at interpolation/fit call sites (NaN never silently wins or loses an
//! ordering there).
//!
//! The raw-`f64` escape hatches [`Quantity::si_value`] and
//! [`Quantity::from_si`] exist for generic numeric plumbing (units
//! internals, checkpoint serialization, SPICE MNA assembly) and are policed
//! everywhere else by the `raw-escape-audit` lint family of
//! `cargo xtask lint`, which is pinned at zero findings in CI.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum as IterSum;
use std::marker::PhantomData;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tyint::{Diff, Integer, Sum, TyAdd, TySub, Z0};

/// An `f64`-backed physical quantity with compile-time dimension exponents.
///
/// `M`, `L`, `T`, `I` are type-level integers ([`crate::tyint`]) encoding
/// the exponents of mass, length, time and electric current. The value is
/// always stored in coherent SI base units; the dimension-specific aliases
/// in the crate root ([`crate::Energy`], [`crate::Charge`], …) add the
/// domain constructors and accessors (`from_kev`, `femtocoulombs`, …).
///
/// # Examples
///
/// ```
/// use finrad_units::{Charge, Current, Energy, Time, Voltage};
///
/// let q = Charge::from_fc(1.5);
/// let tau = Time::from_ps(2.0);
/// let i: Current = q / tau; // Charge / Time → Current, checked at compile time
/// assert!((i * tau - q).abs() < Charge::from_fc(1e-12));
///
/// let v: Voltage = Energy::from_ev(1.0) / Charge::from_electrons(1.0);
/// assert!((v.volts() - 1.0).abs() < 1e-12);
/// ```
pub struct Quantity<M, L, T, I> {
    value: f64,
    _dim: PhantomData<(M, L, T, I)>,
}

/// A dimensionless quantity — the result of, e.g., a ratio of two like
/// quantities or a fully cancelled product such as `Flux · Area · Time`.
///
/// Convert to a bare `f64` with [`Quantity::value`]; that accessor is the
/// sanctioned read-out (unlike `si_value`, it is not policed by the
/// `raw-escape-audit` lint because no dimension information is lost).
pub type Dimensionless = Quantity<Z0, Z0, Z0, Z0>;

impl<M, L, T, I> Quantity<M, L, T, I> {
    /// The zero value of this quantity.
    pub const ZERO: Self = Self::from_si(0.0);

    /// Builds the quantity from a raw SI base-unit value.
    ///
    /// This is a raw escape hatch: outside units internals, checkpoint
    /// serialization and SPICE MNA assembly, the `raw-escape-audit` lint
    /// reports every call site. Prefer the named domain constructors
    /// (`from_kev`, `from_nm`, …).
    #[inline]
    pub const fn from_si(value: f64) -> Self {
        Self {
            value,
            _dim: PhantomData,
        }
    }

    /// Raw value in the coherent SI base unit of this quantity.
    ///
    /// This is a raw escape hatch policed by the `raw-escape-audit` lint;
    /// prefer the named accessors (`meters()`, `mev()`, …) in domain code.
    #[inline]
    pub const fn si_value(self) -> f64 {
        self.value
    }

    /// Returns `true` if the underlying value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.value.is_finite()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self::from_si(self.value.abs())
    }

    /// The smaller of `self` and `other` under the IEEE 754 total order
    /// ([`f64::total_cmp`]); NaN orders above every real value, so a NaN
    /// operand never masks a finite minimum.
    #[inline]
    pub fn qmin(self, other: Self) -> Self {
        match self.value.total_cmp(&other.value) {
            Ordering::Greater => other,
            _ => self,
        }
    }

    /// The larger of `self` and `other` under the IEEE 754 total order;
    /// the counterpart of [`Quantity::qmin`].
    #[inline]
    pub fn qmax(self, other: Self) -> Self {
        match self.value.total_cmp(&other.value) {
            Ordering::Less => other,
            _ => self,
        }
    }

    /// Total ordering between two like quantities via [`f64::total_cmp`].
    ///
    /// Use this (not `partial_cmp().unwrap()`) when sorting or bisecting
    /// over quantities; it is the workspace float-discipline idiom.
    #[inline]
    pub fn cmp_total(&self, other: &Self) -> Ordering {
        self.value.total_cmp(&other.value)
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.value <= hi.value, "clamp bounds inverted");
        Self::from_si(self.value.clamp(lo.value, hi.value))
    }
}

impl Dimensionless {
    /// Wraps a bare `f64` as a dimensionless quantity.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self::from_si(value)
    }

    /// The bare numeric value; the sanctioned way back to `f64` (no
    /// dimension information is discarded, so the `raw-escape-audit` lint
    /// does not police this accessor).
    #[inline]
    pub const fn value(self) -> f64 {
        self.value
    }
}

impl From<f64> for Dimensionless {
    #[inline]
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl From<Dimensionless> for f64 {
    #[inline]
    fn from(q: Dimensionless) -> f64 {
        q.value()
    }
}

// Manual trait impls: derives would place bounds on the phantom dimension
// parameters, which are pure markers.

impl<M, L, T, I> Clone for Quantity<M, L, T, I> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}

impl<M, L, T, I> Copy for Quantity<M, L, T, I> {}

impl<M, L, T, I> Default for Quantity<M, L, T, I> {
    #[inline]
    fn default() -> Self {
        Self::ZERO
    }
}

impl<M, L, T, I> PartialEq for Quantity<M, L, T, I> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<M, L, T, I> PartialOrd for Quantity<M, L, T, I> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.value.partial_cmp(&other.value)
    }
}

#[cfg(feature = "serde")]
impl<M, L, T, I> serde::Serialize for Quantity<M, L, T, I> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(self.value)
    }
}

#[cfg(feature = "serde")]
impl<'de, M, L, T, I> serde::Deserialize<'de> for Quantity<M, L, T, I> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(Self::from_si)
    }
}

// ------------------------------------------------------------------
// Same-dimension arithmetic
// ------------------------------------------------------------------

impl<M, L, T, I> Add for Quantity<M, L, T, I> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_si(self.value + rhs.value)
    }
}

impl<M, L, T, I> AddAssign for Quantity<M, L, T, I> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.value += rhs.value;
    }
}

impl<M, L, T, I> Sub for Quantity<M, L, T, I> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_si(self.value - rhs.value)
    }
}

impl<M, L, T, I> SubAssign for Quantity<M, L, T, I> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.value -= rhs.value;
    }
}

impl<M, L, T, I> Neg for Quantity<M, L, T, I> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::from_si(-self.value)
    }
}

impl<M, L, T, I> IterSum for Quantity<M, L, T, I> {
    fn sum<It: Iterator<Item = Self>>(iter: It) -> Self {
        Self::from_si(iter.map(|q| q.value).sum())
    }
}

// ------------------------------------------------------------------
// Scaling by bare f64
// ------------------------------------------------------------------

impl<M, L, T, I> Mul<f64> for Quantity<M, L, T, I> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::from_si(self.value * rhs)
    }
}

impl<M, L, T, I> Mul<Quantity<M, L, T, I>> for f64 {
    type Output = Quantity<M, L, T, I>;
    #[inline]
    fn mul(self, rhs: Quantity<M, L, T, I>) -> Quantity<M, L, T, I> {
        Quantity::from_si(self * rhs.value)
    }
}

impl<M, L, T, I> MulAssign<f64> for Quantity<M, L, T, I> {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.value *= rhs;
    }
}

impl<M, L, T, I> Div<f64> for Quantity<M, L, T, I> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::from_si(self.value / rhs)
    }
}

impl<M, L, T, I> DivAssign<f64> for Quantity<M, L, T, I> {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.value /= rhs;
    }
}

// ------------------------------------------------------------------
// Cross-dimension arithmetic: exponents add/subtract in the type system
// ------------------------------------------------------------------

impl<M1, L1, T1, I1, M2, L2, T2, I2> Mul<Quantity<M2, L2, T2, I2>> for Quantity<M1, L1, T1, I1>
where
    M1: TyAdd<M2>,
    L1: TyAdd<L2>,
    T1: TyAdd<T2>,
    I1: TyAdd<I2>,
{
    type Output = Quantity<Sum<M1, M2>, Sum<L1, L2>, Sum<T1, T2>, Sum<I1, I2>>;
    #[inline]
    fn mul(self, rhs: Quantity<M2, L2, T2, I2>) -> Self::Output {
        Quantity::from_si(self.value * rhs.value)
    }
}

impl<M1, L1, T1, I1, M2, L2, T2, I2> Div<Quantity<M2, L2, T2, I2>> for Quantity<M1, L1, T1, I1>
where
    M1: TySub<M2>,
    L1: TySub<L2>,
    T1: TySub<T2>,
    I1: TySub<I2>,
{
    type Output = Quantity<Diff<M1, M2>, Diff<L1, L2>, Diff<T1, T2>, Diff<I1, I2>>;
    #[inline]
    fn div(self, rhs: Quantity<M2, L2, T2, I2>) -> Self::Output {
        Quantity::from_si(self.value / rhs.value)
    }
}

// ------------------------------------------------------------------
// Formatting
// ------------------------------------------------------------------

/// The conventional symbol for a dimension-exponent vector, for the
/// combinations this workspace names; `None` falls back to the composed
/// `kg^a m^b s^c A^d` form.
fn dim_label(m: i32, l: i32, t: i32, i: i32) -> Option<&'static str> {
    match (m, l, t, i) {
        (0, 0, 0, 0) => Some(""),
        (1, 2, -2, 0) => Some("J"),
        (0, 1, 0, 0) => Some("m"),
        (0, 0, 1, 0) => Some("s"),
        (0, 0, 1, 1) => Some("C"),
        (0, 0, 0, 1) => Some("A"),
        (1, 2, -3, -1) => Some("V"),
        (0, 2, 0, 0) => Some("m^2"),
        (0, 3, 0, 0) => Some("m^3"),
        (1, 1, -2, 0) => Some("J/m"),
        (0, -2, -1, 0) => Some("1/(m^2 s)"),
        _ => None,
    }
}

fn fmt_with_label(
    f: &mut fmt::Formatter<'_>,
    value: f64,
    (m, l, t, i): (i32, i32, i32, i32),
) -> fmt::Result {
    match dim_label(m, l, t, i) {
        Some("") => write!(f, "{value}"),
        Some(label) => write!(f, "{value} {label}"),
        None => {
            write!(f, "{value}")?;
            for (sym, exp) in [("kg", m), ("m", l), ("s", t), ("A", i)] {
                if exp != 0 {
                    write!(f, " {sym}^{exp}")?;
                }
            }
            Ok(())
        }
    }
}

impl<M: Integer, L: Integer, T: Integer, I: Integer> fmt::Display for Quantity<M, L, T, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_with_label(f, self.value, (M::I32, L::I32, T::I32, I::I32))
    }
}

impl<M: Integer, L: Integer, T: Integer, I: Integer> fmt::Debug for Quantity<M, L, T, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Quantity(")?;
        fmt_with_label(f, self.value, (M::I32, L::I32, T::I32, I::I32))?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Area, Charge, Current, Energy, Flux, Length, Time, Voltage, Volume};

    #[test]
    fn generic_products_and_quotients_resolve_to_named_aliases() {
        // Every annotation here is a *type-level* assertion: a wrong
        // dimension on the right-hand side would not compile.
        let v: Voltage = Energy::from_ev(2.0) / Charge::from_electrons(1.0);
        assert!((v.volts() - 2.0).abs() < 1e-12);

        let i: Current = Charge::from_fc(4.0) / Time::from_ps(2.0);
        assert!((i.amperes() - 2.0e-3).abs() < 1e-15);

        let e: Energy = Charge::from_coulombs(3.0) * Voltage::from_volts(2.0);
        assert!((e.joules() - 6.0).abs() < 1e-12);

        let a: Area = Length::from_meters(3.0) * Length::from_meters(2.0);
        let vol: Volume = a * Length::from_meters(0.5);
        assert!((vol.si_value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fully_cancelled_products_are_dimensionless() {
        let f = Flux::from_per_m2_second(5.0);
        let n: Dimensionless = f * Area::from_square_meters(2.0) * Time::from_seconds(3.0);
        assert!((n.value() - 30.0).abs() < 1e-12);
        let r: Dimensionless = Energy::from_mev(4.0) / Energy::from_mev(2.0);
        assert!((r.value() - 2.0).abs() < 1e-12);
        assert!((f64::from(r) - 2.0).abs() < 1e-12);
        assert!((Dimensionless::from(2.0).value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qmin_qmax_are_nan_sound() {
        let nan = Energy::from_si(f64::NAN);
        let one = Energy::from_joules(1.0);
        // total_cmp orders NaN above every real value: the finite operand
        // always wins qmin and loses qmax, regardless of operand order.
        assert_eq!(nan.qmin(one), one);
        assert_eq!(one.qmin(nan), one);
        assert!(one.qmax(nan).si_value().is_nan());
        assert!(nan.qmax(one).si_value().is_nan());
        assert_eq!(one.cmp_total(&nan), Ordering::Less);
    }

    #[test]
    fn qmin_qmax_agree_with_order_on_finite_values() {
        let lo = Voltage::from_mv(700.0);
        let hi = Voltage::from_mv(1100.0);
        assert_eq!(lo.qmin(hi), lo);
        assert_eq!(hi.qmin(lo), lo);
        assert_eq!(lo.qmax(hi), hi);
        assert_eq!(hi.qmax(lo), hi);
        assert_eq!(lo.cmp_total(&hi), Ordering::Less);
    }

    #[test]
    fn display_and_debug_labels() {
        assert_eq!(format!("{}", Voltage::from_volts(0.5)), "0.5 V");
        assert_eq!(format!("{}", Dimensionless::new(2.0)), "2");
        // An unnamed composite falls back to the exponent vector.
        let odd = Voltage::from_volts(1.0) * Voltage::from_volts(1.0);
        assert_eq!(format!("{odd}"), "1 kg^2 m^4 s^-6 A^-2");
        assert_eq!(format!("{:?}", Length::from_meters(2.0)), "Quantity(2 m)");
    }

    #[test]
    fn defaults_and_zero() {
        assert_eq!(Energy::default(), Energy::ZERO);
        assert_eq!(Energy::ZERO.si_value(), 0.0);
    }
}
