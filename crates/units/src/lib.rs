//! Compile-time dimensional analysis for the `finrad` workspace.
//!
//! Every physical value that crosses a crate boundary in `finrad` is a
//! [`Quantity<M, L, T, I>`] — an `f64` in SI base units tagged with the
//! exponents of the four SI base dimensions the workspace needs (mass,
//! length, time, electric current) as type-level integers ([`tyint`]).
//! The familiar names ([`Energy`], [`Length`], [`Time`], [`Charge`],
//! [`Current`], [`Voltage`], [`Area`], [`Volume`], [`StoppingPower`],
//! [`Flux`]) are aliases of `Quantity` at fixed exponents, each carrying
//! the constructors and accessors natural in the radiation/soft-error
//! domain (MeV, nm, fs, fC, …).
//!
//! `Mul` and `Div` between *any* two quantities add and subtract the
//! dimension exponents in the type system, so every dimensionally valid
//! product or quotient simply works — `Energy / Charge → Voltage`,
//! `Charge / Time → Current`, `Energy / Length → StoppingPower`,
//! `Flux · Area · Time → Dimensionless` — and every invalid one is a
//! compile error (see *Dimensional safety* below). There is no
//! hand-enumerated cross-dimension `impl` matrix to fall out of date.
//!
//! # Examples
//!
//! ```
//! use finrad_units::{Energy, Length, Charge, constants};
//!
//! let deposited = Energy::from_kev(3.6);
//! let pairs = (deposited / constants::EHP_PAIR_ENERGY).value();
//! assert!((pairs - 1000.0).abs() < 1e-9);
//!
//! let fin_width = Length::from_nm(8.0);
//! assert!((fin_width.meters() - 8.0e-9).abs() < 1e-24);
//!
//! let q = Charge::from_electrons(1000.0);
//! assert!((q.femtocoulombs() - 0.1602176634).abs() < 1e-9);
//! ```
//!
//! # Dimensional safety
//!
//! Dimensionally invalid expressions are rejected by the compiler. Each of
//! the following is a `compile_fail` doctest — the CI gate runs them and
//! fails if any of them *starts* compiling.
//!
//! Adding quantities of different dimensions (an MeV-vs-fC slip):
//!
//! ```compile_fail,E0308
//! use finrad_units::{Charge, Energy};
//! let _ = Energy::from_kev(10.0) + Charge::from_fc(1.0);
//! ```
//!
//! Subtracting a time from an energy:
//!
//! ```compile_fail,E0308
//! use finrad_units::{Energy, Time};
//! let _ = Energy::from_mev(1.0) - Time::from_ps(1.0);
//! ```
//!
//! Passing a `Length` where a `Time` is expected:
//!
//! ```compile_fail,E0308
//! use finrad_units::{Length, Time};
//! fn pulse_width(tau: Time) -> f64 { tau.picoseconds() }
//! let _ = pulse_width(Length::from_nm(10.0));
//! ```
//!
//! `Voltage · Voltage` is not an `Energy`:
//!
//! ```compile_fail,E0308
//! use finrad_units::{Energy, Voltage};
//! let _: Energy = Voltage::from_volts(0.8) * Voltage::from_volts(0.8);
//! ```
//!
//! `Charge / Length` is not a `Current` (only `Charge / Time` is):
//!
//! ```compile_fail,E0308
//! use finrad_units::{Charge, Current, Length};
//! let _: Current = Charge::from_fc(1.0) / Length::from_nm(5.0);
//! ```
//!
//! Ordering comparisons only exist between like dimensions:
//!
//! ```compile_fail,E0308
//! use finrad_units::{Charge, Energy};
//! let _ = Energy::from_ev(1.0) < Charge::from_fc(1.0);
//! ```
//!
//! Compound assignment cannot mix dimensions either:
//!
//! ```compile_fail
//! use finrad_units::{Charge, Energy};
//! let mut e = Energy::from_mev(1.0);
//! e += Charge::from_fc(1.0);
//! ```
//!
//! `Flux · Area` alone is not dimensionless — the exposure time is missing:
//!
//! ```compile_fail,E0308
//! use finrad_units::{Area, Dimensionless, Flux};
//! let _: Dimensionless = Flux::from_per_m2_second(1.0) * Area::from_square_meters(1.0);
//! ```
//!
//! Reading a quantity out in another dimension's unit is a missing method:
//!
//! ```compile_fail,E0599
//! use finrad_units::Energy;
//! let _ = Energy::from_mev(1.0).volts();
//! ```
//!
//! Exponents are bounded to `[-8, +8]`; a runaway product leaves the range
//! and stops compiling instead of silently wrapping:
//!
//! ```compile_fail,E0277
//! use finrad_units::{Length, Volume};
//! let v: Volume = Length::from_nm(1.0) * Length::from_nm(1.0) * Length::from_nm(1.0);
//! let _ = v * v * v; // m^9 is out of the supported exponent range
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::fmt;

pub mod quantity;
pub mod tyint;

pub use quantity::{Dimensionless, Quantity};

use tyint::{N1, N2, N3, P1, P2, P3, Z0};

/// Particle or deposited energy (`M·L²·T⁻²`). SI base unit: joule.
///
/// ```
/// use finrad_units::Energy;
/// let e = Energy::from_mev(1.0);
/// assert!((e.kev() - 1000.0).abs() < 1e-9);
/// ```
pub type Energy = Quantity<P1, P2, N2, Z0>;

/// Spatial extent (`L`). SI base unit: metre.
///
/// ```
/// use finrad_units::Length;
/// assert!((Length::from_nm(1000.0).micrometers() - 1.0).abs() < 1e-12);
/// ```
pub type Length = Quantity<Z0, P1, Z0, Z0>;

/// Elapsed time or pulse width (`T`). SI base unit: second.
///
/// ```
/// use finrad_units::Time;
/// assert!((Time::from_fs(1.0e6).nanoseconds() - 1.0).abs() < 1e-12);
/// ```
pub type Time = Quantity<Z0, Z0, P1, Z0>;

/// Electric charge (`T·I`). SI base unit: coulomb.
///
/// ```
/// use finrad_units::Charge;
/// let q = Charge::from_fc(1.0);
/// assert!(q.electrons() > 6000.0);
/// ```
pub type Charge = Quantity<Z0, Z0, P1, P1>;

/// Electric current (`I`). SI base unit: ampere.
///
/// ```
/// use finrad_units::Current;
/// assert!((Current::from_ua(1.0).amperes() - 1.0e-6).abs() < 1e-18);
/// ```
pub type Current = Quantity<Z0, Z0, Z0, P1>;

/// Electric potential (`M·L²·T⁻³·I⁻¹`). SI base unit: volt.
///
/// ```
/// use finrad_units::Voltage;
/// assert!((Voltage::from_mv(700.0).volts() - 0.7).abs() < 1e-12);
/// ```
pub type Voltage = Quantity<P1, P2, N3, N1>;

/// Surface area (`L²`). SI base unit: square metre.
///
/// ```
/// use finrad_units::{Area, Length};
/// let a = Length::from_nm(10.0) * Length::from_nm(10.0);
/// assert!((a.square_micrometers() - 1.0e-4).abs() < 1e-15);
/// ```
pub type Area = Quantity<Z0, P2, Z0, Z0>;

/// Volume (`L³`). SI base unit: cubic metre.
///
/// ```
/// use finrad_units::{Length, Volume};
/// let v: Volume = Length::from_nm(10.0) * (Length::from_nm(10.0) * Length::from_nm(10.0));
/// assert!(v.cubic_micrometers() > 0.0);
/// ```
pub type Volume = Quantity<Z0, P3, Z0, Z0>;

/// Linear electronic stopping power, energy lost per unit path length
/// (`M·L·T⁻²`). SI base unit: joule per metre.
///
/// ```
/// use finrad_units::StoppingPower;
/// let s = StoppingPower::from_kev_per_um(100.0);
/// assert!((s.kev_per_um() - 100.0).abs() < 1e-9);
/// ```
pub type StoppingPower = Quantity<P1, P1, N2, Z0>;

/// Integral particle flux: particles per unit area per unit time
/// (`L⁻²·T⁻¹`). SI base unit: 1/(m²·s).
///
/// ```
/// use finrad_units::Flux;
/// let f = Flux::from_per_cm2_hour(0.001);
/// assert!(f.per_m2_second() > 0.0);
/// ```
pub type Flux = Quantity<Z0, N2, N1, Z0>;

// ------------------------------------------------------------------
// Unit-specific constructors / accessors
// ------------------------------------------------------------------

/// Joules per electron-volt.
const J_PER_EV: f64 = 1.602_176_634e-19;

impl Energy {
    /// Builds an energy from electron-volts.
    #[inline]
    pub fn from_ev(ev: f64) -> Self {
        Self::from_si(ev * J_PER_EV)
    }

    /// Builds an energy from kilo-electron-volts.
    #[inline]
    pub fn from_kev(kev: f64) -> Self {
        Self::from_ev(kev * 1.0e3)
    }

    /// Builds an energy from mega-electron-volts.
    #[inline]
    pub fn from_mev(mev: f64) -> Self {
        Self::from_ev(mev * 1.0e6)
    }

    /// Builds an energy from joules.
    #[inline]
    pub fn from_joules(j: f64) -> Self {
        Self::from_si(j)
    }

    /// Energy in electron-volts.
    #[inline]
    pub fn ev(self) -> f64 {
        self.si_value() / J_PER_EV
    }

    /// Energy in kilo-electron-volts.
    #[inline]
    pub fn kev(self) -> f64 {
        self.ev() * 1.0e-3
    }

    /// Energy in mega-electron-volts.
    #[inline]
    pub fn mev(self) -> f64 {
        self.ev() * 1.0e-6
    }

    /// Energy in joules.
    #[inline]
    pub fn joules(self) -> f64 {
        self.si_value()
    }
}

impl Length {
    /// Builds a length from metres.
    #[inline]
    pub fn from_meters(m: f64) -> Self {
        Self::from_si(m)
    }

    /// Builds a length from centimetres.
    #[inline]
    pub fn from_cm(cm: f64) -> Self {
        Self::from_si(cm * 1.0e-2)
    }

    /// Builds a length from micrometres.
    #[inline]
    pub fn from_um(um: f64) -> Self {
        Self::from_si(um * 1.0e-6)
    }

    /// Builds a length from nanometres.
    #[inline]
    pub fn from_nm(nm: f64) -> Self {
        Self::from_si(nm * 1.0e-9)
    }

    /// Length in metres.
    #[inline]
    pub fn meters(self) -> f64 {
        self.si_value()
    }

    /// Length in centimetres.
    #[inline]
    pub fn centimeters(self) -> f64 {
        self.si_value() * 1.0e2
    }

    /// Length in micrometres.
    #[inline]
    pub fn micrometers(self) -> f64 {
        self.si_value() * 1.0e6
    }

    /// Length in nanometres.
    #[inline]
    pub fn nanometers(self) -> f64 {
        self.si_value() * 1.0e9
    }
}

impl Time {
    /// Builds a time from seconds.
    #[inline]
    pub fn from_seconds(s: f64) -> Self {
        Self::from_si(s)
    }

    /// Builds a time from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self::from_si(h * 3600.0)
    }

    /// Builds a time from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Self::from_si(ns * 1.0e-9)
    }

    /// Builds a time from picoseconds.
    #[inline]
    pub fn from_ps(ps: f64) -> Self {
        Self::from_si(ps * 1.0e-12)
    }

    /// Builds a time from femtoseconds.
    #[inline]
    pub fn from_fs(fs: f64) -> Self {
        Self::from_si(fs * 1.0e-15)
    }

    /// Time in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.si_value()
    }

    /// Time in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.si_value() / 3600.0
    }

    /// Time in nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.si_value() * 1.0e9
    }

    /// Time in picoseconds.
    #[inline]
    pub fn picoseconds(self) -> f64 {
        self.si_value() * 1.0e12
    }

    /// Time in femtoseconds.
    #[inline]
    pub fn femtoseconds(self) -> f64 {
        self.si_value() * 1.0e15
    }
}

impl Charge {
    /// Builds a charge from coulombs.
    #[inline]
    pub fn from_coulombs(c: f64) -> Self {
        Self::from_si(c)
    }

    /// Builds a charge from femtocoulombs.
    #[inline]
    pub fn from_fc(fc: f64) -> Self {
        Self::from_si(fc * 1.0e-15)
    }

    /// Builds a charge carried by `n` elementary charges.
    #[inline]
    pub fn from_electrons(n: f64) -> Self {
        Self::from_si(n * constants::ELEMENTARY_CHARGE.si_value())
    }

    /// Charge in coulombs.
    #[inline]
    pub fn coulombs(self) -> f64 {
        self.si_value()
    }

    /// Charge in femtocoulombs.
    #[inline]
    pub fn femtocoulombs(self) -> f64 {
        self.si_value() * 1.0e15
    }

    /// Equivalent number of elementary charges.
    #[inline]
    pub fn electrons(self) -> f64 {
        self.si_value() / constants::ELEMENTARY_CHARGE.si_value()
    }
}

impl Current {
    /// Builds a current from amperes.
    #[inline]
    pub fn from_amperes(a: f64) -> Self {
        Self::from_si(a)
    }

    /// Builds a current from microamperes.
    #[inline]
    pub fn from_ua(ua: f64) -> Self {
        Self::from_si(ua * 1.0e-6)
    }

    /// Builds a current from milliamperes.
    #[inline]
    pub fn from_ma(ma: f64) -> Self {
        Self::from_si(ma * 1.0e-3)
    }

    /// Current in amperes.
    #[inline]
    pub fn amperes(self) -> f64 {
        self.si_value()
    }

    /// Current in microamperes.
    #[inline]
    pub fn microamperes(self) -> f64 {
        self.si_value() * 1.0e6
    }
}

impl Voltage {
    /// Builds a voltage from volts.
    #[inline]
    pub fn from_volts(v: f64) -> Self {
        Self::from_si(v)
    }

    /// Builds a voltage from millivolts.
    #[inline]
    pub fn from_mv(mv: f64) -> Self {
        Self::from_si(mv * 1.0e-3)
    }

    /// Voltage in volts.
    #[inline]
    pub fn volts(self) -> f64 {
        self.si_value()
    }

    /// Voltage in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.si_value() * 1.0e3
    }
}

impl Area {
    /// Builds an area from square metres.
    #[inline]
    pub fn from_square_meters(m2: f64) -> Self {
        Self::from_si(m2)
    }

    /// Builds an area from square centimetres.
    #[inline]
    pub fn from_square_cm(cm2: f64) -> Self {
        Self::from_si(cm2 * 1.0e-4)
    }

    /// Builds an area from square micrometres.
    #[inline]
    pub fn from_square_um(um2: f64) -> Self {
        Self::from_si(um2 * 1.0e-12)
    }

    /// Area in square metres.
    #[inline]
    pub fn square_meters(self) -> f64 {
        self.si_value()
    }

    /// Area in square centimetres.
    #[inline]
    pub fn square_cm(self) -> f64 {
        self.si_value() * 1.0e4
    }

    /// Area in square micrometres.
    #[inline]
    pub fn square_micrometers(self) -> f64 {
        self.si_value() * 1.0e12
    }
}

impl Volume {
    /// Builds a volume from cubic metres.
    #[inline]
    pub fn from_cubic_meters(m3: f64) -> Self {
        Self::from_si(m3)
    }

    /// Volume in cubic micrometres.
    #[inline]
    pub fn cubic_micrometers(self) -> f64 {
        self.si_value() * 1.0e18
    }
}

impl StoppingPower {
    /// Builds a stopping power from keV per micrometre (the natural unit for
    /// charged-particle energy loss in silicon devices).
    #[inline]
    pub fn from_kev_per_um(s: f64) -> Self {
        Self::from_si(s * 1.0e3 * J_PER_EV / 1.0e-6)
    }

    /// Builds a stopping power from MeV·cm²/g given a mass density, i.e.
    /// converts a *mass* stopping power into a *linear* one.
    #[inline]
    pub fn from_mass_stopping(mev_cm2_per_g: f64, density_g_per_cm3: f64) -> Self {
        // MeV/cm = (MeV cm^2/g) * (g/cm^3)
        let mev_per_cm = mev_cm2_per_g * density_g_per_cm3;
        Self::from_si(mev_per_cm * 1.0e6 * J_PER_EV / 1.0e-2)
    }

    /// Stopping power in keV per micrometre.
    #[inline]
    pub fn kev_per_um(self) -> f64 {
        self.si_value() / (1.0e3 * J_PER_EV) * 1.0e-6
    }

    /// Stopping power in MeV per centimetre.
    #[inline]
    pub fn mev_per_cm(self) -> f64 {
        self.si_value() / (1.0e6 * J_PER_EV) * 1.0e-2
    }
}

impl Flux {
    /// Builds a flux from particles per square metre per second.
    #[inline]
    pub fn from_per_m2_second(f: f64) -> Self {
        Self::from_si(f)
    }

    /// Builds a flux from particles per square centimetre per hour (the unit
    /// used for alpha emission rates, e.g. the paper's 0.001 α/(h·cm²)).
    #[inline]
    pub fn from_per_cm2_hour(f: f64) -> Self {
        Self::from_si(f / 1.0e-4 / 3600.0)
    }

    /// Flux in particles per square metre per second.
    #[inline]
    pub fn per_m2_second(self) -> f64 {
        self.si_value()
    }

    /// Flux in particles per square centimetre per hour.
    #[inline]
    pub fn per_cm2_hour(self) -> f64 {
        self.si_value() * 1.0e-4 * 3600.0
    }
}

/// Physical constants used throughout the workspace.
pub mod constants {
    use super::{Charge, Energy, J_PER_EV};

    /// The elementary charge, in coulombs.
    pub const ELEMENTARY_CHARGE: Charge = Charge::from_si(1.602_176_634e-19);

    /// Mean energy to create one electron–hole pair in silicon: 3.6 eV
    /// (the paper's Section 3.2).
    pub const EHP_PAIR_ENERGY: Energy = Energy::from_si(3.6 * J_PER_EV);

    /// Fano factor of silicon — variance suppression of the pair count
    /// relative to Poisson statistics.
    pub const SILICON_FANO_FACTOR: f64 = 0.115;

    /// Proton rest energy, MeV.
    pub const PROTON_REST_MEV: f64 = 938.272_088;

    /// Alpha-particle rest energy, MeV.
    pub const ALPHA_REST_MEV: f64 = 3727.379_4;

    /// Electron rest energy, MeV.
    pub const ELECTRON_REST_MEV: f64 = 0.510_998_95;

    /// Atomic number of silicon.
    pub const SILICON_Z: f64 = 14.0;

    /// Standard atomic weight of silicon, g/mol.
    pub const SILICON_A: f64 = 28.0855;

    /// Mass density of silicon, g/cm³.
    pub const SILICON_DENSITY_G_CM3: f64 = 2.329;

    /// Mean excitation energy of silicon, eV (ICRU-49 value).
    pub const SILICON_MEAN_EXCITATION_EV: f64 = 173.0;

    /// Bethe-formula prefactor K = 4π·N_A·r_e²·m_e·c², in MeV·cm²/mol.
    pub const BETHE_K_MEV_CM2_PER_MOL: f64 = 0.307_075;

    /// Hours per 10⁹ device-hours — the FIT normalization constant.
    pub const FIT_HOURS: f64 = 1.0e9;
}

/// The directly ionizing particle species studied by the paper.
///
/// The paper analyses soft errors from **alpha particles** (terrestrial,
/// emitted by package impurities) and **low-energy protons** (atmospheric,
/// important beyond the 65 nm node); neutrons act only through secondaries
/// and are explicitly left to future work.
///
/// # Examples
///
/// ```
/// use finrad_units::Particle;
///
/// assert_eq!(Particle::Alpha.charge_number(), 2.0);
/// assert!(Particle::Alpha.rest_energy_mev() > Particle::Proton.rest_energy_mev());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Particle {
    /// A proton (hydrogen nucleus), charge +1.
    Proton,
    /// An alpha particle (helium nucleus), charge +2, ≈ 4× proton mass.
    Alpha,
}

impl Particle {
    /// Both species, in a fixed order (useful for sweeps).
    pub const ALL: [Particle; 2] = [Particle::Proton, Particle::Alpha];

    /// Charge number `z` of the bare ion.
    #[inline]
    pub fn charge_number(self) -> f64 {
        match self {
            Particle::Proton => 1.0,
            Particle::Alpha => 2.0,
        }
    }

    /// Rest energy `m·c²` in MeV.
    #[inline]
    pub fn rest_energy_mev(self) -> f64 {
        match self {
            Particle::Proton => constants::PROTON_REST_MEV,
            Particle::Alpha => constants::ALPHA_REST_MEV,
        }
    }

    /// Mass in atomic mass units (approximately; used for velocity scaling).
    #[inline]
    pub fn mass_amu(self) -> f64 {
        match self {
            Particle::Proton => 1.007_276,
            Particle::Alpha => 4.001_506,
        }
    }

    /// Speed in metres per second at kinetic energy `energy`.
    #[inline]
    pub fn speed_m_per_s(self, energy: Energy) -> f64 {
        kinematics::speed_m_per_s(energy.mev(), self.rest_energy_mev())
    }

    /// Human-readable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Particle::Proton => "proton",
            Particle::Alpha => "alpha",
        }
    }
}

impl fmt::Display for Particle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Kinematics helpers for non-relativistic → relativistic particles.
pub mod kinematics {
    /// β² = 1 − 1/γ² for a particle with kinetic energy `t_mev` and rest
    /// energy `rest_mev`.
    ///
    /// # Examples
    ///
    /// ```
    /// use finrad_units::kinematics::beta_squared;
    /// // 1 MeV proton is slow: beta^2 ~ 2T/mc^2
    /// let b2 = beta_squared(1.0, finrad_units::constants::PROTON_REST_MEV);
    /// assert!((b2 - 2.0 / 938.272).abs() / b2 < 0.01);
    /// ```
    pub fn beta_squared(t_mev: f64, rest_mev: f64) -> f64 {
        let gamma = 1.0 + t_mev / rest_mev;
        1.0 - 1.0 / (gamma * gamma)
    }

    /// Lorentz factor γ for a particle with kinetic energy `t_mev`.
    pub fn gamma(t_mev: f64, rest_mev: f64) -> f64 {
        1.0 + t_mev / rest_mev
    }

    /// Particle speed in metres per second.
    pub fn speed_m_per_s(t_mev: f64, rest_mev: f64) -> f64 {
        const C: f64 = 2.997_924_58e8;
        beta_squared(t_mev, rest_mev).sqrt() * C
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_round_trips() {
        let e = Energy::from_mev(2.5);
        assert!((e.kev() - 2500.0).abs() < 1e-9);
        assert!((e.ev() - 2.5e6).abs() < 1e-3);
        assert!((Energy::from_ev(e.ev()).joules() - e.joules()).abs() < 1e-30);
    }

    #[test]
    fn length_unit_round_trips() {
        let l = Length::from_nm(48.0);
        assert!((l.micrometers() - 0.048).abs() < 1e-12);
        assert!((l.centimeters() - 48.0e-7).abs() < 1e-18);
    }

    #[test]
    fn time_unit_round_trips() {
        let t = Time::from_fs(12.0);
        assert!((t.picoseconds() - 0.012).abs() < 1e-12);
        assert!((Time::from_hours(1.0).seconds() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn charge_electron_count() {
        let q = Charge::from_electrons(1.0);
        assert!((q.coulombs() - 1.602_176_634e-19).abs() < 1e-30);
        assert!((Charge::from_fc(1.0).electrons() - 6241.509).abs() < 1.0);
    }

    #[test]
    fn pulse_relation_eq3() {
        // I = Q / tau (paper Eq. 3)
        let n_e = 1000.0;
        let q = Charge::from_electrons(n_e);
        let tau = Time::from_fs(10.0);
        let i = q / tau;
        assert!((i.microamperes() - q.coulombs() / tau.seconds() * 1.0e6).abs() < 1e-9);
        // Round-trip: I * tau == Q
        let q2 = i * tau;
        assert!((q2.electrons() - n_e).abs() < 1e-6);
    }

    #[test]
    fn ehp_pair_count_from_energy() {
        let deposited = Energy::from_mev(1.0);
        let pairs = (deposited / constants::EHP_PAIR_ENERGY).value();
        assert!((pairs - 1.0e6 / 3.6).abs() < 1.0);
    }

    #[test]
    fn stopping_power_conversions() {
        let s = StoppingPower::from_kev_per_um(100.0);
        // 100 keV/um = 1e6 keV/cm = 1000 MeV/cm
        assert!((s.mev_per_cm() - 1000.0).abs() < 1e-6);
        // Mass stopping round trip
        let s2 = StoppingPower::from_mass_stopping(
            s.mev_per_cm() / constants::SILICON_DENSITY_G_CM3,
            constants::SILICON_DENSITY_G_CM3,
        );
        assert!((s2.kev_per_um() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_from_chord_times_stopping() {
        let s = StoppingPower::from_kev_per_um(250.0);
        let chord = Length::from_nm(10.0);
        let de: Energy = s * chord;
        assert!((de.kev() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn flux_alpha_emission_rate() {
        let f = Flux::from_per_cm2_hour(0.001);
        assert!((f.per_cm2_hour() - 0.001).abs() < 1e-15);
        // 0.001 / (1e-4 m^2 * 3600 s)
        assert!((f.per_m2_second() - 0.001 / 1.0e-4 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn area_volume_composition() {
        let a = Length::from_nm(8.0) * Length::from_nm(30.0);
        let v = a * Length::from_nm(20.0);
        assert!((v.cubic_micrometers() - 8.0e-3 * 30.0e-3 * 20.0e-3).abs() < 1e-15);
    }

    #[test]
    fn quantity_ordering_and_clamp() {
        let lo = Voltage::from_mv(700.0);
        let hi = Voltage::from_mv(1100.0);
        assert!(lo < hi);
        let mid = Voltage::from_volts(2.0).clamp(lo, hi);
        assert_eq!(mid, hi);
        assert_eq!(lo.qmax(hi), hi);
        assert_eq!(lo.qmin(hi), lo);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Voltage::from_volts(1.0).clamp(Voltage::from_volts(2.0), Voltage::from_volts(1.0));
    }

    #[test]
    fn ratio_is_dimensionless() {
        let r: Dimensionless = Energy::from_mev(4.0) / Energy::from_mev(2.0);
        assert!((r.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Energy = (1..=4).map(|i| Energy::from_mev(i as f64)).sum();
        assert!((total.mev() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn kinematics_limits() {
        use constants::*;
        // Non-relativistic limit: beta^2 ≈ 2T/m
        let b2 = kinematics::beta_squared(0.1, PROTON_REST_MEV);
        assert!((b2 - 2.0 * 0.1 / PROTON_REST_MEV).abs() / b2 < 0.001);
        // Ultra-relativistic limit: beta -> 1
        let b2_hi = kinematics::beta_squared(1.0e6, PROTON_REST_MEV);
        assert!(b2_hi > 0.999_99);
        // Speeds are below c
        assert!(kinematics::speed_m_per_s(10.0, ALPHA_REST_MEV) < 2.997_924_58e8);
    }

    #[test]
    fn alpha_slower_than_proton_at_same_energy() {
        // Same kinetic energy, 4x mass => alpha slower (paper §6 discussion).
        use constants::*;
        let vp = kinematics::speed_m_per_s(5.0, PROTON_REST_MEV);
        let va = kinematics::speed_m_per_s(5.0, ALPHA_REST_MEV);
        assert!(va < vp);
        // sqrt(mass ratio) ~ 2, with a small relativistic correction
        assert!((vp / va - 2.0).abs() < 0.02);
    }

    #[test]
    fn display_includes_unit_label() {
        assert!(format!("{}", Voltage::from_volts(0.8)).contains('V'));
        assert!(format!("{}", Length::from_meters(1.0)).contains('m'));
    }
}

/// Bit-identity proofs that every retired hand-written cross-dimension
/// `impl Mul`/`impl Div` has an exactly equivalent generic replacement:
/// same `f64` bit pattern, same (now type-checked) output dimension.
#[cfg(test)]
mod retired_impl_equivalence {
    use super::*;

    /// Deterministic grid point `i` of `n` in `[lo, hi]`.
    fn grid(i: u32, n: u32, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (i as f64 + 0.5) / n as f64
    }

    /// Asserts that `$a $op $b` (the generic impl) produces the same bits
    /// as the raw `f64` expression that the retired hand-written impl
    /// evaluated, and that the result has the annotated output type.
    macro_rules! assert_retired_impl {
        ($out:ty, $a:expr, *, $b:expr) => {{
            let out: $out = $a * $b;
            assert_eq!(
                out.si_value().to_bits(),
                ($a.si_value() * $b.si_value()).to_bits()
            );
        }};
        ($out:ty, $a:expr, /, $b:expr) => {{
            let out: $out = $a / $b;
            assert_eq!(
                out.si_value().to_bits(),
                ($a.si_value() / $b.si_value()).to_bits()
            );
        }};
    }

    #[test]
    fn all_retired_impls_bit_identical() {
        for i in 0..50 {
            for j in 0..50 {
                let x = grid(i, 50, 1.0e-9, 1.0e3);
                let y = grid(j, 50, 1.0e-6, 1.0e4);
                // Charge = Current × Time (both orders) and its inverses.
                assert_retired_impl!(Charge, Current::from_amperes(x), *, Time::from_seconds(y));
                assert_retired_impl!(Charge, Time::from_seconds(x), *, Current::from_amperes(y));
                assert_retired_impl!(Current, Charge::from_coulombs(x), /, Time::from_seconds(y));
                assert_retired_impl!(Time, Charge::from_coulombs(x), /, Current::from_amperes(y));
                // Area / Volume composition.
                assert_retired_impl!(Area, Length::from_meters(x), *, Length::from_meters(y));
                assert_retired_impl!(Volume, Area::from_square_meters(x), *, Length::from_meters(y));
                assert_retired_impl!(Volume, Length::from_meters(x), *, Area::from_square_meters(y));
                // Energy along a chord (both orders) and its inverse.
                assert_retired_impl!(Energy, StoppingPower::from_kev_per_um(x), *, Length::from_meters(y));
                assert_retired_impl!(Energy, Length::from_meters(x), *, StoppingPower::from_kev_per_um(y));
                assert_retired_impl!(StoppingPower, Energy::from_joules(x), /, Length::from_meters(y));
                // Energy = Charge × Voltage.
                assert_retired_impl!(Energy, Charge::from_coulombs(x), *, Voltage::from_volts(y));
            }
        }
    }

    #[test]
    fn like_ratio_bit_identical_with_retired_div() {
        // The retired `impl Div for $name` returned a bare f64; the generic
        // quotient is Dimensionless with the same bits.
        for i in 0..200 {
            let x = grid(i, 200, 1.0e-9, 1.0e6);
            let y = grid(199 - i, 200, 1.0e-9, 1.0e6);
            macro_rules! chk {
                ($ctor:expr) => {{
                    let ratio: Dimensionless = $ctor(x) / $ctor(y);
                    assert_eq!(ratio.value().to_bits(), (x / y).to_bits());
                }};
            }
            chk!(Energy::from_joules);
            chk!(Length::from_meters);
            chk!(Time::from_seconds);
            chk!(Charge::from_coulombs);
            chk!(Current::from_amperes);
            chk!(Voltage::from_volts);
            chk!(Area::from_square_meters);
            chk!(Volume::from_cubic_meters);
            chk!(Flux::from_per_m2_second);
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;

    /// Deterministic grid point `i` of `n` in `[lo, hi]` — replaces the
    /// external property-testing dependency with exhaustive small sweeps.
    fn grid(i: u32, n: u32, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (i as f64 + 0.5) / n as f64
    }

    #[test]
    fn add_then_sub_round_trips() {
        for i in 0..40 {
            for j in 0..40 {
                let a = grid(i, 40, -1.0e3, 1.0e3);
                let b = grid(j, 40, -1.0e3, 1.0e3);
                let x = Energy::from_mev(a);
                let y = Energy::from_mev(b);
                let back = (x + y) - y;
                assert!((back.mev() - a).abs() <= 1e-9 * (1.0 + a.abs() + b.abs()));
            }
        }
    }

    #[test]
    fn scaling_is_linear() {
        for i in 0..50 {
            for j in 0..50 {
                let a = grid(i, 50, 1.0e-3, 1.0e3);
                let k = grid(j, 50, 1.0e-3, 1.0e3);
                let x = Length::from_um(a);
                assert!(((x * k).micrometers() - a * k).abs() <= 1e-9 * a * k);
            }
        }
    }

    #[test]
    fn charge_time_current_triangle() {
        for i in 0..60 {
            for j in 0..60 {
                let n = grid(i, 60, 1.0, 1.0e7);
                let fs = grid(j, 60, 0.5, 1.0e4);
                let q = Charge::from_electrons(n);
                let tau = Time::from_fs(fs);
                let i_pulse = q / tau;
                let q2 = i_pulse * tau;
                assert!((q2.electrons() - n).abs() / n < 1e-12);
            }
        }
    }

    #[test]
    fn unit_round_trip_energy() {
        for i in 0..2000 {
            let mev = grid(i, 2000, 1.0e-6, 1.0e7);
            let e = Energy::from_mev(mev);
            assert!((Energy::from_kev(e.kev()).mev() - mev).abs() / mev < 1e-12);
        }
    }

    #[test]
    fn clamp_within_bounds() {
        for i in 0..500 {
            let v = grid(i, 500, -10.0, 10.0);
            let lo = Voltage::from_volts(0.0);
            let hi = Voltage::from_volts(1.0);
            let c = Voltage::from_volts(v).clamp(lo, hi);
            assert!(c >= lo && c <= hi);
        }
    }
}
