//! Flow-sensitive concurrency lint families.
//!
//! Built on [`crate::cfg`] + [`crate::dataflow`], these families analyze
//! every workspace `fn` body *together* (a lightweight interprocedural
//! layer over a name-keyed function index) and emit four diagnostics:
//!
//! * `lock-order-audit` — the workspace lock-acquisition graph: while a
//!   guard for lock `a` is live, acquiring lock `b` (directly or through a
//!   call whose transitive lock set contains `b`) adds the edge `a → b`; a
//!   cycle in that graph is a potential deadlock. The family also flags the
//!   inline poisoned-lock recovery idiom (`unwrap_or_else(|p|
//!   p.into_inner())`) anywhere outside the sanctioned
//!   `finrad_spice::sync` module.
//! * `guard-lifetime-audit` — a lock guard provably live across a blocking
//!   call: a SPICE solve, a `Condvar` wait consuming a *different* guard,
//!   `JoinHandle::join`, `sleep`, channel `recv`, checkpoint `save`, or any
//!   function that transitively blocks. The guard a condvar wait consumes
//!   is exempt (that is the sanctioned wait pattern).
//! * `cancellation-responsiveness` — every *blocking, unbounded* loop
//!   reachable from a supervised entry point (a function named inside a
//!   `spawn(..)` call) must poll cancellation (`is_cancelled`,
//!   `cancelled_reason`, a `stopping` flag) or call a function that
//!   transitively does. Bounded loops (`for`, `while let`, `while` with a
//!   comparison in the condition) are exempt.
//! * `result-discard-audit` — a `Result` from a workspace function (or
//!   `JoinHandle::join`) dropped via `let _ = …` or bound to a name that is
//!   never read again.
//!
//! Every approximation leans toward silence on idiomatic code: calls
//! through function-typed *parameters* are opaque, bare-`self` receivers
//! have unknown lock identity and are skipped, and guard bindings are only
//! tracked when the acquisition heads the binding's own call chain.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::cfg::{self, Cfg, LoopKind};
use crate::dataflow;
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::lints::{LintId, Violation};

/// One lexed workspace file, the unit of input to [`analyze`].
pub struct FileUnit {
    /// Repo-relative path (used in diagnostics and for sanctioning).
    pub path: PathBuf,
    /// Its token stream.
    pub lexed: LexedFile,
}

/// The sanctioned poison-recovery helpers in `spice/src/sync.rs`: their
/// bodies are exempt from acquisition tracking, and *calls* to them are the
/// blessed acquisition/wait forms.
pub const SYNC_HELPERS: [&str; 3] = [
    "lock_recovering",
    "wait_recovering",
    "wait_timeout_recovering",
];

/// Zero-argument methods that acquire a lock primitive.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Condvar-style waits: blocking calls that *consume* a guard argument.
const WAIT_CALLS: [&str; 4] = [
    "wait",
    "wait_timeout",
    "wait_recovering",
    "wait_timeout_recovering",
];

/// Call names that block the calling thread (seeds of the transitive
/// blocking closure). SPICE solver entry points count: a solve under a held
/// lock serializes the whole worker pool. `save` covers checkpoint I/O;
/// `load` is omitted (too many innocuous `load` methods exist).
const BLOCKING_SEEDS: [&str; 20] = [
    "join",
    "catch_unwind",
    "sleep",
    "park",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_recovering",
    "wait_timeout_recovering",
    "save",
    "dc_operating_point",
    "dc_operating_point_from",
    "dc_operating_point_warm",
    "dc_operating_point_with_recovery",
    "transient",
    "transient_with_trace",
    "transient_from_state",
    "transient_until",
    "run_transient",
];

/// Idents whose presence satisfies cancellation polling (token methods and
/// the service's `stopping` flag).
const POLL_MARKERS: [&str; 3] = ["is_cancelled", "cancelled_reason", "stopping"];

/// Non-workspace methods known to return `Result`.
const RESULT_METHODS: [&str; 1] = ["join"];

/// Chain combinators that hand a guard through unchanged, so
/// `let g = m.lock().unwrap();` still binds a guard.
const TRANSPARENT_COMBINATORS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Primitive concurrency names (`lock`, `wait`, the sync helpers, poll
/// markers, blocking seeds) are modeled *directly* by the analysis; a call
/// to one must not also resolve to a same-named workspace function, or
/// collisions like `Condvar::wait` → `CampaignService::wait` thread
/// phantom blocking/lock facts through the call graph.
fn primitive_name(name: &str) -> bool {
    BLOCKING_SEEDS.contains(&name)
        || ACQUIRE_METHODS.contains(&name)
        || SYNC_HELPERS.contains(&name)
        || POLL_MARKERS.contains(&name)
}

// ---------------------------------------------------------------------------
// Function index
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FnDef {
    name: String,
    file: usize,
    /// Token indices of the body braces (inclusive).
    body: (usize, usize),
    params: BTreeSet<String>,
    returns_result: bool,
    in_test: bool,
    /// True for the `finrad_spice::sync` helper implementations.
    sanctioned: bool,
}

#[derive(Debug, Default, Clone)]
struct FnFacts {
    calls: BTreeSet<String>,
    locks: BTreeSet<String>,
    blocking: bool,
    polls: bool,
}

fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn extract_fns(units: &[FileUnit]) -> Vec<FnDef> {
    let mut out = Vec::new();
    for (fi, u) in units.iter().enumerate() {
        let toks = &u.lexed.tokens;
        let sync_file = u.path.ends_with(Path::new("spice/src/sync.rs"));
        let mut k = 0;
        while k < toks.len() {
            if !(toks[k].kind == TokenKind::Ident && toks[k].text == "fn") {
                k += 1;
                continue;
            }
            let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
                k += 1;
                continue;
            };
            // Find the body `{` at paren/bracket/angle depth 0; a `;`
            // first means a bodyless trait method.
            let mut depth = 0i32;
            let mut angle = 0i32;
            let mut open = None;
            let mut j = k + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "<" if depth == 0 => angle += 1,
                        ">" if depth == 0 && !is_punct(toks, j.wrapping_sub(1), "-") => angle -= 1,
                        "{" if depth == 0 => {
                            open = Some(j);
                            break;
                        }
                        ";" if depth == 0 && angle <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            let Some(open) = open else {
                k += 1;
                continue;
            };
            let close = matching_brace(toks, open);
            // Parameter names: idents followed by `:` at depth 1 of the
            // first paren group outside generics.
            let mut params = BTreeSet::new();
            let mut angle = 0i32;
            let mut p = k + 2;
            let mut param_close = k + 2;
            while p < open {
                let t = &toks[p];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" if !is_punct(toks, p.wrapping_sub(1), "-") => angle -= 1,
                        "(" if angle <= 0 => {
                            let mut d = 0i32;
                            let mut q = p;
                            while q < open {
                                let tq = &toks[q];
                                if tq.kind == TokenKind::Punct {
                                    match tq.text.as_str() {
                                        "(" => d += 1,
                                        ")" => {
                                            d -= 1;
                                            if d == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                } else if tq.kind == TokenKind::Ident
                                    && d == 1
                                    && is_punct(toks, q + 1, ":")
                                {
                                    params.insert(tq.text.clone());
                                }
                                q += 1;
                            }
                            param_close = q;
                            break;
                        }
                        _ => {}
                    }
                }
                p += 1;
            }
            let returns_result = (param_close..open)
                .any(|i| toks[i].kind == TokenKind::Ident && toks[i].text == "Result");
            out.push(FnDef {
                name: name_tok.text.clone(),
                file: fi,
                body: (open, close),
                params,
                returns_result,
                in_test: toks[k].in_test,
                sanctioned: sync_file && SYNC_HELPERS.contains(&name_tok.text.as_str()),
            });
            k += 2;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_punct(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
}

/// A call site: an ident immediately followed by `(` (macros — ident
/// followed by `!` — are not calls).
fn call_name(toks: &[Token], i: usize) -> Option<&str> {
    let t = toks.get(i)?;
    if t.kind != TokenKind::Ident || !is_punct(toks, i + 1, "(") {
        return None;
    }
    Some(&t.text)
}

/// Identity of a method receiver's last path component:
/// `self.state.lock()` → `state`, `registry().lock()` → `registry`.
/// `None` for bare `self` (unknown identity) or unresolvable shapes.
fn receiver_identity(toks: &[Token], method: usize) -> Option<String> {
    if method == 0 || !is_punct(toks, method - 1, ".") {
        return None;
    }
    let mut j = method as i64 - 2;
    // Skip a trailing call's parens: `registry().lock()` receivers.
    if j >= 0 && is_punct(toks, j as usize, ")") {
        let mut depth = 0i32;
        while j >= 0 {
            if is_punct(toks, j as usize, ")") {
                depth += 1;
            } else if is_punct(toks, j as usize, "(") {
                depth -= 1;
                if depth == 0 {
                    j -= 1;
                    break;
                }
            }
            j -= 1;
        }
    }
    let t = toks.get(usize::try_from(j).ok()?)?;
    if t.kind != TokenKind::Ident || t.text == "self" {
        return None;
    }
    Some(t.text.clone())
}

/// Identity carried by the first argument of `lock_recovering(&self.state)`
/// — the last ident of the argument expression.
fn first_arg_identity(toks: &[Token], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => break,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && t.text != "self" && t.text != "mut" {
            last = Some(t.text.clone());
        }
        i += 1;
    }
    last
}

/// Idents at depth 1 of a call's parens (used for guard arguments).
fn arg_idents(toks: &[Token], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && depth == 1 {
            out.push(t.text.clone());
        }
        i += 1;
    }
    out
}

/// Skips a call's parens starting at `open`; returns the index after `)`.
fn skip_parens(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, "(") {
            depth += 1;
        } else if is_punct(toks, i, ")") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// The guard/lock dataflow
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct Guard {
    lock: String,
    /// Brace depth of the binding; the guard dies when control reaches a
    /// shallower token.
    depth: u32,
}

type GuardFact = BTreeMap<String, Guard>;

#[derive(Debug, Clone)]
struct EdgeSite {
    file: usize,
    line: usize,
    col: usize,
}

#[derive(Debug)]
struct HeldSite {
    file: usize,
    line: usize,
    col: usize,
    guard: String,
    lock: String,
    callee: String,
}

/// Everything the emission pass records across all functions.
#[derive(Debug, Default)]
struct LockFindings {
    /// `(held, acquired) → first site`.
    edges: BTreeMap<(String, String), EdgeSite>,
    held_across: Vec<HeldSite>,
}

/// A `let`/assignment binding in flight while its RHS is scanned.
struct Binding {
    name: String,
    /// Position in the block's token list of the terminating `;` (the
    /// binding takes effect there).
    end: usize,
    /// Position in the block's token list where the RHS starts.
    rhs_start: usize,
    depth: u32,
}

struct GuardAnalysis<'a> {
    toks: &'a [Token],
    depths: &'a [u32],
    file: usize,
    /// Name of the function being analyzed; same-named calls inside it are
    /// treated as opaque (direct recursion adds no facts, and a
    /// same-named *method* call — `job.token.cancel()` inside
    /// `Service::cancel` — is usually a collision, not recursion).
    fn_name: &'a str,
    params: &'a BTreeSet<String>,
    facts_by_name: &'a BTreeMap<String, FnFacts>,
}

impl<'a> GuardAnalysis<'a> {
    fn is_blocking_call(&self, name: &str) -> bool {
        if self.params.contains(name) {
            return false;
        }
        if BLOCKING_SEEDS.contains(&name) {
            return true;
        }
        name != self.fn_name
            && !primitive_name(name)
            && self.facts_by_name.get(name).is_some_and(|f| f.blocking)
    }

    /// Detects an acquisition at token `i`; returns the lock identity.
    fn acquisition_at(&self, i: usize) -> Option<String> {
        let name = call_name(self.toks, i)?;
        if ACQUIRE_METHODS.contains(&name) && is_punct(self.toks, i + 2, ")") {
            return receiver_identity(self.toks, i);
        }
        if name == "lock_recovering" {
            return first_arg_identity(self.toks, i + 1);
        }
        None
    }

    /// Walks one block, transforming `fact`; with a sink, records edges and
    /// held-across findings.
    fn walk_block(
        &self,
        cfg: &Cfg,
        block: usize,
        fact: &GuardFact,
        mut sink: Option<&mut LockFindings>,
    ) -> GuardFact {
        let idxs: Vec<usize> = cfg.block_tokens(block).collect();
        let mut f = fact.clone();
        // Lock identities of this statement's un-bound acquisitions.
        let mut stmt_temps: Vec<String> = Vec::new();
        let mut pending: Option<Binding> = None;
        let mut bound_lock: Option<String> = None;

        let mut p = 0;
        while p < idxs.len() {
            let i = idxs[p];
            let t = &self.toks[i];
            let d = self.depths[i];
            // Scope kill: bindings made deeper than this token are gone.
            f.retain(|_, g| g.depth <= d);

            if pending.as_ref().is_some_and(|b| p >= b.end) {
                let b = pending.take().unwrap();
                match bound_lock.take() {
                    Some(lock) => {
                        f.insert(
                            b.name,
                            Guard {
                                lock,
                                depth: b.depth,
                            },
                        );
                    }
                    // Reassigned to a value we cannot model: stop tracking.
                    None => {
                        f.remove(&b.name);
                    }
                }
            }

            if t.kind == TokenKind::Punct && t.text == ";" {
                stmt_temps.clear();
                p += 1;
                continue;
            }
            if t.kind != TokenKind::Ident {
                p += 1;
                continue;
            }

            match t.text.as_str() {
                "let" => {
                    // A nested `let` means any outer pending binding's RHS
                    // is a block expression, which cannot be a plain guard
                    // binding — the inner statement wins.
                    pending = self.parse_binding(&idxs, p, d);
                    bound_lock = None;
                    p += 1;
                    continue;
                }
                "drop" if is_punct(self.toks, i + 1, "(") => {
                    for a in arg_idents(self.toks, i + 1) {
                        f.remove(&a);
                    }
                    p += 1;
                    continue;
                }
                _ => {}
            }

            // `name = <rhs>;` reassignment of a tracked (or fresh) guard.
            if pending.is_none()
                && is_punct(self.toks, i + 1, "=")
                && !is_punct(self.toks, i + 2, "=")
                && !self.toks.get(i.wrapping_sub(1)).is_some_and(|x| {
                    x.kind == TokenKind::Punct
                        && matches!(
                            x.text.as_str(),
                            "=" | "<"
                                | ">"
                                | "!"
                                | "+"
                                | "-"
                                | "*"
                                | "/"
                                | "."
                                | "%"
                                | "&"
                                | "|"
                                | "^"
                        )
                })
            {
                bound_lock = None;
                // Moving one guard into another: `a = b;`.
                if self
                    .toks
                    .get(i + 2)
                    .is_some_and(|x| x.kind == TokenKind::Ident && f.contains_key(&x.text))
                    && is_punct(self.toks, i + 3, ";")
                {
                    let src = self.toks[i + 2].text.clone();
                    if let Some(g) = f.remove(&src) {
                        bound_lock = Some(g.lock);
                    }
                }
                pending = Some(Binding {
                    depth: f.get(&t.text).map(|g| g.depth).unwrap_or(d),
                    name: t.text.clone(),
                    end: self.stmt_end(&idxs, p + 2),
                    rhs_start: p + 2,
                });
                p += 1;
                continue;
            }

            if let Some(name) = call_name(self.toks, i) {
                let name = name.to_string();
                // Condvar wait: only when an argument is a tracked guard
                // (methods merely *named* `wait` exist on other types).
                let wait_like = WAIT_CALLS.contains(&name.as_str())
                    && !self.params.contains(&name)
                    && arg_idents(self.toks, i + 1)
                        .iter()
                        .any(|a| f.contains_key(a));
                if wait_like {
                    let mut consumed = None;
                    for a in arg_idents(self.toks, i + 1) {
                        if let Some(g) = f.remove(&a) {
                            consumed = Some(g.lock);
                        }
                    }
                    if let Some(s) = sink.as_deref_mut() {
                        for (gname, g) in &f {
                            s.held_across.push(HeldSite {
                                file: self.file,
                                line: t.line,
                                col: t.col,
                                guard: gname.clone(),
                                lock: g.lock.clone(),
                                callee: name.clone(),
                            });
                        }
                    }
                    // The wait hands the re-acquired guard to the binding
                    // in flight (`st = cv.wait(st)…` / `let (g, _) = …`).
                    if pending.is_some() {
                        bound_lock = consumed;
                    }
                    p += 1;
                    continue;
                }

                if let Some(lock) = self.acquisition_at(i) {
                    if let Some(s) = sink.as_deref_mut() {
                        for g in f.values() {
                            record_edge(s, &g.lock, &lock, self.file, t);
                        }
                        for h in &stmt_temps {
                            record_edge(s, h, &lock, self.file, t);
                        }
                    }
                    // The acquisition feeds the binding only when it heads
                    // the RHS chain and the chain is transparent through to
                    // the statement end.
                    let is_binding = pending.as_ref().is_some_and(|b| {
                        p >= b.rhs_start
                            && self.rhs_top_level(&idxs, b.rhs_start, p)
                            && self.transparent_to_stmt_end(&idxs, p)
                    });
                    if is_binding {
                        bound_lock = Some(lock);
                    } else {
                        stmt_temps.push(lock);
                    }
                    p += 1;
                    continue;
                }

                // A plain call: guard-lifetime check + interprocedural
                // lock-order edges through the callee's transitive locks.
                if let Some(s) = sink.as_deref_mut() {
                    if self.is_blocking_call(&name) {
                        for (gname, g) in &f {
                            s.held_across.push(HeldSite {
                                file: self.file,
                                line: t.line,
                                col: t.col,
                                guard: gname.clone(),
                                lock: g.lock.clone(),
                                callee: name.clone(),
                            });
                        }
                    }
                    if !self.params.contains(&name)
                        && !primitive_name(&name)
                        && name != self.fn_name
                    {
                        if let Some(cf) = self.facts_by_name.get(&name) {
                            for l in &cf.locks {
                                for g in f.values() {
                                    record_edge(s, &g.lock, l, self.file, t);
                                }
                                for h in &stmt_temps {
                                    record_edge(s, h, l, self.file, t);
                                }
                            }
                        }
                    }
                }
            }
            p += 1;
        }
        // A binding whose statement ran to the end of the block.
        if let (Some(b), Some(lock)) = (pending, bound_lock) {
            f.insert(
                b.name,
                Guard {
                    lock,
                    depth: b.depth,
                },
            );
        }
        f
    }

    /// Parses `let [mut] name =` / `let (name, _) =` at `idxs[let_pos]`.
    fn parse_binding(&self, idxs: &[usize], let_pos: usize, depth: u32) -> Option<Binding> {
        let tok = |q: usize| idxs.get(q).map(|&i| &self.toks[i]);
        let mut q = let_pos + 1;
        if tok(q).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "mut") {
            q += 1;
        }
        let t = tok(q)?;
        let name = if t.kind == TokenKind::Ident && t.text != "_" {
            t.text.clone()
        } else if t.kind == TokenKind::Punct && t.text == "(" {
            // Tuple pattern: first non-`_` ident.
            let mut r = q + 1;
            if tok(r).is_some_and(|t| t.text == "mut") {
                r += 1;
            }
            let t = tok(r)?;
            if t.kind != TokenKind::Ident || t.text == "_" {
                return None;
            }
            t.text.clone()
        } else {
            return None;
        };
        // Find the `=` (skipping the pattern and any `: Type` annotation).
        let mut r = q + 1;
        let eq = loop {
            let t = tok(r)?;
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "=" if !tok(r + 1)
                        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "=") =>
                    {
                        break r;
                    }
                    ";" => return None,
                    _ => {}
                }
            }
            r += 1;
            if r > let_pos + 96 {
                return None;
            }
        };
        Some(Binding {
            name,
            end: self.stmt_end(idxs, eq + 1),
            rhs_start: eq + 1,
            depth,
        })
    }

    /// Position in `idxs` of the `;` (or unmatched closer) ending the
    /// statement that starts at `from`.
    fn stmt_end(&self, idxs: &[usize], from: usize) -> usize {
        let mut pd = 0i32;
        let mut q = from;
        while let Some(&i) = idxs.get(q) {
            let t = &self.toks[i];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => pd += 1,
                    ")" | "]" | "}" => {
                        if pd == 0 {
                            return q;
                        }
                        pd -= 1;
                    }
                    ";" if pd == 0 => return q,
                    _ => {}
                }
            }
            q += 1;
        }
        idxs.len()
    }

    /// True when `idxs[at]` sits at paren/brace depth 0 relative to the RHS
    /// start — the acquisition heads the binding's own call chain rather
    /// than being an argument of a wrapping call or a statement inside a
    /// block expression.
    fn rhs_top_level(&self, idxs: &[usize], rhs_start: usize, at: usize) -> bool {
        let mut depth = 0i32;
        for q in rhs_start..at {
            let t = &self.toks[idxs[q]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
            }
        }
        depth == 0
    }

    /// True when everything between the acquisition's closing paren and the
    /// statement end is a chain of transparent combinators — the binding
    /// receives the guard itself, not a value derived from it.
    fn transparent_to_stmt_end(&self, idxs: &[usize], call_pos: usize) -> bool {
        let i = idxs[call_pos];
        let mut next = skip_parens(self.toks, i + 1);
        loop {
            if !is_punct(self.toks, next, ".") {
                break;
            }
            let Some(m) = self.toks.get(next + 1) else {
                break;
            };
            if m.kind == TokenKind::Ident
                && TRANSPARENT_COMBINATORS.contains(&m.text.as_str())
                && is_punct(self.toks, next + 2, "(")
            {
                next = skip_parens(self.toks, next + 2);
            } else {
                return false;
            }
        }
        // `;`, end of file, or end of the block's tokens (tail expression).
        is_punct(self.toks, next, ";") || self.toks.get(next).is_none() || !idxs.contains(&next)
    }
}

fn record_edge(s: &mut LockFindings, from: &str, to: &str, file: usize, t: &Token) {
    s.edges
        .entry((from.to_string(), to.to_string()))
        .or_insert(EdgeSite {
            file,
            line: t.line,
            col: t.col,
        });
}

impl<'a> dataflow::Analysis for GuardAnalysis<'a> {
    type Fact = GuardFact;
    fn entry_fact(&self) -> GuardFact {
        GuardFact::new()
    }
    fn empty_fact(&self) -> GuardFact {
        GuardFact::new()
    }
    fn join(&self, into: &mut GuardFact, other: &GuardFact) -> bool {
        let mut changed = false;
        for (k, v) in other {
            if !into.contains_key(k) {
                into.insert(k.clone(), v.clone());
                changed = true;
            }
        }
        changed
    }
    fn transfer(&self, cfg: &Cfg, block: usize, fact: &GuardFact) -> GuardFact {
        self.walk_block(cfg, block, fact, None)
    }
}

// ---------------------------------------------------------------------------
// Range scans for the cancellation family
// ---------------------------------------------------------------------------

fn range_blocking(
    toks: &[Token],
    range: (usize, usize),
    params: &BTreeSet<String>,
    facts_by_name: &BTreeMap<String, FnFacts>,
) -> Option<String> {
    for i in range.0..range.1 {
        if let Some(name) = call_name(toks, i) {
            if params.contains(name) {
                continue;
            }
            if BLOCKING_SEEDS.contains(&name)
                || (!primitive_name(name) && facts_by_name.get(name).is_some_and(|f| f.blocking))
            {
                return Some(name.to_string());
            }
        }
    }
    None
}

fn range_polls(
    toks: &[Token],
    range: (usize, usize),
    params: &BTreeSet<String>,
    facts_by_name: &BTreeMap<String, FnFacts>,
) -> bool {
    for i in range.0..range.1 {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if POLL_MARKERS.contains(&t.text.as_str()) {
            return true;
        }
        if call_name(toks, i).is_some()
            && !params.contains(&t.text)
            && !primitive_name(&t.text)
            && facts_by_name.get(&t.text).is_some_and(|f| f.polls)
        {
            return true;
        }
    }
    false
}

/// A `while` condition containing a comparison operator bounds the loop by
/// data, not cancellation — exempt from the responsiveness requirement.
fn cond_has_comparison(toks: &[Token], range: (usize, usize)) -> bool {
    for i in range.0..range.1 {
        let t = &toks[i];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "<" | ">" => return true,
            "=" | "!" if is_punct(toks, i + 1, "=") => return true,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Result-discard
// ---------------------------------------------------------------------------

/// The final depth-0 call of an RHS token range; `None` for macro
/// invocations, bare values, or RHSes that already handle the error with a
/// depth-0 `?`.
fn final_call(toks: &[Token], range: (usize, usize)) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    let mut i = range.0;
    while i < range.1 {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "?" if depth == 0 => return None,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && depth == 0 {
            if is_punct(toks, i + 1, "!") {
                return None;
            }
            if is_punct(toks, i + 1, "(") {
                last = Some(t.text.clone());
            }
        }
        i += 1;
    }
    last
}

/// Token index of the `;` ending the statement whose RHS starts at `from`
/// (token space, bounded by `limit`).
fn rhs_semi(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < limit {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    limit
}

fn result_discard(
    units: &[FileUnit],
    f: &FnDef,
    result_fns: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    let toks = &units[f.file].lexed.tokens;
    let returns_result = |name: &str| RESULT_METHODS.contains(&name) || result_fns.contains(name);
    let mut i = f.body.0 + 1;
    while i < f.body.1 {
        let t = &toks[i];
        if !(t.kind == TokenKind::Ident && t.text == "let") {
            i += 1;
            continue;
        }
        let mut q = i + 1;
        if toks
            .get(q)
            .is_some_and(|x| x.kind == TokenKind::Ident && x.text == "mut")
        {
            q += 1;
        }
        let Some(name_tok) = toks.get(q).filter(|x| x.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        if name_tok.text == "_" {
            if !is_punct(toks, q + 1, "=") || is_punct(toks, q + 2, "=") {
                i += 1;
                continue;
            }
            let semi = rhs_semi(toks, q + 2, f.body.1);
            if let Some(call) = final_call(toks, (q + 2, semi)) {
                if returns_result(&call) {
                    out.push(Violation {
                        lint: LintId::ResultDiscardAudit,
                        file: units[f.file].path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`let _ = {call}(…)` discards a Result; handle or propagate the error"
                        ),
                    });
                }
            }
            i = semi + 1;
            continue;
        }
        // Named binding: flag a Result-returning call whose binding is
        // never read afterwards (and is not `_`-prefixed).
        if name_tok.text.starts_with('_')
            || !is_punct(toks, q + 1, "=")
            || is_punct(toks, q + 2, "=")
        {
            i += 1;
            continue;
        }
        let semi = rhs_semi(toks, q + 2, f.body.1);
        if let Some(call) = final_call(toks, (q + 2, semi)) {
            if returns_result(&call) {
                let used = (semi + 1..f.body.1)
                    .any(|j| toks[j].kind == TokenKind::Ident && toks[j].text == name_tok.text);
                if !used {
                    out.push(Violation {
                        lint: LintId::ResultDiscardAudit,
                        file: units[f.file].path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "Result of `{call}(…)` bound to `{}` but never read; handle the error or prefix with `_`",
                            name_tok.text
                        ),
                    });
                }
            }
        }
        i = semi + 1;
    }
}

// ---------------------------------------------------------------------------
// Cycle detection over the lock-order graph
// ---------------------------------------------------------------------------

/// Shortest path `from → to` over the edge set (inclusive of endpoints);
/// `None` when unreachable. A one-node path means `from == to`.
fn bfs_path(
    edges: &BTreeMap<(String, String), EdgeSite>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    if from == to {
        return Some(vec![from.to_string()]);
    }
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u.as_str()).or_default().push(v.as_str());
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q = VecDeque::new();
    q.push_back(from);
    while let Some(n) = q.pop_front() {
        for &next in adj.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
            if next == from || prev.contains_key(next) {
                continue;
            }
            prev.insert(next, n);
            if next == to {
                let mut path = vec![to.to_string()];
                let mut cur = to;
                while cur != from {
                    cur = prev[cur];
                    path.push(cur.to_string());
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(next);
        }
    }
    None
}

/// Rotates a cycle's node list so the lexicographically smallest node
/// leads, for deduplication.
fn canonical_cycle(mut nodes: Vec<String>) -> Vec<String> {
    let min = nodes
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| n.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    nodes.rotate_left(min);
    nodes
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

/// Runs all four flow families over the lexed workspace; returns raw
/// (unsuppressed) violations. The caller merges these with the per-file
/// lints before applying `allow(...)` directives.
pub fn analyze(units: &[FileUnit]) -> Vec<Violation> {
    let depths: Vec<Vec<u32>> = units
        .iter()
        .map(|u| cfg::brace_depths(&u.lexed.tokens))
        .collect();
    let fns = extract_fns(units);
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    let result_fns: BTreeSet<String> = fns
        .iter()
        .filter(|f| f.returns_result)
        .map(|f| f.name.clone())
        .collect();

    // Direct per-fn facts. Test fns contribute nothing: test code may
    // legitimately block, poll nothing, and discard Results.
    let mut direct: Vec<FnFacts> = Vec::with_capacity(fns.len());
    for f in &fns {
        let mut facts = FnFacts::default();
        if !f.in_test {
            let toks = &units[f.file].lexed.tokens;
            for i in f.body.0 + 1..f.body.1 {
                let t = &toks[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                if POLL_MARKERS.contains(&t.text.as_str()) {
                    facts.polls = true;
                }
                if let Some(name) = call_name(toks, i) {
                    if f.params.contains(name) {
                        continue;
                    }
                    if !primitive_name(name) && name != f.name {
                        facts.calls.insert(name.to_string());
                    }
                    if BLOCKING_SEEDS.contains(&name) {
                        facts.blocking = true;
                    }
                    if !f.sanctioned {
                        if ACQUIRE_METHODS.contains(&name) && is_punct(toks, i + 2, ")") {
                            if let Some(id) = receiver_identity(toks, i) {
                                facts.locks.insert(id);
                            }
                        } else if name == "lock_recovering" {
                            if let Some(id) = first_arg_identity(toks, i + 1) {
                                facts.locks.insert(id);
                            }
                        }
                    }
                }
            }
        }
        direct.push(facts);
    }

    // Name-keyed transitive closures: blocking / polls / lock sets. Same
    // names merge (conservative: a call resolves to the union of every
    // workspace fn with that name).
    let mut facts_by_name: BTreeMap<String, FnFacts> = BTreeMap::new();
    for (name, ids) in &by_name {
        let mut merged = FnFacts::default();
        for &i in ids {
            let d = &direct[i];
            merged.blocking |= d.blocking;
            merged.polls |= d.polls;
            merged.locks.extend(d.locks.iter().cloned());
            merged.calls.extend(d.calls.iter().cloned());
        }
        facts_by_name.insert(name.clone(), merged);
    }
    loop {
        let mut changed = false;
        let names: Vec<String> = facts_by_name.keys().cloned().collect();
        for name in &names {
            let callees: Vec<String> = facts_by_name[name].calls.iter().cloned().collect();
            let mut blocking = facts_by_name[name].blocking;
            let mut polls = facts_by_name[name].polls;
            let mut locks = facts_by_name[name].locks.clone();
            for c in &callees {
                if let Some(cf) = facts_by_name.get(c) {
                    blocking |= cf.blocking;
                    polls |= cf.polls;
                    locks.extend(cf.locks.iter().cloned());
                }
            }
            let e = facts_by_name.get_mut(name).unwrap();
            if blocking != e.blocking || polls != e.polls || locks.len() != e.locks.len() {
                e.blocking = blocking;
                e.polls = polls;
                e.locks = locks;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Supervised entry points: workspace fn names inside non-test
    // `spawn(..)` argument lists, plus everything they transitively call.
    // `origin` maps each reachable fn to the entry it was reached from.
    let mut origin: BTreeMap<String, String> = BTreeMap::new();
    let mut bfs: VecDeque<String> = VecDeque::new();
    for u in units {
        let toks = &u.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind == TokenKind::Ident
                && t.text == "spawn"
                && !t.in_test
                && is_punct(toks, i + 1, "(")
            {
                let close = skip_parens(toks, i + 1);
                for j in i + 2..close {
                    let tj = &toks[j];
                    if tj.kind == TokenKind::Ident
                        && by_name.contains_key(&tj.text)
                        && !origin.contains_key(&tj.text)
                    {
                        origin.insert(tj.text.clone(), tj.text.clone());
                        bfs.push_back(tj.text.clone());
                    }
                }
            }
        }
    }
    while let Some(n) = bfs.pop_front() {
        let Some(ff) = facts_by_name.get(&n) else {
            continue;
        };
        let org = origin[&n].clone();
        for c in ff.calls.clone() {
            if by_name.contains_key(&c) && !origin.contains_key(&c) {
                origin.insert(c.clone(), org.clone());
                bfs.push_back(c);
            }
        }
    }

    let mut violations = Vec::new();
    let mut findings = LockFindings::default();

    for f in &fns {
        if f.in_test || f.sanctioned {
            continue;
        }
        let toks = &units[f.file].lexed.tokens;
        let graph = cfg::build(toks, f.body);
        let analysis = GuardAnalysis {
            toks,
            depths: &depths[f.file],
            file: f.file,
            fn_name: &f.name,
            params: &f.params,
            facts_by_name: &facts_by_name,
        };
        let facts = dataflow::solve(&graph, &analysis);
        for b in 0..graph.blocks.len() {
            analysis.walk_block(&graph, b, &facts[b], Some(&mut findings));
        }

        // Cancellation responsiveness for loops in supervised fns.
        if let Some(entry) = origin.get(&f.name) {
            for lp in &graph.loops {
                let unbounded = matches!(lp.kind, LoopKind::Loop)
                    || (matches!(lp.kind, LoopKind::While) && !cond_has_comparison(toks, lp.cond));
                if !unbounded {
                    continue;
                }
                let Some(blocker) = range_blocking(toks, lp.body, &f.params, &facts_by_name) else {
                    continue;
                };
                if range_polls(toks, lp.cond, &f.params, &facts_by_name)
                    || range_polls(toks, lp.body, &f.params, &facts_by_name)
                {
                    continue;
                }
                violations.push(Violation {
                    lint: LintId::CancellationResponsiveness,
                    file: units[f.file].path.clone(),
                    line: lp.line,
                    col: lp.col,
                    message: format!(
                        "unbounded loop in `{}` (supervised via `{entry}`) blocks in `{blocker}` without polling cancellation; check is_cancelled()/stopping each iteration",
                        f.name
                    ),
                });
            }
        }

        result_discard(units, f, &result_fns, &mut violations);
    }

    // Guard-lifetime violations, deduped per (site, guard).
    let mut seen = BTreeSet::new();
    for h in &findings.held_across {
        if seen.insert((h.file, h.line, h.col, h.guard.clone())) {
            violations.push(Violation {
                lint: LintId::GuardLifetimeAudit,
                file: units[h.file].path.clone(),
                line: h.line,
                col: h.col,
                message: format!(
                    "guard `{}` (lock `{}`) is live across blocking call `{}`; drop it or narrow its scope first",
                    h.guard, h.lock, h.callee
                ),
            });
        }
    }

    // Lock-order cycles: every cycle contains some recorded edge, so a
    // return path for any edge closes one. Canonicalize to dedupe.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((u, v), site) in &findings.edges {
        let Some(path) = bfs_path(&findings.edges, v, u) else {
            continue;
        };
        // Cycle nodes without repetition: u, then v..path's second-to-last
        // (path ends at u).
        let mut nodes = vec![u.clone()];
        nodes.extend(path[..path.len().saturating_sub(1)].iter().cloned());
        let canon = canonical_cycle(nodes);
        if !reported.insert(canon.clone()) {
            continue;
        }
        let display = if canon.len() == 1 {
            format!("lock `{}` acquired while already held", canon[0])
        } else {
            let mut chain = canon.clone();
            chain.push(canon[0].clone());
            format!(
                "lock-order cycle `{}`: inconsistent acquisition order can deadlock",
                chain.join(" -> ")
            )
        };
        violations.push(Violation {
            lint: LintId::LockOrderAudit,
            file: units[site.file].path.clone(),
            line: site.line,
            col: site.col,
            message: display,
        });
    }

    // Inline poison-recovery idiom outside the sanctioned sync module.
    for u in units {
        if u.path.ends_with(Path::new("spice/src/sync.rs")) {
            continue;
        }
        let toks = &u.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || t.text != "unwrap_or_else" || t.in_test {
                continue;
            }
            let closure_ok = is_punct(toks, i + 1, "(")
                && is_punct(toks, i + 2, "|")
                && toks.get(i + 3).is_some_and(|x| x.kind == TokenKind::Ident)
                && is_punct(toks, i + 4, "|")
                && toks
                    .get(i + 5)
                    .is_some_and(|x| x.kind == TokenKind::Ident && x.text == toks[i + 3].text)
                && is_punct(toks, i + 6, ".")
                && toks
                    .get(i + 7)
                    .is_some_and(|x| x.kind == TokenKind::Ident && x.text == "into_inner")
                && is_punct(toks, i + 8, "(")
                && is_punct(toks, i + 9, ")")
                && is_punct(toks, i + 10, ")");
            if closure_ok {
                violations.push(Violation {
                    lint: LintId::LockOrderAudit,
                    file: u.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "inline poisoned-lock recovery; use finrad_spice::sync::lock_recovering (the one sanctioned recovery span)".to_string(),
                });
            }
        }
    }

    violations.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.lint.as_str()).cmp(&(&b.file, b.line, b.col, b.lint.as_str()))
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit {
            path: PathBuf::from(path),
            lexed: lex(src),
        }
    }

    fn count(vs: &[Violation], id: LintId) -> usize {
        vs.iter().filter(|v| v.lint == id).count()
    }

    #[test]
    fn two_lock_cycle_is_detected() {
        let src = r#"
impl S {
    fn a_then_b(&self) {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        drop(gb);
        drop(ga);
    }
    fn b_then_a(&self) {
        let gb = self.beta.lock().unwrap();
        let ga = self.alpha.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::LockOrderAudit), 1, "{vs:?}");
        assert!(vs[0].message.contains("alpha"), "{}", vs[0].message);
        assert!(vs[0].message.contains("beta"), "{}", vs[0].message);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = r#"
impl S {
    fn first(&self) {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        drop(gb);
        drop(ga);
    }
    fn second(&self) {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        drop(gb);
        drop(ga);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::LockOrderAudit), 0, "{vs:?}");
    }

    #[test]
    fn guard_across_blocking_call_is_flagged() {
        let src = r#"
impl S {
    fn hold(&self) {
        let g = self.state.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::GuardLifetimeAudit), 1, "{vs:?}");
    }

    #[test]
    fn guard_dropped_before_blocking_call_is_clean() {
        let src = r#"
impl S {
    fn ok(&self) {
        let g = self.state.lock().unwrap();
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    fn scoped(&self) {
        {
            let g = self.state.lock().unwrap();
            g.touch();
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::GuardLifetimeAudit), 0, "{vs:?}");
    }

    #[test]
    fn condvar_wait_consuming_the_guard_is_exempt() {
        let src = r#"
impl S {
    fn wait_ready(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.ready() {
            st = self.cv.wait(st).unwrap();
        }
        drop(st);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::GuardLifetimeAudit), 0, "{vs:?}");
    }

    #[test]
    fn unpolled_blocking_supervised_loop_is_flagged() {
        let src = r#"
fn boot() {
    std::thread::spawn(|| pump());
}
fn pump() {
    loop {
        step_blocking();
    }
}
fn step_blocking() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::CancellationResponsiveness), 1, "{vs:?}");
        assert!(vs
            .iter()
            .any(|v| v.message.contains("pump") && v.message.contains("step_blocking")));
    }

    #[test]
    fn polled_supervised_loop_is_clean() {
        let src = r#"
fn boot() {
    std::thread::spawn(|| pump());
}
fn pump() {
    loop {
        if token.is_cancelled() {
            break;
        }
        step_blocking();
    }
}
fn step_blocking() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::CancellationResponsiveness), 0, "{vs:?}");
    }

    #[test]
    fn unsupervised_blocking_loop_is_not_flagged() {
        let src = r#"
fn pump() {
    loop {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::CancellationResponsiveness), 0, "{vs:?}");
    }

    #[test]
    fn discarded_and_unused_results_are_flagged() {
        let src = r#"
fn produce() -> Result<u32, String> {
    Ok(1)
}
fn caller() {
    let _ = produce();
    let outcome = produce();
    let used = produce();
    if used.is_ok() {
        work();
    }
}
fn work() {}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::ResultDiscardAudit), 2, "{vs:?}");
    }

    #[test]
    fn question_mark_and_underscore_prefix_are_clean() {
        let src = r#"
fn produce() -> Result<u32, String> {
    Ok(1)
}
fn caller() -> Result<(), String> {
    let value = produce().map_err(|e| e)?;
    let _ignored = produce();
    let _ = format!("{value}");
    Ok(())
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::ResultDiscardAudit), 0, "{vs:?}");
    }

    #[test]
    fn inline_poison_recovery_is_flagged_outside_sync_module() {
        let src = r#"
impl S {
    fn recover(&self) {
        let g = self.m.lock().unwrap_or_else(|p| p.into_inner());
        drop(g);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::LockOrderAudit), 1, "{vs:?}");
        assert!(vs[0].message.contains("lock_recovering"));
        // The same tokens inside the sanctioned module are fine.
        let vs = analyze(&[unit("crates/spice/src/sync.rs", src)]);
        assert_eq!(count(&vs, LintId::LockOrderAudit), 0, "{vs:?}");
    }

    #[test]
    fn interprocedural_cycle_through_helper_is_detected() {
        let src = r#"
impl S {
    fn helper(&self) {
        let g = self.beta.lock().unwrap();
        drop(g);
    }
    fn outer(&self) {
        let ga = self.alpha.lock().unwrap();
        self.helper();
        drop(ga);
    }
    fn reverse(&self) {
        let gb = self.beta.lock().unwrap();
        let ga = self.alpha.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
"#;
        let vs = analyze(&[unit("crates/core/src/fake.rs", src)]);
        assert_eq!(count(&vs, LintId::LockOrderAudit), 1, "{vs:?}");
    }
}
