//! SARIF 2.1.0 emission for lint runs (`cargo xtask lint --format sarif`).
//!
//! The Static Analysis Results Interchange Format is what code-scanning
//! UIs (GitHub, VS Code SARIF viewers) ingest. This emitter produces the
//! minimal conforming subset: one run, one tool driver with a rule per
//! lint family, and one result per diagnostic. Over-budget violations map
//! to `"level": "error"`, baselined ones to `"level": "note"` — the same
//! split as the native report ([`crate::report`]).
//!
//! Like the native format, documents are validated through the in-tree
//! JSON parser ([`validate`]) before CI archives them.

use std::fmt::Write as _;

use crate::baseline::BaselineCheck;
use crate::lints::LintId;
use crate::report::json_string;

/// The SARIF spec version emitted in every document.
pub const SARIF_VERSION: &str = "2.1.0";

/// Tool name advertised in `runs[0].tool.driver.name`.
pub const TOOL_NAME: &str = "finrad-lint";

/// Serializes the outcome of a lint run as a SARIF 2.1.0 document.
pub fn to_sarif(check: &BaselineCheck) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": {},", json_string(SARIF_VERSION));
    let _ = writeln!(
        out,
        "  \"$schema\": {},",
        json_string("https://json.schemastore.org/sarif-2.1.0.json")
    );
    out.push_str("  \"runs\": [\n    {\n");

    // Tool driver with one reportingDescriptor per family.
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    let _ = writeln!(out, "          \"name\": {},", json_string(TOOL_NAME));
    out.push_str("          \"rules\": [");
    for (i, lint) in LintId::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": {}, \"name\": {}}}",
            json_string(lint.as_str()),
            json_string(&rule_name(*lint)),
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");

    out.push_str("      \"results\": [");
    let mut first = true;
    for (level, violations) in ["error", "note"]
        .iter()
        .zip([&check.new_violations, &check.budgeted])
    {
        for v in violations {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
                json_string(v.lint.as_str()),
                json_string(level),
                json_string(&v.message),
                json_string(&v.file.display().to_string()),
                v.line,
                v.col,
            );
        }
    }
    if !first {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// SARIF rule names are PascalCase by convention; derive one from the
/// kebab-case lint id (`lock-order-audit` → `LockOrderAudit`).
fn rule_name(lint: LintId) -> String {
    lint.as_str()
        .split('-')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().chain(cs).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

/// Validates `text` as one of our SARIF documents using the in-tree JSON
/// parser. Returns the list of problems (empty = valid).
pub fn validate(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let doc = match crate::json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let Some(obj) = doc.as_object() else {
        return vec!["SARIF root is not an object".to_string()];
    };

    match obj.get("version").and_then(|v| v.as_str()) {
        Some(SARIF_VERSION) => {}
        Some(other) => problems.push(format!(
            "version mismatch: expected `{SARIF_VERSION}`, found `{other}`"
        )),
        None => problems.push("missing string member `version`".to_string()),
    }

    let Some(runs) = obj.get("runs").and_then(|v| v.as_array()) else {
        problems.push("missing array `runs`".to_string());
        return problems;
    };
    if runs.len() != 1 {
        problems.push(format!("expected exactly one run, found {}", runs.len()));
        return problems;
    }
    let run = &runs[0];

    match run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("name"))
        .and_then(|n| n.as_str())
    {
        Some(TOOL_NAME) => {}
        Some(other) => problems.push(format!(
            "tool.driver.name mismatch: expected `{TOOL_NAME}`, found `{other}`"
        )),
        None => problems.push("missing tool.driver.name".to_string()),
    }

    match run.get("results").and_then(|v| v.as_array()) {
        None => problems.push("missing array `results`".to_string()),
        Some(results) => {
            for (i, r) in results.iter().enumerate() {
                let rule_ok = r
                    .get("ruleId")
                    .and_then(|v| v.as_str())
                    .is_some_and(|id| LintId::ALL.iter().any(|l| l.as_str() == id));
                let level_ok = r
                    .get("level")
                    .and_then(|v| v.as_str())
                    .is_some_and(|l| ["error", "note"].contains(&l));
                let message_ok = r
                    .get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(|t| t.as_str())
                    .is_some();
                let location_ok = r
                    .get("locations")
                    .and_then(|v| v.as_array())
                    .and_then(|locs| locs.first())
                    .and_then(|l| l.get("physicalLocation"))
                    .is_some_and(|pl| {
                        pl.get("artifactLocation")
                            .and_then(|a| a.get("uri"))
                            .and_then(|u| u.as_str())
                            .is_some()
                            && pl
                                .get("region")
                                .and_then(|reg| reg.get("startLine"))
                                .and_then(|n| n.as_u64())
                                .is_some_and(|n| n >= 1)
                    });
                if !(rule_ok && level_ok && message_ok && location_ok) {
                    problems.push(format!("results[{i}] is malformed"));
                }
            }
        }
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Violation;
    use std::path::PathBuf;

    fn sample_check() -> BaselineCheck {
        BaselineCheck {
            new_violations: vec![Violation {
                lint: LintId::LockOrderAudit,
                file: PathBuf::from("crates/core/src/service.rs"),
                line: 12,
                col: 9,
                message: "lock-order cycle `a -> b -> a`".to_string(),
            }],
            budgeted: vec![Violation {
                lint: LintId::FloatDiscipline,
                file: PathBuf::from("crates/spice/src/solver.rs"),
                line: 40,
                col: 1,
                message: "float \"equality\"".to_string(),
            }],
            stale: Vec::new(),
        }
    }

    #[test]
    fn sarif_round_trips_through_own_parser_and_validates() {
        let sarif = to_sarif(&sample_check());
        let doc = crate::json::parse(&sarif).expect("self-emitted SARIF must parse");
        assert_eq!(
            doc.get("version").and_then(|v| v.as_str()),
            Some(SARIF_VERSION)
        );
        let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
        let results = runs[0].get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("level").and_then(|v| v.as_str()),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(|v| v.as_str()),
            Some("note")
        );
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(rules.len(), LintId::ALL.len());
        assert!(validate(&sarif).is_empty(), "{:?}", validate(&sarif));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(!validate("{}").is_empty());
        assert!(!validate("not json").is_empty());
        let bad = to_sarif(&sample_check()).replace("\"2.1.0\"", "\"9.9\"");
        assert!(validate(&bad)
            .iter()
            .any(|p| p.contains("version mismatch")));
        let bad_rule = to_sarif(&sample_check())
            .replace("\"ruleId\": \"lock-order-audit\"", "\"ruleId\": \"bogus\"");
        assert!(validate(&bad_rule).iter().any(|p| p.contains("results[0]")));
    }

    #[test]
    fn rule_names_are_pascal_case() {
        assert_eq!(rule_name(LintId::LockOrderAudit), "LockOrderAudit");
        assert_eq!(rule_name(LintId::UnitSafety), "UnitSafety");
    }
}
