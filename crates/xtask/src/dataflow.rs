//! Forward dataflow over [`crate::cfg`] graphs.
//!
//! A classic worklist solver: facts propagate from [`cfg::ENTRY`] along
//! successor edges, merging at joins, until a fixpoint. Clients implement
//! [`Analysis`] with a monotone `join` (facts only grow), which bounds the
//! iteration for the finite fact domains the lint families use (sets of
//! live guards, held lock identities).

use crate::cfg::{self, Cfg};

/// One forward dataflow problem over a function's CFG.
pub trait Analysis {
    /// The per-block fact. Must form a join-semilattice under [`join`]
    /// (`join` only ever adds information) for the solver to terminate.
    ///
    /// [`join`]: Analysis::join
    type Fact: Clone + PartialEq;

    /// Fact at function entry.
    fn entry_fact(&self) -> Self::Fact;

    /// The bottom element: the initial fact of unvisited blocks.
    fn empty_fact(&self) -> Self::Fact;

    /// Merges `other` into `into`; returns true when `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Computes the fact at the end of `block` from the fact at its start.
    fn transfer(&self, cfg: &Cfg, block: usize, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `analysis` to fixpoint; returns the fact at the *start* of every
/// block. The caller re-applies `transfer` wherever it wants the mid-block
/// states (e.g. to emit diagnostics at exact token positions).
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let mut facts: Vec<A::Fact> = (0..n).map(|_| analysis.empty_fact()).collect();
    let mut visited = vec![false; n];
    facts[cfg::ENTRY] = analysis.entry_fact();
    visited[cfg::ENTRY] = true;

    let mut work: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut queued = vec![false; n];
    work.push_back(cfg::ENTRY);
    queued[cfg::ENTRY] = true;

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = analysis.transfer(cfg, b, &facts[b]);
        for &s in &cfg.blocks[b].succs {
            let changed = if !visited[s] {
                visited[s] = true;
                facts[s] = out.clone();
                true
            } else {
                analysis.join(&mut facts[s], &out)
            };
            if changed && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::lexer::{lex, TokenKind};
    use std::collections::BTreeSet;

    /// Toy analysis: the set of single-letter idents seen on some path.
    struct SeenIdents<'a> {
        toks: &'a [crate::lexer::Token],
    }

    impl<'a> Analysis for SeenIdents<'a> {
        type Fact = BTreeSet<String>;
        fn entry_fact(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn empty_fact(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(other.iter().cloned());
            into.len() != before
        }
        fn transfer(&self, cfg: &Cfg, block: usize, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            for i in cfg.block_tokens(block) {
                if self.toks[i].kind == TokenKind::Ident && self.toks[i].text.len() == 1 {
                    out.insert(self.toks[i].text.clone());
                }
            }
            out
        }
    }

    #[test]
    fn facts_flow_through_branches_and_loops() {
        let lexed = lex("fn f() { a; if c { b; } loop { d; if x { break; } } e; }");
        let open = lexed.tokens.iter().position(|t| t.text == "{").unwrap();
        let cfg = build(&lexed.tokens, (open, lexed.tokens.len() - 1));
        let analysis = SeenIdents {
            toks: &lexed.tokens,
        };
        let facts = solve(&cfg, &analysis);
        // The exit fact (join of everything) contains all names, including
        // those inside the loop, which required the back-edge iteration.
        let exit = &facts[crate::cfg::EXIT];
        for name in ["a", "b", "c", "d", "e", "x"] {
            assert!(exit.contains(name), "missing {name}: {exit:?}");
        }
    }
}
