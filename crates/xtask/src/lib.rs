//! Workspace automation for the `finrad` repo — chiefly `cargo xtask lint`,
//! a dependency-free static-analysis gate over every workspace `.rs` source.
//!
//! The gate runs in three phases. Phase 1 builds a
//! [`index::WorkspaceIndex`] from three anchor files (the metric-key
//! registry, the sanctioned RNG seed-derivation helpers, and the checkpoint
//! codec). Phase 2 lints every file against ten per-file families (see
//! [`lints`]):
//!
//! * `unit-safety` — public physics APIs must use `finrad-units` quantity
//!   types, not bare `f64`, for dimensioned *parameters*. (Return types
//!   are covered by the type system plus `raw-escape-audit`.)
//! * `raw-escape-audit` — the raw-f64 escape hatches `si_value()` /
//!   `from_si(..)` only inside the sanctioned sites (units internals,
//!   checkpoint serialization, SPICE MNA assembly).
//! * `rng-determinism` — no entropy- or wall-clock-seeded randomness
//!   anywhere; Monte-Carlo results must be reproducible from a seed.
//! * `panic-freedom` — no `unwrap`/`expect`/`panic!`-family calls or LUT
//!   slice indexing in non-test library code.
//! * `float-discipline` — no `f32`, float `==`/`!=`, or
//!   `partial_cmp().unwrap()`.
//! * `metrics-key-registry` — metric-key literals at Recorder call sites
//!   must be declared in `crates/observe/src/keys.rs`.
//! * `seed-discipline` — RNG seed arithmetic only inside the sanctioned
//!   helpers in `crates/numerics/src/rng.rs`.
//! * `shared-state-audit` — no `static mut`, `thread_local!`, or
//!   `Ordering::Relaxed` in library code.
//! * `checkpoint-schema-drift` — the checkpoint codec cannot change without
//!   a `CHECKPOINT_VERSION` bump (fingerprint pinned in the baseline).
//! * `unused-suppression` — `allow(...)` directives must still fire.
//!
//! Phase 3 runs the flow-sensitive concurrency families (see [`flow`]),
//! which build a control-flow graph per function ([`cfg`]), solve a
//! forward dataflow problem over it ([`dataflow`]), and reason across
//! files through a name-keyed function index:
//!
//! * `lock-order-audit` — cycles in the workspace lock-acquisition graph
//!   (potential deadlocks), plus inline poisoned-lock recovery outside the
//!   sanctioned `finrad_spice::sync` module.
//! * `guard-lifetime-audit` — lock guards provably live across blocking
//!   calls (solves, condvar waits on other guards, joins, checkpoint I/O).
//! * `cancellation-responsiveness` — blocking unbounded loops reachable
//!   from supervised `spawn` entry points must poll cancellation.
//! * `result-discard-audit` — `Result`s from workspace functions discarded
//!   via `let _ = …` or bound but never read.
//!
//! Known debt is budgeted in `xtask/lint-baseline.toml` (see [`baseline`]);
//! individual sites are suppressed with `// finrad-lint: allow(<id>)`. The
//! full policy lives in `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod bench;
pub mod cfg;
pub mod dataflow;
pub mod flow;
pub mod index;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod sarif;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

use index::WorkspaceIndex;
use lints::{Violation, UNIT_SAFETY_CRATES};

/// Lints one file's source text without a workspace index (the metric-key
/// family is skipped; the seed family has no sanctioned regions).
/// `rel_path` is used for reporting and for deciding whether the
/// unit-safety family applies.
pub fn lint_file_source(rel_path: &Path, text: &str, unit_safety: bool) -> Vec<Violation> {
    let scrubbed = source::scrub(text);
    let lexed = lexer::lex(text);
    lints::lint_file(rel_path, &scrubbed, &lexed, unit_safety, None)
}

/// Lints one file's source text against a phase-1 workspace index,
/// enabling the cross-file families.
pub fn lint_file_source_with_index(
    rel_path: &Path,
    text: &str,
    unit_safety: bool,
    index: &WorkspaceIndex,
) -> Vec<Violation> {
    let scrubbed = source::scrub(text);
    let lexed = lexer::lex(text);
    lints::lint_file(rel_path, &scrubbed, &lexed, unit_safety, Some(index))
}

/// Result of scanning a source tree.
#[derive(Debug)]
pub struct ScanResult {
    /// Number of `.rs` files linted.
    pub files_scanned: usize,
    /// All per-file *and* flow-family violations, ordered by (file, line,
    /// col). The workspace-level `checkpoint-schema-drift` check is *not*
    /// included — it needs the baseline, so the caller runs
    /// [`lints::checkpoint_drift`] against `index`.
    pub violations: Vec<Violation>,
    /// The phase-1 symbol index the lints ran against.
    pub index: WorkspaceIndex,
}

/// Scans the workspace rooted at `root`: the facade crate's `src/` plus
/// every `crates/*/src/` except `crates/xtask` itself. Binary targets
/// (`src/bin/`) are skipped — the lint families target *library* code.
pub fn scan_tree(root: &Path) -> io::Result<ScanResult> {
    let index = index::build(root)?;
    let mut files: Vec<(PathBuf, bool)> = Vec::new();

    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs_files(&facade, &mut files, false)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "xtask" {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                let unit_safety = UNIT_SAFETY_CRATES.contains(&name);
                collect_rs_files(&src, &mut files, unit_safety)?;
            }
        }
    }
    files.sort();

    // Pass 1: lex + scrub everything, collect raw per-file violations.
    let mut units: Vec<flow::FileUnit> = Vec::with_capacity(files.len());
    let mut scrubbed: Vec<source::ScrubbedSource> = Vec::with_capacity(files.len());
    let mut raw: Vec<Vec<Violation>> = Vec::with_capacity(files.len());
    for (path, unit_safety) in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let src = source::scrub(&text);
        let lexed = lexer::lex(&text);
        raw.push(lints::lint_file_raw(
            &rel,
            &src,
            &lexed,
            *unit_safety,
            Some(&index),
        ));
        scrubbed.push(src);
        units.push(flow::FileUnit { path: rel, lexed });
    }

    // Pass 2: the whole-workspace flow families, merged into the owning
    // file's raw list so `allow(...)` directives apply uniformly.
    for v in flow::analyze(&units) {
        if let Some(i) = units.iter().position(|u| u.path == v.file) {
            raw[i].push(v);
        }
    }

    let mut violations = Vec::new();
    for (i, u) in units.iter().enumerate() {
        violations.extend(lints::apply_suppressions(
            &u.path,
            &scrubbed[i],
            std::mem::take(&mut raw[i]),
        ));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(ScanResult {
        files_scanned: files.len(),
        violations,
        index,
    })
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/` subtrees.
fn collect_rs_files(
    dir: &Path,
    out: &mut Vec<(PathBuf, bool)>,
    unit_safety: bool,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue;
            }
            collect_rs_files(&path, out, unit_safety)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push((path, unit_safety));
        }
    }
    Ok(())
}
