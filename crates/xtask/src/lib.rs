//! Workspace automation for the `finrad` repo — chiefly `cargo xtask lint`,
//! a dependency-free static-analysis gate over every workspace `.rs` source.
//!
//! The gate enforces four domain lint families (see [`lints`]):
//!
//! * `unit-safety` — public physics APIs must use `finrad-units` newtypes,
//!   not bare `f64`, for dimensioned parameters and returns.
//! * `rng-determinism` — no entropy- or wall-clock-seeded randomness
//!   anywhere; Monte-Carlo results must be reproducible from a seed.
//! * `panic-freedom` — no `unwrap`/`expect`/`panic!`-family calls or LUT
//!   slice indexing in non-test library code.
//! * `float-discipline` — no `f32`, float `==`/`!=`, or
//!   `partial_cmp().unwrap()`.
//!
//! Known debt is budgeted in `xtask/lint-baseline.toml` (see [`baseline`]);
//! individual sites are suppressed with `// finrad-lint: allow(<id>)`. The
//! full policy lives in `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod bench;
pub mod json;
pub mod lints;
pub mod report;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

use lints::{Violation, UNIT_SAFETY_CRATES};

/// Lints one file's source text; `rel_path` is used for reporting and for
/// deciding whether the unit-safety family applies.
pub fn lint_file_source(rel_path: &Path, text: &str, unit_safety: bool) -> Vec<Violation> {
    let scrubbed = source::scrub(text);
    lints::lint_source(rel_path, &scrubbed, unit_safety)
}

/// Result of scanning a source tree.
#[derive(Debug)]
pub struct ScanResult {
    /// Number of `.rs` files linted.
    pub files_scanned: usize,
    /// All violations, ordered by (file, line).
    pub violations: Vec<Violation>,
}

/// Scans the workspace rooted at `root`: the facade crate's `src/` plus
/// every `crates/*/src/` except `crates/xtask` itself. Binary targets
/// (`src/bin/`) are skipped — the lint families target *library* code.
pub fn scan_tree(root: &Path) -> io::Result<ScanResult> {
    let mut files: Vec<(PathBuf, bool)> = Vec::new();

    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs_files(&facade, &mut files, false)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "xtask" {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                let unit_safety = UNIT_SAFETY_CRATES.contains(&name);
                collect_rs_files(&src, &mut files, unit_safety)?;
            }
        }
    }
    files.sort();

    let mut violations = Vec::new();
    for (path, unit_safety) in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        violations.extend(lint_file_source(rel, &text, *unit_safety));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(ScanResult {
        files_scanned: files.len(),
        violations,
    })
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/` subtrees.
fn collect_rs_files(
    dir: &Path,
    out: &mut Vec<(PathBuf, bool)>,
    unit_safety: bool,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue;
            }
            collect_rs_files(&path, out, unit_safety)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push((path, unit_safety));
        }
    }
    Ok(())
}
