//! Comment- and string-aware scrubbing of Rust sources.
//!
//! The lint pass never wants to fire on text inside comments, doc comments,
//! or string/char literals, and it must honour `#[cfg(test)]` module
//! boundaries. Instead of a full parser, this module produces a *scrubbed*
//! view of a file: the body of every comment and literal is replaced by
//! spaces (delimiters kept, line structure preserved), so downstream lints
//! can do plain substring matching on `Line::code` without false positives.
//! Scrubbing is **column-preserving**: every consumed character (other than
//! a line break) is replaced by exactly one blank, so a byte offset into a
//! scrubbed line is also a 1:1 column into the original line — that is what
//! makes line:col diagnostics click-through accurate.
//!
//! The scrubber also extracts `// finrad-lint: allow(<id>, ...)` directives
//! from line comments. A *standalone* directive (the comment is the whole
//! line) suppresses matching violations on its own line and on the line
//! directly below it; a *trailing* directive (code precedes the comment on
//! the same line) suppresses only its own line — a trailing comment is an
//! annotation of that line, not of whatever happens to come next.

/// One `allow(...)` directive extracted from a line comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint ID being allowed (`"all"` allows everything).
    pub id: String,
    /// True when the comment is the whole line (only whitespace before
    /// `//`); only standalone directives extend to the following line.
    pub standalone: bool,
    /// 1-indexed character column where the directive text begins.
    pub col: usize,
}

/// One scrubbed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comment/literal bodies blanked out.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Allow directives declared on this line.
    pub allows: Vec<Allow>,
}

/// A whole file after scrubbing; lines are 0-indexed internally (lints
/// report 1-indexed).
#[derive(Debug)]
pub struct ScrubbedSource {
    /// The scrubbed lines, in file order.
    pub lines: Vec<Line>,
}

impl ScrubbedSource {
    /// True when a violation of `lint` at 1-indexed `line` is suppressed by
    /// an allow directive on that line, or by a *standalone* directive on
    /// the line above it.
    pub fn is_allowed(&self, lint: &str, line: usize) -> bool {
        let idx = line.saturating_sub(1);
        let own = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|l| l.allows.iter().any(|a| a.id == lint || a.id == "all"))
        };
        let above = |i: usize| {
            self.lines.get(i).is_some_and(|l| {
                l.allows
                    .iter()
                    .any(|a| a.standalone && (a.id == lint || a.id == "all"))
            })
        };
        own(idx) || (idx > 0 && above(idx - 1))
    }
}

/// Scrubs `src`, blanking comments and literal bodies and tagging
/// `#[cfg(test)]` regions.
pub fn scrub(src: &str) -> ScrubbedSource {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<(String, Vec<Allow>)> = Vec::new();
    let mut code = String::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut i = 0;

    macro_rules! end_line {
        () => {{
            lines.push((std::mem::take(&mut code), std::mem::take(&mut allows)));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            end_line!();
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (incl. doc comments): capture for allow(), blank.
            let standalone = code.chars().all(char::is_whitespace);
            let comment_col = code.chars().count() + 1;
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                code.push(' ');
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            parse_allow_directive(&comment, standalone, comment_col, &mut allows);
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comment with nesting; preserve line and column
            // structure by blanking every consumed character.
            let mut depth = 1u32;
            code.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    end_line!();
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    code.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        } else if c == '"' {
            i = scrub_string(&chars, i, &mut code, &mut lines, &mut allows);
        } else if is_raw_string_start(&chars, i) {
            let mut j = i;
            if chars[j] == 'b' {
                code.push('b');
                j += 1;
            }
            code.push('r');
            j += 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                code.push('#');
                hashes += 1;
                j += 1;
            }
            i = scrub_raw_string(&chars, j, &mut code, &mut lines, &mut allows, hashes);
        } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&chars, i) {
            code.push('b');
            i = scrub_string(&chars, i + 1, &mut code, &mut lines, &mut allows);
        } else if c == '\'' {
            i = scrub_char_or_lifetime(&chars, i, &mut code);
        } else {
            code.push(c);
            i += 1;
        }
    }
    if !code.is_empty() || !allows.is_empty() {
        end_line!();
    }

    ScrubbedSource {
        lines: tag_test_regions(lines),
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if prev_is_ident(chars, i) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Scrubs a normal (escaped) string literal starting at the opening quote;
/// returns the index past the closing quote.
fn scrub_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<(String, Vec<Allow>)>,
    allows: &mut Vec<Allow>,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Blank both the backslash and the escaped character so
                // columns after the literal stay aligned. A `\<newline>`
                // continuation leaves the newline for the main match so
                // line numbering stays honest.
                code.push(' ');
                i += 1;
                if chars.get(i).is_some_and(|&c| c != '\n') {
                    code.push(' ');
                    i += 1;
                }
            }
            '\n' => {
                lines.push((std::mem::take(code), std::mem::take(allows)));
                i += 1;
            }
            '"' => {
                code.push('"');
                return i + 1;
            }
            _ => {
                code.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Scrubs a raw string body starting at the opening quote; `hashes` is the
/// number of `#` in the delimiter. Returns the index past the terminator.
fn scrub_raw_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<(String, Vec<Allow>)>,
    allows: &mut Vec<Allow>,
    hashes: usize,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            lines.push((std::mem::take(code), std::mem::take(allows)));
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == '#')
                .count()
                == hashes
        {
            code.push('"');
            for _ in 0..hashes {
                code.push('#');
            }
            return i + 1 + hashes;
        } else {
            code.push(' ');
            i += 1;
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes; returns
/// the index past whatever was consumed.
fn scrub_char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let is_char_literal = match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    };
    if !is_char_literal {
        code.push('\'');
        return i + 1;
    }
    code.push('\'');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                code.push(' ');
                if j + 1 < chars.len() {
                    code.push(' ');
                }
                j += 2;
            }
            '\'' => {
                code.push('\'');
                return j + 1;
            }
            _ => {
                code.push(' ');
                j += 1;
            }
        }
    }
    j
}

fn parse_allow_directive(
    comment: &str,
    standalone: bool,
    comment_col: usize,
    out: &mut Vec<Allow>,
) {
    let Some(marker) = comment.find("finrad-lint:") else {
        return;
    };
    let col = comment_col + comment[..marker].chars().count();
    let rest = &comment[marker..];
    let Some(inner) = rest.split("allow(").nth(1) else {
        return;
    };
    let Some(ids) = inner.split(')').next() else {
        return;
    };
    for id in ids.split(',') {
        let id = id.trim();
        if !id.is_empty() {
            out.push(Allow {
                id: id.to_string(),
                standalone,
                col,
            });
        }
    }
}

/// Tags lines that belong to `#[cfg(test)]` modules by tracking brace depth.
fn tag_test_regions(raw: Vec<(String, Vec<Allow>)>) -> Vec<Line> {
    let mut out = Vec::with_capacity(raw.len());
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut test_depth: Option<i64> = None;
    for (code, allows) in raw {
        let mut in_test = test_depth.is_some();
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending_attr = false;
                        in_test = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth < td {
                            test_depth = None;
                        }
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` — attribute spent on a
                    // braceless item.
                    if pending_attr && test_depth.is_none() && !code.contains("#[cfg(test)]") {
                        pending_attr = false;
                    }
                }
                _ => {}
            }
        }
        out.push(Line {
            code,
            in_test,
            allows,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let s = scrub("let x = 1; // thread_rng in a comment\nlet y = \"thread_rng\";\n");
        assert!(!s.lines[0].code.contains("thread_rng"));
        assert!(s.lines[0].code.contains("let x = 1;"));
        assert!(!s.lines[1].code.contains("thread_rng"));
        assert!(s.lines[1].code.contains("let y = \""));
    }

    #[test]
    fn scrubbing_preserves_columns() {
        // The `b` after the block comment must stay at its original column;
        // ditto code following a string literal with escapes.
        let s = scrub("a /* xx */ b\nlet s = \"a\\nb\"; f32\n");
        assert_eq!(s.lines[0].code, "a          b");
        // `f32` sits at byte 16 of the original line; escapes inside the
        // literal were blanked 1:1 so it must still be there.
        assert_eq!(s.lines[1].code.find("f32"), Some(16));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scrub("a /* one /* two */ still */ b\nc /* open\nunwrap()\n*/ d\n");
        assert_eq!(s.lines[0].code.trim_end(), "a                           b");
        assert!(!s.lines[2].code.contains("unwrap"));
        assert!(s.lines[3].code.contains('d'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scrub("let p = r#\"panic!(\"x\")\"#;\nlet q = r\"todo!()\";\n");
        assert!(!s.lines[0].code.contains("panic!"));
        assert!(!s.lines[1].code.contains("todo!"));
    }

    #[test]
    fn lifetimes_survive_char_literals_blanked() {
        let s = scrub("fn f<'a>(x: &'a str) -> char { 'y' }\n");
        assert!(s.lines[0].code.contains("<'a>"));
        assert!(!s.lines[0].code.contains('y'));
    }

    #[test]
    fn allow_directives_apply_to_own_and_next_line() {
        let s = scrub("// finrad-lint: allow(panic-freedom)\nx.unwrap();\ny.unwrap();\n");
        assert!(s.is_allowed("panic-freedom", 2));
        assert!(!s.is_allowed("panic-freedom", 3));
        assert!(!s.is_allowed("float-discipline", 2));
    }

    #[test]
    fn trailing_directives_cover_only_their_own_line() {
        // Regression: a directive in a trailing comment used to suppress
        // the next line too, silently widening every inline allow().
        let s = scrub("x.unwrap(); // finrad-lint: allow(panic-freedom)\ny.unwrap();\n");
        assert!(s.is_allowed("panic-freedom", 1));
        assert!(!s.is_allowed("panic-freedom", 2));
        assert!(!s.lines[0].allows[0].standalone);
        // A standalone directive still reaches the next line.
        let s = scrub("    // finrad-lint: allow(panic-freedom)\ny.unwrap();\n");
        assert!(s.lines[0].allows[0].standalone);
        assert!(s.is_allowed("panic-freedom", 2));
    }

    #[test]
    fn directive_columns_are_recorded() {
        let s = scrub("x(); // finrad-lint: allow(panic-freedom, float-discipline)\n");
        assert_eq!(s.lines[0].allows.len(), 2);
        // "x(); // " is 8 chars; the directive text starts right after.
        assert_eq!(s.lines[0].allows[0].col, 9);
        assert_eq!(s.lines[0].allows[1].col, 9);
    }

    #[test]
    fn cfg_test_modules_are_tagged() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scrub(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[3].in_test);
        assert!(!s.lines[5].in_test);
    }
}
