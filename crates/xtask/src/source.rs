//! Comment- and string-aware scrubbing of Rust sources.
//!
//! The lint pass never wants to fire on text inside comments, doc comments,
//! or string/char literals, and it must honour `#[cfg(test)]` module
//! boundaries. Instead of a full parser, this module produces a *scrubbed*
//! view of a file: the body of every comment and literal is replaced by
//! spaces (delimiters kept, line structure preserved), so downstream lints
//! can do plain substring matching on `Line::code` without false positives.
//!
//! The scrubber also extracts `// finrad-lint: allow(<id>, ...)` directives
//! from line comments; a directive suppresses matching violations on its own
//! line and on the line directly below it.

/// One scrubbed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comment/literal bodies blanked out.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Lint IDs allow-listed on this line (`"all"` allows everything).
    pub allows: Vec<String>,
}

/// A whole file after scrubbing; lines are 0-indexed internally (lints
/// report 1-indexed).
#[derive(Debug)]
pub struct ScrubbedSource {
    /// The scrubbed lines, in file order.
    pub lines: Vec<Line>,
}

impl ScrubbedSource {
    /// True when a violation of `lint` at 1-indexed `line` is suppressed by
    /// an allow directive on that line or the one above it.
    pub fn is_allowed(&self, lint: &str, line: usize) -> bool {
        let idx = line.saturating_sub(1);
        let hit = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|l| l.allows.iter().any(|a| a == lint || a == "all"))
        };
        hit(idx) || (idx > 0 && hit(idx - 1))
    }
}

/// Scrubs `src`, blanking comments and literal bodies and tagging
/// `#[cfg(test)]` regions.
pub fn scrub(src: &str) -> ScrubbedSource {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<(String, Vec<String>)> = Vec::new();
    let mut code = String::new();
    let mut allows: Vec<String> = Vec::new();
    let mut i = 0;

    macro_rules! end_line {
        () => {{
            lines.push((std::mem::take(&mut code), std::mem::take(&mut allows)));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            end_line!();
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (incl. doc comments): capture for allow(), blank.
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            parse_allow_directive(&comment, &mut allows);
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comment with nesting; preserve line structure.
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    end_line!();
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i = scrub_string(&chars, i, &mut code, &mut lines, &mut allows, 0);
        } else if is_raw_string_start(&chars, i) {
            let mut j = i;
            if chars[j] == 'b' {
                code.push('b');
                j += 1;
            }
            code.push('r');
            j += 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                code.push('#');
                hashes += 1;
                j += 1;
            }
            i = scrub_raw_string(&chars, j, &mut code, &mut lines, &mut allows, hashes);
        } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&chars, i) {
            code.push('b');
            i = scrub_string(&chars, i + 1, &mut code, &mut lines, &mut allows, 0);
        } else if c == '\'' {
            i = scrub_char_or_lifetime(&chars, i, &mut code);
        } else {
            code.push(c);
            i += 1;
        }
    }
    if !code.is_empty() || !allows.is_empty() {
        end_line!();
    }

    ScrubbedSource {
        lines: tag_test_regions(lines),
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if prev_is_ident(chars, i) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Scrubs a normal (escaped) string literal starting at the opening quote;
/// returns the index past the closing quote.
fn scrub_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<(String, Vec<String>)>,
    allows: &mut Vec<String>,
    _hashes: usize,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // skip the escaped char
            '\n' => {
                lines.push((std::mem::take(code), std::mem::take(allows)));
                i += 1;
            }
            '"' => {
                code.push('"');
                return i + 1;
            }
            _ => {
                code.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Scrubs a raw string body starting at the opening quote; `hashes` is the
/// number of `#` in the delimiter. Returns the index past the terminator.
fn scrub_raw_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<(String, Vec<String>)>,
    allows: &mut Vec<String>,
    hashes: usize,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            lines.push((std::mem::take(code), std::mem::take(allows)));
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == '#')
                .count()
                == hashes
        {
            code.push('"');
            for _ in 0..hashes {
                code.push('#');
            }
            return i + 1 + hashes;
        } else {
            code.push(' ');
            i += 1;
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes; returns
/// the index past whatever was consumed.
fn scrub_char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let is_char_literal = match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    };
    if !is_char_literal {
        code.push('\'');
        return i + 1;
    }
    code.push('\'');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => {
                code.push('\'');
                return j + 1;
            }
            _ => {
                code.push(' ');
                j += 1;
            }
        }
    }
    j
}

fn parse_allow_directive(comment: &str, allows: &mut Vec<String>) {
    let Some(rest) = comment.split("finrad-lint:").nth(1) else {
        return;
    };
    let Some(inner) = rest.split("allow(").nth(1) else {
        return;
    };
    let Some(ids) = inner.split(')').next() else {
        return;
    };
    for id in ids.split(',') {
        let id = id.trim();
        if !id.is_empty() {
            allows.push(id.to_string());
        }
    }
}

/// Tags lines that belong to `#[cfg(test)]` modules by tracking brace depth.
fn tag_test_regions(raw: Vec<(String, Vec<String>)>) -> Vec<Line> {
    let mut out = Vec::with_capacity(raw.len());
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut test_depth: Option<i64> = None;
    for (code, allows) in raw {
        let mut in_test = test_depth.is_some();
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending_attr = false;
                        in_test = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth < td {
                            test_depth = None;
                        }
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` — attribute spent on a
                    // braceless item.
                    if pending_attr && test_depth.is_none() && !code.contains("#[cfg(test)]") {
                        pending_attr = false;
                    }
                }
                _ => {}
            }
        }
        out.push(Line {
            code,
            in_test,
            allows,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let s = scrub("let x = 1; // thread_rng in a comment\nlet y = \"thread_rng\";\n");
        assert!(!s.lines[0].code.contains("thread_rng"));
        assert!(s.lines[0].code.contains("let x = 1;"));
        assert!(!s.lines[1].code.contains("thread_rng"));
        assert!(s.lines[1].code.contains("let y = \""));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scrub("a /* one /* two */ still */ b\nc /* open\nunwrap()\n*/ d\n");
        assert_eq!(s.lines[0].code.trim_end(), "a  b");
        assert!(!s.lines[2].code.contains("unwrap"));
        assert!(s.lines[3].code.contains('d'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scrub("let p = r#\"panic!(\"x\")\"#;\nlet q = r\"todo!()\";\n");
        assert!(!s.lines[0].code.contains("panic!"));
        assert!(!s.lines[1].code.contains("todo!"));
    }

    #[test]
    fn lifetimes_survive_char_literals_blanked() {
        let s = scrub("fn f<'a>(x: &'a str) -> char { 'y' }\n");
        assert!(s.lines[0].code.contains("<'a>"));
        assert!(!s.lines[0].code.contains('y'));
    }

    #[test]
    fn allow_directives_apply_to_own_and_next_line() {
        let s = scrub("// finrad-lint: allow(panic-freedom)\nx.unwrap();\ny.unwrap();\n");
        assert!(s.is_allowed("panic-freedom", 2));
        assert!(!s.is_allowed("panic-freedom", 3));
        assert!(!s.is_allowed("float-discipline", 2));
    }

    #[test]
    fn cfg_test_modules_are_tagged() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scrub(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[3].in_test);
        assert!(!s.lines[5].in_test);
    }
}
