//! The four domain lint families.
//!
//! All lints operate on a [`ScrubbedSource`](crate::source::ScrubbedSource)
//! so comments and literals can never produce false positives, and all of
//! them honour `// finrad-lint: allow(<id>)` on the violation line or the
//! line above.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::source::ScrubbedSource;

/// Identifier of a lint family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Bare `f64` in public physics signatures where a unit newtype exists.
    UnitSafety,
    /// Entropy-seeded or wall-clock-seeded randomness in library code.
    RngDeterminism,
    /// `unwrap`/`expect`/`panic!`-family calls and LUT slice indexing in
    /// non-test library code.
    PanicFreedom,
    /// `f32`, float `==`/`!=`, and `partial_cmp().unwrap()` patterns.
    FloatDiscipline,
}

impl LintId {
    /// The stable string ID used in allow directives, the baseline file and
    /// the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::UnitSafety => "unit-safety",
            LintId::RngDeterminism => "rng-determinism",
            LintId::PanicFreedom => "panic-freedom",
            LintId::FloatDiscipline => "float-discipline",
        }
    }

    /// Every lint family, in reporting order.
    pub const ALL: [LintId; 4] = [
        LintId::UnitSafety,
        LintId::RngDeterminism,
        LintId::PanicFreedom,
        LintId::FloatDiscipline,
    ];
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which lint fired.
    pub lint: LintId,
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Crate directory names (under `crates/`) whose public API must use the
/// `finrad-units` newtypes instead of bare `f64` for dimensioned values.
pub const UNIT_SAFETY_CRATES: [&str; 6] = [
    "transport",
    "finfet",
    "spice",
    "sram",
    "core",
    "environment",
];

/// Runs every lint family over one scrubbed file.
///
/// `unit_safety` gates the unit-safety family: it only applies to the
/// physics crates listed in [`UNIT_SAFETY_CRATES`].
pub fn lint_source(path: &Path, src: &ScrubbedSource, unit_safety: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    if unit_safety {
        lint_unit_safety(path, src, &mut out);
    }
    lint_rng_determinism(path, src, &mut out);
    lint_panic_freedom(path, src, &mut out);
    lint_float_discipline(path, src, &mut out);
    out.retain(|v| !src.is_allowed(v.lint.as_str(), v.line));
    out.sort_by_key(|v| (v.line, v.lint));
    out
}

// ---------------------------------------------------------------------------
// rng-determinism
// ---------------------------------------------------------------------------

const RNG_FORBIDDEN: [(&str, &str); 4] = [
    (
        "thread_rng",
        "entropy-seeded RNG breaks Monte-Carlo reproducibility",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG breaks Monte-Carlo reproducibility",
    ),
    (
        "SystemTime",
        "wall-clock-derived seeds break Monte-Carlo reproducibility",
    ),
    (
        "rand::random",
        "implicit thread-local RNG breaks Monte-Carlo reproducibility",
    ),
];

fn lint_rng_determinism(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        for (needle, why) in RNG_FORBIDDEN {
            if contains_word(&line.code, needle) {
                out.push(Violation {
                    lint: LintId::RngDeterminism,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "`{needle}`: {why}; seed a `finrad_numerics::rng::Xoshiro256pp` instead"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

const PANIC_PATTERNS: [&str; 5] = [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

fn lint_panic_freedom(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation {
                    lint: LintId::PanicFreedom,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "`{}` can panic in library code; return a Result or document the invariant with an allow",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
        for name in lut_index_idents(&line.code) {
            out.push(Violation {
                lint: LintId::PanicFreedom,
                file: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "direct slice indexing on LUT `{name}` can panic on out-of-range lookups; use `.get()` or a checked interpolation call"
                ),
            });
        }
    }
}

/// Identifiers ending in `lut` or `table` that are immediately indexed with
/// `[`.
fn lut_index_idents(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut found = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let mut start = i;
        while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
            start -= 1;
        }
        if start == i {
            continue;
        }
        let ident: String = chars[start..i].iter().collect();
        let lower = ident.to_lowercase();
        if lower.ends_with("lut") || lower.ends_with("table") {
            found.push(ident);
        }
    }
    found
}

// ---------------------------------------------------------------------------
// float-discipline
// ---------------------------------------------------------------------------

fn lint_float_discipline(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if contains_word(code, "f32") {
            out.push(Violation {
                lint: LintId::FloatDiscipline,
                file: path.to_path_buf(),
                line: idx + 1,
                message: "`f32` loses precision the transport/circuit chain needs; use `f64`"
                    .to_string(),
            });
        }
        if code.contains("partial_cmp") && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            out.push(Violation {
                lint: LintId::FloatDiscipline,
                file: path.to_path_buf(),
                line: idx + 1,
                message:
                    "`partial_cmp().unwrap()` panics on NaN; use `f64::total_cmp` for a total order"
                        .to_string(),
            });
        }
        for col in float_eq_positions(code) {
            let op = &code[col..col + 2];
            out.push(Violation {
                lint: LintId::FloatDiscipline,
                file: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "`{op}` against a float literal is exact-equality on floats; compare with a tolerance or allow() the sentinel"
                ),
            });
        }
    }
}

/// Byte offsets of `==`/`!=` operators with a float literal on either side.
fn float_eq_positions(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==" && (i == 0 || !b"<>=!+-*/%&|^".contains(&bytes[i - 1]));
        let is_ne = two == b"!=";
        if (is_eq || is_ne) && bytes.get(i + 2) != Some(&b'=') {
            let lhs = token_before(code, i);
            let rhs = token_after(code, i + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                found.push(i);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    found
}

fn token_before(code: &str, end: usize) -> String {
    let chars: Vec<char> = code[..end].chars().collect();
    let mut j = chars.len();
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    let stop = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || ".,_".contains(chars[j - 1])) {
        j -= 1;
    }
    chars[j..stop].iter().collect()
}

fn token_after(code: &str, start: usize) -> String {
    let chars: Vec<char> = code[start..].chars().collect();
    let mut j = 0;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    if chars.get(j) == Some(&'-') {
        j += 1;
    }
    let begin = j;
    while j < chars.len() && (chars[j].is_alphanumeric() || "._".contains(chars[j])) {
        j += 1;
    }
    chars[begin..j].iter().collect()
}

/// Recognizes `1.0`, `.5`, `2.`, `1e-12`, `3.0e8`, `0.0f64` as floats.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let has_dot = tok.contains('.');
    let has_exp =
        tok.chars().any(|c| c == 'e' || c == 'E') && tok.starts_with(|c: char| c.is_ascii_digit());
    (has_dot || has_exp)
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || ".eE+-_".contains(c))
}

// ---------------------------------------------------------------------------
// unit-safety
// ---------------------------------------------------------------------------

/// Parameter/function names that denote a dimensioned quantity with an
/// existing `finrad-units` newtype.
const UNIT_EXACT: [&str; 6] = ["vdd", "flux", "fit", "energy", "charge", "voltage"];
const UNIT_SUFFIXES: [&str; 18] = [
    "_ev",
    "_kev",
    "_mev",
    "_gev",
    "_charge",
    "_fc",
    "_coulombs",
    "_electrons",
    "_nm",
    "_um",
    "_cm",
    "_volt",
    "_volts",
    "_mv",
    "_flux",
    "_fit",
    "_ps",
    "_seconds",
];

fn matches_unit_vocab(name: &str) -> bool {
    let name = name.trim_start_matches('_');
    UNIT_EXACT.contains(&name) || UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

fn lint_unit_safety(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    // Join non-test lines (blanking test ones) so multi-line signatures can
    // be reassembled while keeping a byte-offset → line mapping.
    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(src.lines.len());
    for line in &src.lines {
        line_starts.push(joined.len());
        if line.in_test {
            joined.push('\n');
        } else {
            joined.push_str(&line.code);
            joined.push('\n');
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let mut search_from = 0;
    while let Some(rel) = joined[search_from..].find("pub fn ") {
        let fn_start = search_from + rel;
        search_from = fn_start + 7;
        let Some(sig_end_rel) = joined[fn_start..].find(['{', ';']) else {
            break;
        };
        let sig = &joined[fn_start..fn_start + sig_end_rel];
        let name = sig["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>();

        let Some(open) = sig.find('(') else { continue };
        let Some(params) = matching_paren_body(&sig[open..]) else {
            continue;
        };
        for (param_rel, param) in split_top_level(params) {
            let Some((pname, ptype)) = param.split_once(':') else {
                continue;
            };
            let pname = pname.trim().trim_start_matches("mut ").trim();
            if ptype.trim() == "f64" && matches_unit_vocab(pname) {
                let leading_ws = param.len() - param.trim_start().len();
                let offset = fn_start + open + 1 + param_rel + leading_ws;
                out.push(Violation {
                    lint: LintId::UnitSafety,
                    file: path.to_path_buf(),
                    line: line_of(offset),
                    message: format!(
                        "`pub fn {name}` takes `{pname}: f64`; use the matching finrad-units newtype"
                    ),
                });
            }
        }

        if let Some(ret) = sig[open..].find("->") {
            let ret_ty = sig[open + ret + 2..]
                .split(" where")
                .next()
                .unwrap_or("")
                .trim();
            if ret_ty == "f64" && matches_unit_vocab(&name) {
                out.push(Violation {
                    lint: LintId::UnitSafety,
                    file: path.to_path_buf(),
                    line: line_of(fn_start),
                    message: format!(
                        "`pub fn {name}` returns bare `f64`; use the matching finrad-units newtype"
                    ),
                });
            }
        }
    }
}

/// Given a string starting at `(`, returns the body up to the matching `)`.
fn matching_paren_body(s: &str) -> Option<&str> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a parameter list on top-level commas, yielding each parameter and
/// its byte offset within the list.
fn split_top_level(params: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0;
    let bytes = params.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'<' => angle += 1,
            b'>' => {
                if i == 0 || bytes[i - 1] != b'-' {
                    angle -= 1;
                }
            }
            b',' if depth == 0 && angle <= 0 => {
                out.push((start, &params[start..i]));
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        out.push((start, &params[start..]));
    }
    out
}

/// True when `code` contains `word` bounded by non-identifier characters.
fn contains_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scrub;
    use std::path::Path;

    fn run(src: &str) -> Vec<Violation> {
        lint_source(Path::new("x.rs"), &scrub(src), true)
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let r = thread_rng();", "thread_rng"));
        assert!(!contains_word("let my_thread_rng_thing = 1;", "thread_rng"));
        assert!(contains_word("x: f32,", "f32"));
        assert!(!contains_word("xf32y", "f32"));
    }

    #[test]
    fn float_literal_recognition() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("0.0f64"));
        assert!(is_float_literal("1e-12"));
        assert!(is_float_literal("3.0e8"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("0x1f"));
    }

    #[test]
    fn detects_float_equality_but_not_integers() {
        let v = run("fn f(a: f64) -> bool { a == 0.0 }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::FloatDiscipline);
        assert!(run("fn f(a: usize) -> bool { a == 0 }\n").is_empty());
        assert!(run("fn f(a: f64) -> bool { a <= 0.0 }\n").is_empty());
    }

    #[test]
    fn unit_safety_multiline_signature() {
        let src = "pub fn build(\n    lo_mev: f64,\n    hi_mev: f64,\n) -> u32 { 0 }\n";
        let v = run(src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].lint, LintId::UnitSafety);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn unit_safety_return_type() {
        let v = run("pub fn vdd(&self) -> f64 { 0.8 }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("returns bare `f64`"));
    }

    #[test]
    fn unit_safety_ignores_newtypes_and_private_fns() {
        assert!(run("pub fn vdd(&self) -> Voltage { self.vdd }\n").is_empty());
        assert!(run("fn vdd(&self) -> f64 { 0.8 }\n").is_empty());
        assert!(run("pub fn scale(factor: f64) -> f64 { factor }\n").is_empty());
    }

    #[test]
    fn lut_indexing_flagged() {
        let v = run("fn f() { let y = self.pair_lut[i]; }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("pair_lut"));
        assert!(run("fn f() { let y = self.pair_lut.get(i); }\n").is_empty());
    }

    #[test]
    fn allow_suppresses() {
        let src = "fn f() {\n    // finrad-lint: allow(panic-freedom)\n    x.unwrap();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_panic_lints_not_rng() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let r = thread_rng(); }\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::RngDeterminism);
    }
}
