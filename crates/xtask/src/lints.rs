//! The lint families.
//!
//! Per-file lints operate on a [`ScrubbedSource`](crate::source::ScrubbedSource)
//! (substring families inherited from PR 1) and on a
//! [`LexedFile`](crate::lexer::LexedFile) (token families added with the
//! workspace analyzer), so comments and literals can never produce false
//! positives. The cross-file families additionally consult the phase-1
//! [`WorkspaceIndex`](crate::index::WorkspaceIndex). All lints honour
//! `// finrad-lint: allow(<id>)` on the violation line, or on the line
//! above when the directive is a standalone comment; directives that
//! suppress nothing are themselves reported by the `unused-suppression`
//! audit, so the allow inventory can only ratchet down.
//!
//! Every violation carries a 1-indexed (line, col) span. Columns are
//! measured in characters of the original line — the scrubber and the lexer
//! both preserve columns exactly for this reason.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::index::{WorkspaceIndex, CHECKPOINT_FILE};
use crate::lexer::{LexedFile, TokenKind};
use crate::source::ScrubbedSource;

/// Identifier of a lint family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Bare `f64` in public physics signatures where a unit newtype exists.
    UnitSafety,
    /// `si_value()` / `from_si(..)` raw-f64 escape hatches outside the
    /// sanctioned sites (units internals, checkpoint serialization, SPICE
    /// MNA assembly).
    RawEscapeAudit,
    /// Entropy-seeded or wall-clock-seeded randomness in library code.
    RngDeterminism,
    /// `unwrap`/`expect`/`panic!`-family calls and LUT slice indexing in
    /// non-test library code.
    PanicFreedom,
    /// `f32`, float `==`/`!=`, and `partial_cmp().unwrap()` patterns.
    FloatDiscipline,
    /// Metric-key string literals at Recorder call sites must be declared
    /// in `crates/observe/src/keys.rs`.
    MetricsKeyRegistry,
    /// RNG seed arithmetic outside the sanctioned derivation helpers in
    /// `crates/numerics/src/rng.rs`.
    SeedDiscipline,
    /// `static mut`, `thread_local!`, and `Ordering::Relaxed` in library
    /// code — shared-state hazards for the parallel Monte-Carlo paths.
    SharedStateAudit,
    /// The checkpoint (de)serialization region changed without a
    /// `CHECKPOINT_VERSION` bump (fingerprint recorded in the baseline).
    CheckpointSchemaDrift,
    /// An `allow(...)` directive that no longer suppresses anything.
    UnusedSuppression,
    /// A cycle in the workspace lock-acquisition-order graph (potential
    /// deadlock), or the inline poisoned-lock recovery idiom outside the
    /// sanctioned `finrad_spice::sync` helpers.
    LockOrderAudit,
    /// A `MutexGuard` provably live across a blocking call (SPICE solve,
    /// `Condvar` wait on a different lock, `JoinHandle::join`, checkpoint
    /// I/O).
    GuardLifetimeAudit,
    /// A blocking loop reachable from a supervised job entry point that
    /// never polls its cancellation token.
    CancellationResponsiveness,
    /// A `Result` silently dropped via `let _ =` or an unused binding.
    ResultDiscardAudit,
}

impl LintId {
    /// The stable string ID used in allow directives, the baseline file and
    /// the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::UnitSafety => "unit-safety",
            LintId::RawEscapeAudit => "raw-escape-audit",
            LintId::RngDeterminism => "rng-determinism",
            LintId::PanicFreedom => "panic-freedom",
            LintId::FloatDiscipline => "float-discipline",
            LintId::MetricsKeyRegistry => "metrics-key-registry",
            LintId::SeedDiscipline => "seed-discipline",
            LintId::SharedStateAudit => "shared-state-audit",
            LintId::CheckpointSchemaDrift => "checkpoint-schema-drift",
            LintId::UnusedSuppression => "unused-suppression",
            LintId::LockOrderAudit => "lock-order-audit",
            LintId::GuardLifetimeAudit => "guard-lifetime-audit",
            LintId::CancellationResponsiveness => "cancellation-responsiveness",
            LintId::ResultDiscardAudit => "result-discard-audit",
        }
    }

    /// Whether violations of this family may be parked in the ratchet
    /// baseline. Determinism breaks, schema drift, stale suppressions, and
    /// potential deadlocks must be fixed, never budgeted.
    pub fn baselineable(self) -> bool {
        !matches!(
            self,
            LintId::RngDeterminism
                | LintId::RawEscapeAudit
                | LintId::CheckpointSchemaDrift
                | LintId::UnusedSuppression
                | LintId::LockOrderAudit
        )
    }

    /// Every lint family, in reporting order.
    pub const ALL: [LintId; 14] = [
        LintId::UnitSafety,
        LintId::RawEscapeAudit,
        LintId::RngDeterminism,
        LintId::PanicFreedom,
        LintId::FloatDiscipline,
        LintId::MetricsKeyRegistry,
        LintId::SeedDiscipline,
        LintId::SharedStateAudit,
        LintId::CheckpointSchemaDrift,
        LintId::UnusedSuppression,
        LintId::LockOrderAudit,
        LintId::GuardLifetimeAudit,
        LintId::CancellationResponsiveness,
        LintId::ResultDiscardAudit,
    ];
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which lint fired.
    pub lint: LintId,
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed character column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.lint,
            self.message
        )
    }
}

/// Crate directory names (under `crates/`) whose public API must use the
/// `finrad-units` newtypes instead of bare `f64` for dimensioned values.
pub const UNIT_SAFETY_CRATES: [&str; 6] = [
    "transport",
    "finfet",
    "spice",
    "sram",
    "core",
    "environment",
];

/// Runs every per-file lint family over one file and applies suppression.
///
/// `unit_safety` gates the unit-safety family (it only applies to the
/// physics crates in [`UNIT_SAFETY_CRATES`]). `index` enables the
/// cross-file families; without it the metric-key lint is skipped and the
/// seed lint has no sanctioned regions (fine for fixtures outside
/// `rng.rs`). Checkpoint drift is a workspace-level check and is reported
/// by [`checkpoint_drift`], not here.
pub fn lint_file(
    path: &Path,
    src: &ScrubbedSource,
    lexed: &LexedFile,
    unit_safety: bool,
    index: Option<&WorkspaceIndex>,
) -> Vec<Violation> {
    let out = lint_file_raw(path, src, lexed, unit_safety, index);
    let mut out = apply_suppressions(path, src, out);
    out.sort_by_key(|v| (v.line, v.col, v.lint));
    out
}

/// Like [`lint_file`] but *without* applying suppression directives.
/// [`crate::scan_tree`] uses this so the workspace-level flow families
/// ([`crate::flow`]) can merge their violations in first — an allow
/// directive covering a flow finding must count as *used* by the
/// unused-suppression audit.
pub fn lint_file_raw(
    path: &Path,
    src: &ScrubbedSource,
    lexed: &LexedFile,
    unit_safety: bool,
    index: Option<&WorkspaceIndex>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if unit_safety {
        lint_unit_safety(path, src, &mut out);
    }
    lint_raw_escape(path, lexed, &mut out);
    lint_rng_determinism(path, src, &mut out);
    lint_panic_freedom(path, src, &mut out);
    lint_float_discipline(path, src, &mut out);
    if let Some(index) = index {
        lint_metrics_keys(path, lexed, index, &mut out);
    }
    lint_seed_discipline(path, lexed, index, &mut out);
    lint_shared_state(path, lexed, &mut out);
    out
}

/// Drops violations covered by `allow(...)` directives and reports
/// directives that covered nothing as `unused-suppression` violations.
/// Directives inside `#[cfg(test)]` regions are never audited (most
/// families are test-exempt, so they legitimately may not fire).
pub fn apply_suppressions(
    path: &Path,
    src: &ScrubbedSource,
    raw: Vec<Violation>,
) -> Vec<Violation> {
    let mut used: Vec<Vec<bool>> = src
        .lines
        .iter()
        .map(|l| vec![false; l.allows.len()])
        .collect();
    let mut kept = Vec::new();
    for v in raw {
        let idx = v.line.saturating_sub(1);
        let mut suppressed = false;
        if let Some(line) = src.lines.get(idx) {
            for (ai, allow) in line.allows.iter().enumerate() {
                if allow.id == v.lint.as_str() || allow.id == "all" {
                    used[idx][ai] = true;
                    suppressed = true;
                }
            }
        }
        if idx > 0 {
            if let Some(line) = src.lines.get(idx - 1) {
                for (ai, allow) in line.allows.iter().enumerate() {
                    if allow.standalone && (allow.id == v.lint.as_str() || allow.id == "all") {
                        used[idx - 1][ai] = true;
                        suppressed = true;
                    }
                }
            }
        }
        if !suppressed {
            kept.push(v);
        }
    }
    for (li, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (ai, allow) in line.allows.iter().enumerate() {
            if !used[li][ai] {
                kept.push(Violation {
                    lint: LintId::UnusedSuppression,
                    file: path.to_path_buf(),
                    line: li + 1,
                    col: allow.col,
                    message: format!(
                        "`allow({})` suppresses nothing; remove the stale directive",
                        allow.id
                    ),
                });
            }
        }
    }
    kept
}

// ---------------------------------------------------------------------------
// rng-determinism
// ---------------------------------------------------------------------------

const RNG_FORBIDDEN: [(&str, &str); 4] = [
    (
        "thread_rng",
        "entropy-seeded RNG breaks Monte-Carlo reproducibility",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG breaks Monte-Carlo reproducibility",
    ),
    (
        "SystemTime",
        "wall-clock-derived seeds break Monte-Carlo reproducibility",
    ),
    (
        "rand::random",
        "implicit thread-local RNG breaks Monte-Carlo reproducibility",
    ),
];

fn lint_rng_determinism(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        for (needle, why) in RNG_FORBIDDEN {
            if let Some(at) = find_word(&line.code, needle) {
                out.push(Violation {
                    lint: LintId::RngDeterminism,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    col: at + 1,
                    message: format!(
                        "`{needle}`: {why}; seed a `finrad_numerics::rng::Xoshiro256pp` instead"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

const PANIC_PATTERNS: [&str; 5] = [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

fn lint_panic_freedom(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if let Some(at) = line.code.find(pat) {
                out.push(Violation {
                    lint: LintId::PanicFreedom,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    col: at + 2, // skip the leading `.` of method patterns
                    message: format!(
                        "`{}` can panic in library code; return a Result or document the invariant with an allow",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
        for (at, name) in lut_index_idents(&line.code) {
            out.push(Violation {
                lint: LintId::PanicFreedom,
                file: path.to_path_buf(),
                line: idx + 1,
                col: at + 1,
                message: format!(
                    "direct slice indexing on LUT `{name}` can panic on out-of-range lookups; use `.get()` or a checked interpolation call"
                ),
            });
        }
    }
}

/// Identifiers ending in `lut` or `table` that are immediately indexed with
/// `[`, with the char offset of the identifier start.
fn lut_index_idents(code: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = code.chars().collect();
    let mut found = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let mut start = i;
        while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
            start -= 1;
        }
        if start == i {
            continue;
        }
        let ident: String = chars[start..i].iter().collect();
        let lower = ident.to_lowercase();
        if lower.ends_with("lut") || lower.ends_with("table") {
            found.push((start, ident));
        }
    }
    found
}

// ---------------------------------------------------------------------------
// float-discipline
// ---------------------------------------------------------------------------

fn lint_float_discipline(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if let Some(at) = find_word(code, "f32") {
            out.push(Violation {
                lint: LintId::FloatDiscipline,
                file: path.to_path_buf(),
                line: idx + 1,
                col: at + 1,
                message: "`f32` loses precision the transport/circuit chain needs; use `f64`"
                    .to_string(),
            });
        }
        if let Some(at) = code.find("partial_cmp") {
            if code.contains(".unwrap()") || code.contains(".expect(") {
                out.push(Violation {
                    lint: LintId::FloatDiscipline,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    col: at + 1,
                    message:
                        "`partial_cmp().unwrap()` panics on NaN; use `f64::total_cmp` for a total order"
                            .to_string(),
                });
            }
        }
        for at in float_eq_positions(code) {
            let op = &code[at..at + 2];
            out.push(Violation {
                lint: LintId::FloatDiscipline,
                file: path.to_path_buf(),
                line: idx + 1,
                col: at + 1,
                message: format!(
                    "`{op}` against a float literal is exact-equality on floats; compare with a tolerance or allow() the sentinel"
                ),
            });
        }
    }
}

/// Byte offsets of `==`/`!=` operators with a float literal on either side.
fn float_eq_positions(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==" && (i == 0 || !b"<>=!+-*/%&|^".contains(&bytes[i - 1]));
        let is_ne = two == b"!=";
        if (is_eq || is_ne) && bytes.get(i + 2) != Some(&b'=') {
            let lhs = token_before(code, i);
            let rhs = token_after(code, i + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                found.push(i);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    found
}

fn token_before(code: &str, end: usize) -> String {
    let chars: Vec<char> = code[..end].chars().collect();
    let mut j = chars.len();
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    let stop = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || ".,_".contains(chars[j - 1])) {
        j -= 1;
    }
    chars[j..stop].iter().collect()
}

fn token_after(code: &str, start: usize) -> String {
    let chars: Vec<char> = code[start..].chars().collect();
    let mut j = 0;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    if chars.get(j) == Some(&'-') {
        j += 1;
    }
    let begin = j;
    while j < chars.len() && (chars[j].is_alphanumeric() || "._".contains(chars[j])) {
        j += 1;
    }
    chars[begin..j].iter().collect()
}

/// Recognizes `1.0`, `.5`, `2.`, `1e-12`, `3.0e8`, `0.0f64` as floats.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let has_dot = tok.contains('.');
    let has_exp =
        tok.chars().any(|c| c == 'e' || c == 'E') && tok.starts_with(|c: char| c.is_ascii_digit());
    (has_dot || has_exp)
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || ".eE+-_".contains(c))
}

// ---------------------------------------------------------------------------
// metrics-key-registry
// ---------------------------------------------------------------------------

/// Recorder entry points whose first argument is a metric key.
const RECORDER_CALLS: [&str; 3] = ["counter_add", "record", "span"];

fn lint_metrics_keys(
    path: &Path,
    lexed: &LexedFile,
    index: &WorkspaceIndex,
    out: &mut Vec<Violation>,
) {
    for w in lexed.tokens.windows(3) {
        let is_keyed_call = w[0].kind == TokenKind::Ident
            && RECORDER_CALLS.contains(&w[0].text.as_str())
            && w[1].text == "("
            && w[2].kind == TokenKind::Str;
        if !is_keyed_call || w[2].in_test {
            continue;
        }
        let key = &w[2].text;
        if index.key_is_declared(key) {
            continue;
        }
        let hint = match index.nearest_key(key) {
            Some(near) => format!("; did you mean `{near}`?"),
            None => String::new(),
        };
        out.push(Violation {
            lint: LintId::MetricsKeyRegistry,
            file: path.to_path_buf(),
            line: w[2].line,
            col: w[2].col,
            message: format!(
                "metric key \"{key}\" is not declared in crates/observe/src/keys.rs — undeclared keys silently vanish from BENCH trajectories{hint}"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// seed-discipline
// ---------------------------------------------------------------------------

/// Method names that indicate seed arithmetic inside a constructor call.
const SEED_ARITH_METHODS: [&str; 6] = [
    "wrapping_mul",
    "wrapping_add",
    "wrapping_sub",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
];
const SEED_ARITH_OPS: [char; 9] = ['^', '+', '-', '*', '/', '%', '&', '|', '<'];

fn lint_seed_discipline(
    path: &Path,
    lexed: &LexedFile,
    index: Option<&WorkspaceIndex>,
    out: &mut Vec<Violation>,
) {
    let sanctioned = |line: usize| index.is_some_and(|ix| ix.line_is_seed_sanctioned(path, line));
    let tokens = &lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident || sanctioned(tok.line) {
            continue;
        }
        if tok.text == "seed_from_u64" && tokens.get(i + 1).is_some_and(|t| t.text == "(") {
            // Scan the argument list for derivation arithmetic; a bare
            // ident/field/literal seed is fine.
            let mut depth = 0i64;
            let mut adhoc = false;
            for t in &tokens[i + 1..] {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                let is_op = t.kind == TokenKind::Punct
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| SEED_ARITH_OPS.contains(&c));
                let is_arith_method =
                    t.kind == TokenKind::Ident && SEED_ARITH_METHODS.contains(&t.text.as_str());
                if is_op || is_arith_method {
                    adhoc = true;
                }
            }
            if adhoc {
                out.push(Violation {
                    lint: LintId::SeedDiscipline,
                    file: path.to_path_buf(),
                    line: tok.line,
                    col: tok.col,
                    message: "ad-hoc seed arithmetic in `seed_from_u64(...)`; derive parallel streams with `Xoshiro256pp::stream`/`salted_stream` so chunk seeding stays bit-stable"
                        .to_string(),
                });
            }
        }
        let is_splitmix_new = tok.text == "SplitMix64"
            && tokens.get(i + 1).is_some_and(|t| t.text == ":")
            && tokens.get(i + 2).is_some_and(|t| t.text == ":")
            && tokens.get(i + 3).is_some_and(|t| t.text == "new");
        if is_splitmix_new {
            out.push(Violation {
                lint: LintId::SeedDiscipline,
                file: path.to_path_buf(),
                line: tok.line,
                col: tok.col,
                message: "`SplitMix64` is the seed-expansion engine internal to `finrad_numerics::rng`; construct `Xoshiro256pp` through its sanctioned helpers instead"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// shared-state-audit
// ---------------------------------------------------------------------------

fn lint_shared_state(path: &Path, lexed: &LexedFile, out: &mut Vec<Violation>) {
    let tokens = &lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "static" if tokens.get(i + 1).is_some_and(|t| t.text == "mut") => {
                out.push(Violation {
                    lint: LintId::SharedStateAudit,
                    file: path.to_path_buf(),
                    line: tok.line,
                    col: tok.col,
                    message: "`static mut` is unsynchronized shared state; use an atomic, a lock, or pass state explicitly"
                        .to_string(),
                });
            }
            "thread_local" if tokens.get(i + 1).is_some_and(|t| t.text == "!") => {
                out.push(Violation {
                    lint: LintId::SharedStateAudit,
                    file: path.to_path_buf(),
                    line: tok.line,
                    col: tok.col,
                    message: "`thread_local!` state diverges across workers and breaks core-count bit-identity of the parallel MC; derive per-chunk state instead"
                        .to_string(),
                });
            }
            "Relaxed"
                if i >= 3
                    && tokens[i - 1].text == ":"
                    && tokens[i - 2].text == ":"
                    && tokens[i - 3].text == "Ordering" =>
            {
                out.push(Violation {
                    lint: LintId::SharedStateAudit,
                    file: path.to_path_buf(),
                    line: tok.line,
                    col: tok.col,
                    message: "`Ordering::Relaxed` gives no cross-thread ordering; use `SeqCst`, or allow() a documented monotonic counter"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// checkpoint-schema-drift
// ---------------------------------------------------------------------------

/// Compares the live checkpoint schema in `index` against the
/// `(fingerprint, format-version)` pair recorded in the baseline. Returns
/// workspace-level violations anchored at the `CHECKPOINT_VERSION`
/// constant.
pub fn checkpoint_drift(index: &WorkspaceIndex, recorded: Option<(u64, u32)>) -> Vec<Violation> {
    let file = PathBuf::from(CHECKPOINT_FILE);
    let Some(schema) = &index.checkpoint else {
        return vec![Violation {
            lint: LintId::CheckpointSchemaDrift,
            file,
            line: 1,
            col: 1,
            message: "`CHECKPOINT_VERSION: u32` constant not found; the checkpoint codec must declare its format version"
                .to_string(),
        }];
    };
    let at = |message: String| Violation {
        lint: LintId::CheckpointSchemaDrift,
        file: file.clone(),
        line: schema.version_line,
        col: schema.version_col,
        message,
    };
    match recorded {
        None => vec![at(
            "no recorded checkpoint schema fingerprint in xtask/lint-baseline.toml; run `cargo xtask lint --fix-allowlist` to record it"
                .to_string(),
        )],
        Some((fp, ver)) if fp != schema.fingerprint && ver == schema.version => vec![at(format!(
            "checkpoint (de)serialization code changed (fingerprint {:016x} -> {:016x}) without a CHECKPOINT_VERSION bump; bump the version and refresh with `cargo xtask lint --fix-allowlist`",
            fp, schema.fingerprint
        ))],
        Some((fp, _)) if fp != schema.fingerprint => vec![at(format!(
            "CHECKPOINT_VERSION bumped to {}; refresh the recorded schema fingerprint with `cargo xtask lint --fix-allowlist`",
            schema.version
        ))],
        Some((_, ver)) if ver != schema.version => vec![at(format!(
            "recorded format-version {} does not match CHECKPOINT_VERSION {}; refresh with `cargo xtask lint --fix-allowlist`",
            ver, schema.version
        ))],
        Some(_) => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// unit-safety
// ---------------------------------------------------------------------------

/// Parameter/function names that denote a dimensioned quantity with an
/// existing `finrad-units` newtype.
const UNIT_EXACT: [&str; 6] = ["vdd", "flux", "fit", "energy", "charge", "voltage"];
const UNIT_SUFFIXES: [&str; 18] = [
    "_ev",
    "_kev",
    "_mev",
    "_gev",
    "_charge",
    "_fc",
    "_coulombs",
    "_electrons",
    "_nm",
    "_um",
    "_cm",
    "_volt",
    "_volts",
    "_mv",
    "_flux",
    "_fit",
    "_ps",
    "_seconds",
];

fn matches_unit_vocab(name: &str) -> bool {
    let name = name.trim_start_matches('_');
    UNIT_EXACT.contains(&name) || UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

fn lint_unit_safety(path: &Path, src: &ScrubbedSource, out: &mut Vec<Violation>) {
    // Join non-test lines (blanking test ones) so multi-line signatures can
    // be reassembled while keeping a byte-offset → (line, col) mapping.
    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(src.lines.len());
    for line in &src.lines {
        line_starts.push(joined.len());
        if line.in_test {
            joined.push('\n');
        } else {
            joined.push_str(&line.code);
            joined.push('\n');
        }
    }
    let line_col_of = |offset: usize| -> (usize, usize) {
        let line = match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let col = offset
            - line_starts
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(0)
            + 1;
        (line, col)
    };

    let mut search_from = 0;
    while let Some(rel) = joined[search_from..].find("pub fn ") {
        let fn_start = search_from + rel;
        search_from = fn_start + 7;
        let Some(sig_end_rel) = joined[fn_start..].find(['{', ';']) else {
            break;
        };
        let sig = &joined[fn_start..fn_start + sig_end_rel];
        let name = sig["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>();

        let Some(open) = sig.find('(') else { continue };
        let Some(params) = matching_paren_body(&sig[open..]) else {
            continue;
        };
        for (param_rel, param) in split_top_level(params) {
            let Some((pname, ptype)) = param.split_once(':') else {
                continue;
            };
            let pname = pname.trim().trim_start_matches("mut ").trim();
            if ptype.trim() == "f64" && matches_unit_vocab(pname) {
                let leading_ws = param.len() - param.trim_start().len();
                let offset = fn_start + open + 1 + param_rel + leading_ws;
                let (line, col) = line_col_of(offset);
                out.push(Violation {
                    lint: LintId::UnitSafety,
                    file: path.to_path_buf(),
                    line,
                    col,
                    message: format!(
                        "`pub fn {name}` takes `{pname}: f64`; use the matching finrad-units newtype"
                    ),
                });
            }
        }

        // Note: the historical return-type arm (`pub fn vdd() -> f64`) is
        // retired. Producing a dimensioned value as a bare f64 now requires
        // an explicit `si_value()` call, which the raw-escape-audit family
        // catches at the call site with a precise span; only the
        // parameter-side vocabulary check remains, because an *input* f64
        // is invisible to the type system.
    }
}

// ---------------------------------------------------------------------------
// raw-escape-audit
// ---------------------------------------------------------------------------

/// Repo-relative paths (files or directory prefixes) where the raw-f64
/// escape hatches `si_value()` / `from_si(..)` are sanctioned:
///
/// * `crates/units` — the unit system's own constructors/accessors are
///   implemented in terms of the escapes;
/// * `crates/core/src/checkpoint.rs` — checkpoint (de)serialization needs
///   raw bit patterns for the fingerprinted codec;
/// * `crates/spice/src/circuit.rs` — MNA assembly packs quantities into
///   bare-f64 matrix stamps on the solver hot path.
pub const RAW_ESCAPE_SANCTIONED: [&str; 3] = [
    "crates/units",
    "crates/core/src/checkpoint.rs",
    "crates/spice/src/circuit.rs",
];

/// True when `path` (repo-relative) is inside a sanctioned raw-escape site.
fn raw_escape_sanctioned(path: &Path) -> bool {
    RAW_ESCAPE_SANCTIONED
        .iter()
        .any(|p| path.starts_with(Path::new(p)))
}

/// Flags `si_value()` / `from_si(..)` calls outside the sanctioned sites.
///
/// The escapes exist so the units crate can be built and serialized; in
/// physics code they reintroduce exactly the raw-f64 plumbing the
/// `Quantity` types eliminate, so every use outside
/// [`RAW_ESCAPE_SANCTIONED`] is a violation (pinned at `--max 0` in CI).
/// Test code is exempt — asserting on raw SI values is legitimate.
fn lint_raw_escape(path: &Path, lexed: &LexedFile, out: &mut Vec<Violation>) {
    if raw_escape_sanctioned(path) {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let is_escape = matches!(tok.text.as_str(), "si_value" | "from_si");
        if !is_escape || !tokens.get(i + 1).is_some_and(|t| t.text == "(") {
            continue;
        }
        let advice = if tok.text == "si_value" {
            "read the value through a domain accessor or keep it typed"
        } else {
            "construct through a domain constructor (`from_kev`, `from_nm`, ...)"
        };
        out.push(Violation {
            lint: LintId::RawEscapeAudit,
            file: path.to_path_buf(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{}(..)` bypasses the compile-time dimension checking outside a sanctioned site; {advice}",
                tok.text
            ),
        });
    }
}

/// Given a string starting at `(`, returns the body up to the matching `)`.
fn matching_paren_body(s: &str) -> Option<&str> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a parameter list on top-level commas, yielding each parameter and
/// its byte offset within the list.
fn split_top_level(params: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0;
    let bytes = params.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'<' => angle += 1,
            b'>' => {
                if i == 0 || bytes[i - 1] != b'-' {
                    angle -= 1;
                }
            }
            b',' if depth == 0 && angle <= 0 => {
                out.push((start, &params[start..i]));
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        out.push((start, &params[start..]));
    }
    out
}

/// Byte offset of the first occurrence of `word` bounded by non-identifier
/// characters (scrubbed lines are ASCII-blanked, so byte == char offset).
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// True when `code` contains `word` bounded by non-identifier characters.
#[cfg(test)]
fn contains_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::source::scrub;
    use std::path::Path;

    fn run(src: &str) -> Vec<Violation> {
        lint_file(Path::new("x.rs"), &scrub(src), &lex(src), true, None)
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let r = thread_rng();", "thread_rng"));
        assert!(!contains_word("let my_thread_rng_thing = 1;", "thread_rng"));
        assert!(contains_word("x: f32,", "f32"));
        assert!(!contains_word("xf32y", "f32"));
    }

    #[test]
    fn float_literal_recognition() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("0.0f64"));
        assert!(is_float_literal("1e-12"));
        assert!(is_float_literal("3.0e8"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("0x1f"));
    }

    #[test]
    fn detects_float_equality_but_not_integers() {
        let v = run("fn f(a: f64) -> bool { a == 0.0 }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::FloatDiscipline);
        assert_eq!((v[0].line, v[0].col), (1, 26));
        assert!(run("fn f(a: usize) -> bool { a == 0 }\n").is_empty());
        assert!(run("fn f(a: f64) -> bool { a <= 0.0 }\n").is_empty());
    }

    #[test]
    fn unit_safety_multiline_signature() {
        let src = "pub fn build(\n    lo_mev: f64,\n    hi_mev: f64,\n) -> u32 { 0 }\n";
        let v = run(src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].lint, LintId::UnitSafety);
        assert_eq!((v[0].line, v[0].col), (2, 5));
        assert_eq!((v[1].line, v[1].col), (3, 5));
    }

    #[test]
    fn unit_safety_return_type_check_is_retired() {
        // Returning a dimensioned f64 now requires an `si_value()` call,
        // which raw-escape-audit catches; the signature itself is clean.
        assert!(run("pub fn vdd(&self) -> f64 { 0.8 }\n").is_empty());
        let v = run("pub fn vdd(&self) -> f64 { self.vdd.si_value() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::RawEscapeAudit);
    }

    #[test]
    fn unit_safety_ignores_newtypes_and_private_fns() {
        assert!(run("pub fn vdd(&self) -> Voltage { self.vdd }\n").is_empty());
        assert!(run("fn vdd(&self) -> u64 { 8 }\n").is_empty());
        assert!(run("pub fn scale(factor: f64) -> f64 { factor }\n").is_empty());
    }

    #[test]
    fn raw_escape_fires_with_spans_outside_sanctioned_sites() {
        let src = "fn f(e: Energy) -> f64 { e.si_value() }\nfn g(x: f64) -> Energy { Energy::from_si(x) }\n";
        let v = lint_file(
            Path::new("crates/transport/src/x.rs"),
            &scrub(src),
            &lex(src),
            false,
            None,
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].lint, LintId::RawEscapeAudit);
        assert_eq!((v[0].line, v[0].col), (1, 28));
        assert!(v[0].message.contains("si_value"));
        assert_eq!((v[1].line, v[1].col), (2, 34));
        assert!(v[1].message.contains("from_si"));
    }

    #[test]
    fn raw_escape_sanctioned_sites_and_tests_are_exempt() {
        let src = "fn f(e: Energy) -> f64 { e.si_value() }\n";
        for sanctioned in [
            "crates/units/src/quantity.rs",
            "crates/core/src/checkpoint.rs",
            "crates/spice/src/circuit.rs",
        ] {
            let v = lint_file(Path::new(sanctioned), &scrub(src), &lex(src), false, None);
            assert!(v.is_empty(), "{sanctioned} should be sanctioned");
        }
        // checkpoint.rs is sanctioned; its siblings are not.
        let v = lint_file(
            Path::new("crates/core/src/fit.rs"),
            &scrub(src),
            &lex(src),
            false,
            None,
        );
        assert_eq!(v.len(), 1);
        // Test code may assert on raw SI values.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { assert!(e.si_value() > 0.0); }\n}\n";
        assert!(run(test_src).is_empty());
    }

    #[test]
    fn raw_escape_ignores_lookalikes_and_honours_allow() {
        // Identifier must be exact and must be a call.
        assert!(run("fn f() { let si_value = 3; let _ = si_value; }\n").is_empty());
        assert!(run("fn f(q: Q) { let _ = q.to_si_value(); }\n").is_empty());
        let src =
            "fn f(e: Energy) -> f64 {\n    // finrad-lint: allow(raw-escape-audit)\n    e.si_value()\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lut_indexing_flagged() {
        let v = run("fn f() { let y = self.pair_lut[i]; }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("pair_lut"));
        assert_eq!(v[0].col, 23);
        assert!(run("fn f() { let y = self.pair_lut.get(i); }\n").is_empty());
    }

    #[test]
    fn allow_suppresses_and_counts_as_used() {
        let src = "fn f() {\n    // finrad-lint: allow(panic-freedom)\n    x.unwrap();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// finrad-lint: allow(panic-freedom)\nfn f() -> u64 { 7 }\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::UnusedSuppression);
        assert_eq!((v[0].line, v[0].col), (1, 4));
    }

    #[test]
    fn trailing_allow_no_longer_covers_next_line() {
        let src =
            "fn f() {\n    a.unwrap(); // finrad-lint: allow(panic-freedom)\n    b.unwrap();\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::PanicFreedom);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn test_code_is_exempt_from_panic_lints_not_rng() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let r = thread_rng(); }\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::RngDeterminism);
    }

    #[test]
    fn shared_state_patterns_fire_with_spans() {
        let src = "pub static mut TALLY: u64 = 0;\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = run(src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].lint, LintId::SharedStateAudit);
        assert_eq!((v[0].line, v[0].col), (1, 5));
        assert!(v[1].message.contains("Relaxed"));
    }

    #[test]
    fn seed_discipline_flags_arithmetic_not_bare_seeds() {
        assert!(run("fn f(s: u64) { let r = Xoshiro256pp::seed_from_u64(s); }\n").is_empty());
        let v = run(
            "fn f(s: u64, c: u64) { let r = Xoshiro256pp::seed_from_u64(s ^ c.wrapping_mul(3)); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, LintId::SeedDiscipline);
    }

    #[test]
    fn checkpoint_drift_states() {
        use crate::index;
        let src = "pub const CHECKPOINT_VERSION: u32 = 2;\nfn save() -> u64 { 41 }\n";
        let ix = index::from_sources("", "", Some(src));
        let schema = ix.checkpoint.clone().expect("schema");
        assert!(checkpoint_drift(&ix, Some((schema.fingerprint, 2))).is_empty());
        let drifted = checkpoint_drift(&ix, Some((schema.fingerprint ^ 1, 2)));
        assert_eq!(drifted.len(), 1);
        assert!(drifted[0]
            .message
            .contains("without a CHECKPOINT_VERSION bump"));
        assert_eq!(drifted[0].line, schema.version_line);
        let bumped = checkpoint_drift(&ix, Some((schema.fingerprint ^ 1, 1)));
        assert!(bumped[0]
            .message
            .contains("refresh the recorded schema fingerprint"));
        let unrecorded = checkpoint_drift(&ix, None);
        assert!(unrecorded[0].message.contains("no recorded checkpoint"));
    }
}
