//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint                    # report; fail on non-baselined debt
//! cargo xtask lint --deny-all         # CI mode: also fail on stale baseline
//! cargo xtask lint --fix-allowlist    # rewrite xtask/lint-baseline.toml
//! cargo xtask lint --json <path|->    # write the JSON report to a file/stdout
//! cargo xtask lint --format json      # pure JSON on stdout, human notes on stderr
//! cargo xtask lint --format sarif     # SARIF 2.1.0 on stdout, human notes on stderr
//! cargo xtask lint --sarif <path>     # write the SARIF document to a file
//! cargo xtask lint --diff-base <p>    # fail only on diagnostics absent from a prior report
//! cargo xtask lint --check-report <p> # schema-validate a JSON or SARIF report
//! cargo xtask lint --max <lint>=<N>   # fail when a class's total exceeds N
//! cargo xtask bench                   # write BENCH_<n>.json trajectory file
//! cargo xtask bench --smoke           # fast CI variant (25 ms/bench budget)
//! cargo xtask bench --check <path>    # validate an existing trajectory file
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::baseline::{self, Baseline, BASELINE_PATH};
use xtask::lints::{self, LintId};
use xtask::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("bench") => bench_command(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--deny-all] [--fix-allowlist] [--json <path|->] \
[--format json|sarif] [--sarif <path>] [--diff-base <report.json>] [--check-report <path>] \
[--max <lint>=<N>]\n       \
cargo xtask bench [--smoke] [--out <path>] [--check <path>] [--require-counter <key>] \
[--diff-base <BENCH_n.json>]";

const BENCH_USAGE: &str = "usage: cargo xtask bench [--smoke] [--out <path>] [--check <path>] \
[--require-counter <key>] [--diff-base <BENCH_n.json>]";

fn bench_command(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut diff_base: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out needs a path\n{BENCH_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check" => match it.next() {
                Some(path) => check = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check needs a path\n{BENCH_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--require-counter" => match it.next() {
                Some(key) => required.push(key.clone()),
                None => {
                    eprintln!("--require-counter needs a metric key\n{BENCH_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--diff-base" => match it.next() {
                Some(path) => diff_base = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--diff-base needs a trajectory file path\n{BENCH_USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown bench flag `{other}`\n{BENCH_USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut errors = xtask::bench::validate(&text);
        errors.extend(xtask::bench::require_counters(&text, &required));
        if let Some(base_path) = &diff_base {
            match std::fs::read_to_string(base_path) {
                Ok(base) => errors.extend(xtask::bench::diff_regressions(&text, &base)),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", base_path.display());
                    return ExitCode::from(2);
                }
            }
        }
        if errors.is_empty() {
            println!(
                "{}: schema-valid trajectory file ({} required counter(s) present{})",
                path.display(),
                required.len(),
                if diff_base.is_some() {
                    ", no pinned-bench regressions"
                } else {
                    ""
                }
            );
            return ExitCode::SUCCESS;
        }
        for e in &errors {
            eprintln!("error: {}: {e}", path.display());
        }
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let bench_ms: u64 = if smoke { 25 } else { 300 };

    println!("running micro-benchmarks ({bench_ms} ms budget per bench)...");
    let bench_out = match run_captured(
        std::process::Command::new(&cargo)
            .args(["bench", "-p", "finrad-bench"])
            .env("FINRAD_BENCH_JSON", "1")
            .env("FINRAD_BENCH_MS", bench_ms.to_string())
            .current_dir(&root),
    ) {
        Ok(stdout) => stdout,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let benches = match xtask::bench::parse_bench_lines(&bench_out) {
        Ok(benches) if !benches.is_empty() => benches,
        Ok(_) => {
            eprintln!("error: the bench run produced no BENCHJSON lines");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("running instrumented smoke pipeline...");
    let metrics_out = match run_captured(
        std::process::Command::new(&cargo)
            .args([
                "run",
                "--quiet",
                "--release",
                "-p",
                "finrad-bench",
                "--bin",
                "pipeline_metrics",
            ])
            .current_dir(&root),
    ) {
        Ok(stdout) => stdout,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline_json = match xtask::bench::extract_metrics(&metrics_out) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let doc = xtask::bench::compose(bench_ms, smoke, parallelism, &benches, &pipeline_json);
    // Self-check: never write a trajectory file the schema gate rejects,
    // one missing a counter the caller declared mandatory, or one that
    // regresses a pinned bench past the differential budget.
    let mut errors = xtask::bench::validate(&doc);
    errors.extend(xtask::bench::require_counters(&doc, &required));
    if let Some(base_path) = &diff_base {
        match std::fs::read_to_string(base_path) {
            Ok(base) => errors.extend(xtask::bench::diff_regressions(&doc, &base)),
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", base_path.display());
                return ExitCode::from(2);
            }
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("error: composed document fails its own schema: {e}");
        }
        return ExitCode::FAILURE;
    }

    let path = out.unwrap_or_else(|| {
        let names: Vec<String> = std::fs::read_dir(&root)
            .map(|rd| {
                rd.filter_map(|e| e.ok()?.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        let n = xtask::bench::next_index(names.iter().map(String::as_str));
        root.join(format!("BENCH_{n:04}.json"))
    });
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "wrote {}: {} bench(es), {} pipeline counter line(s)",
        path.display(),
        benches.len(),
        doc.lines().count()
    );
    ExitCode::SUCCESS
}

/// Runs a command, forwarding stderr, capturing stdout; errors on
/// non-zero exit.
fn run_captured(cmd: &mut std::process::Command) -> Result<String, String> {
    let out = cmd
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| format!("cannot spawn {cmd:?}: {e}"))?;
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    if !out.status.success() {
        return Err(format!("{cmd:?} failed with {}", out.status));
    }
    Ok(stdout)
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut deny_all = false;
    let mut fix_allowlist = false;
    let mut json_target: Option<String> = None;
    let mut format_json = false;
    let mut format_sarif = false;
    let mut sarif_target: Option<PathBuf> = None;
    let mut diff_base: Option<PathBuf> = None;
    let mut check_report: Option<PathBuf> = None;
    let mut max_caps: Vec<(LintId, usize)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--fix-allowlist" => fix_allowlist = true,
            "--json" => match it.next() {
                Some(target) => json_target = Some(target.clone()),
                None => {
                    eprintln!("--json needs a path (or `-` for stdout)\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("sarif") => format_sarif = true,
                _ => {
                    eprintln!("--format supports `json` or `sarif`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match it.next() {
                Some(path) => sarif_target = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--sarif needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--diff-base" => match it.next() {
                Some(path) => diff_base = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--diff-base needs the path of a prior JSON report\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check-report" => match it.next() {
                Some(path) => check_report = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check-report needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--max" => match it.next().and_then(|spec| parse_max(spec)) {
                Some(cap) => max_caps.push(cap),
                None => {
                    eprintln!("--max needs `<lint>=<N>` (e.g. --max panic-freedom=8)\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = check_report {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        // Auto-detect the dialect: a SARIF document has a `runs` array at
        // the root, the native report does not.
        let is_sarif = xtask::json::parse(&text)
            .ok()
            .and_then(|doc| doc.as_object().map(|o| o.get("runs").is_some()))
            .unwrap_or(false);
        let (problems, dialect) = if is_sarif {
            (xtask::sarif::validate(&text), "SARIF 2.1.0".to_string())
        } else {
            (
                report::validate(&text),
                format!("{} report", report::REPORT_SCHEMA),
            )
        };
        if problems.is_empty() {
            println!("{}: schema-valid {dialect}", path.display());
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("error: {}: {p}", path.display());
        }
        return ExitCode::FAILURE;
    }

    // With a machine format on stdout requested, human output moves to
    // stderr so the document stays parseable.
    let human_to_stderr = format_json || format_sarif || json_target.as_deref() == Some("-");
    macro_rules! human {
        ($($t:tt)*) => {
            if human_to_stderr {
                eprintln!($($t)*);
            } else {
                println!($($t)*);
            }
        };
    }

    let root = workspace_root();
    let scan = match xtask::scan_tree(&root) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("error: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_allowlist {
        let mut new_baseline = Baseline::from_violations(&scan.violations);
        match &scan.index.checkpoint {
            Some(schema) => new_baseline.set_checkpoint_schema(schema.fingerprint, schema.version),
            None => eprintln!(
                "warning: no CHECKPOINT_VERSION found; the checkpoint schema pin was not recorded"
            ),
        }
        if let Err(e) = new_baseline.store(&root) {
            eprintln!("error: cannot write {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {BASELINE_PATH}: {} budgeted violation(s) across {} file(s) scanned",
            new_baseline.total(),
            scan.files_scanned
        );
        // Zero-tolerance classes can be allow()ed at a documented call site
        // but never budgeted away; surface anything that must still be fixed.
        let unfixable: Vec<_> = scan
            .violations
            .iter()
            .filter(|v| !v.lint.baselineable())
            .collect();
        if !unfixable.is_empty() {
            eprintln!(
                "error: {} violation(s) in non-baselineable classes — fix them:",
                unfixable.len()
            );
            for v in &unfixable {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Workspace-level check: the checkpoint codec fingerprint against the
    // pin recorded in the baseline.
    let mut all_violations = scan.violations.clone();
    all_violations.extend(lints::checkpoint_drift(
        &scan.index,
        base.checkpoint_schema(),
    ));
    let check = baseline::check(&all_violations, &base);

    // Zero-tolerance classes must never be budgeted in a (hand-edited)
    // baseline file.
    let forbidden_in_baseline: Vec<LintId> = LintId::ALL
        .iter()
        .copied()
        .filter(|l| !l.baselineable() && base.has_lint(*l))
        .collect();
    let stale_fatal = deny_all && !check.stale.is_empty();

    // Total-budget ratchet: `--max <lint>=<N>` fails the run when the
    // observed total for that class (baselined or not) exceeds N, so a
    // regression cannot hide behind a refreshed per-file baseline.
    let mut cap_breaches = Vec::new();
    for (id, cap) in &max_caps {
        let observed = all_violations.iter().filter(|v| v.lint == *id).count();
        if observed > *cap {
            cap_breaches.push((*id, *cap, observed));
        }
    }

    // Differential mode: diagnostics recorded in the base report no longer
    // gate the run — only genuinely new ones do. The emitted JSON/SARIF
    // documents are unchanged (they describe the full tree, not the diff),
    // so a passing differential run still archives the complete picture.
    let (fresh, absorbed) = match &diff_base {
        None => (check.new_violations.clone(), Vec::new()),
        Some(path) => {
            let base_text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: cannot read --diff-base {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match report::diff_new(&check.new_violations, &base_text) {
                Ok(split) => split,
                Err(problems) => {
                    for p in &problems {
                        eprintln!("error: --diff-base {}: {p}", path.display());
                    }
                    return ExitCode::from(2);
                }
            }
        }
    };

    let pass = fresh.is_empty()
        && !stale_fatal
        && forbidden_in_baseline.is_empty()
        && cap_breaches.is_empty();

    let json = report::to_json(scan.files_scanned, pass, &check);
    // Self-check: never emit a report the schema gate would reject.
    let report_problems = report::validate(&json);
    if !report_problems.is_empty() {
        for p in &report_problems {
            eprintln!("error: composed report fails its own schema: {p}");
        }
        return ExitCode::from(2);
    }
    if format_json || json_target.as_deref() == Some("-") {
        // write! instead of print! so a closed pipe (`... --format json | head`)
        // is a silent truncation, not a panic.
        let _ = std::io::stdout().write_all(json.as_bytes());
    }
    if let Some(target) = json_target.as_deref().filter(|t| *t != "-") {
        if let Err(e) = std::fs::write(target, &json) {
            eprintln!("error: cannot write JSON report to {target}: {e}");
            return ExitCode::from(2);
        }
    }

    if format_sarif || sarif_target.is_some() {
        let sarif = xtask::sarif::to_sarif(&check);
        // Self-check, same policy as the native report: never emit a
        // document the schema gate would reject.
        let sarif_problems = xtask::sarif::validate(&sarif);
        if !sarif_problems.is_empty() {
            for p in &sarif_problems {
                eprintln!("error: composed SARIF fails its own schema: {p}");
            }
            return ExitCode::from(2);
        }
        if format_sarif {
            let _ = std::io::stdout().write_all(sarif.as_bytes());
        }
        if let Some(target) = &sarif_target {
            if let Err(e) = std::fs::write(target, &sarif) {
                eprintln!("error: cannot write SARIF to {}: {e}", target.display());
                return ExitCode::from(2);
            }
        }
    }

    for v in &check.budgeted {
        human!("note(baselined): {v}");
    }
    for v in &absorbed {
        human!("note(diff-base): {v}");
    }
    for v in &fresh {
        human!("error: {v}");
    }
    for (id, file, budget, observed) in &check.stale {
        let level = if deny_all { "error" } else { "warning" };
        human!(
            "{level}: stale baseline: [{id}] {} budgets {budget} but only {observed} observed — \
             run `cargo xtask lint --fix-allowlist` to ratchet down",
            file.display()
        );
    }
    for id in &forbidden_in_baseline {
        human!(
            "error: {BASELINE_PATH} contains {id} entries; that class must be fixed, \
             not budgeted"
        );
    }
    for (id, cap, observed) in &cap_breaches {
        human!(
            "error: [{id}] total budget exceeded: {observed} observed > cap {cap} \
             (--max {}={cap})",
            id.as_str()
        );
    }

    human!(
        "lint: {} file(s), {} new violation(s), {} baselined, {} stale budget(s){}{}",
        scan.files_scanned,
        fresh.len(),
        check.budgeted.len(),
        check.stale.len(),
        if diff_base.is_some() {
            format!(" [diff-base: {} absorbed]", absorbed.len())
        } else {
            String::new()
        },
        if deny_all { " [deny-all]" } else { "" }
    );

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses a `--max` spec of the form `<lint>=<N>`.
fn parse_max(spec: &str) -> Option<(LintId, usize)> {
    let (name, count) = spec.split_once('=')?;
    let id = *LintId::ALL.iter().find(|id| id.as_str() == name)?;
    Some((id, count.parse().ok()?))
}

/// The workspace root: two levels above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}
