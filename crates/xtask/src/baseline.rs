//! The ratchet baseline: known violation counts per (lint, file), plus the
//! pinned checkpoint schema fingerprint.
//!
//! The baseline lives at `xtask/lint-baseline.toml` in the repo root. Each
//! `[[entry]]` records how many violations of one lint family one file is
//! allowed to carry. The lint gate fails when a file *exceeds* its
//! baselined count (new debt) and, in `--deny-all` mode, also when it falls
//! *below* it (stale baseline — re-run `--fix-allowlist` to ratchet the
//! budget down so fixed debt cannot silently return).
//!
//! A single `[checkpoint-schema]` table pins the FNV-1a 64 fingerprint of
//! the checkpoint codec's non-test token stream together with the
//! `CHECKPOINT_VERSION` it was recorded at; the `checkpoint-schema-drift`
//! lint fails when the fingerprint moves without a version bump.
//!
//! The file is a deliberately restricted TOML dialect (scalar keys inside
//! `[[entry]]` / `[checkpoint-schema]` tables only) so it can be parsed
//! with no dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::lints::{LintId, Violation};

/// Where the baseline lives, relative to the repo root.
pub const BASELINE_PATH: &str = "xtask/lint-baseline.toml";

/// Violation budgets keyed by (lint id, repo-relative path), plus the
/// recorded checkpoint schema pin.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, PathBuf), usize>,
    /// `(fingerprint, format-version)` recorded by `--fix-allowlist`.
    checkpoint_schema: Option<(u64, u32)>,
}

/// Which table a parsed `key = value` line belongs to.
enum Section {
    Entry(Option<String>, Option<PathBuf>, Option<usize>),
    CheckpointSchema,
}

impl Baseline {
    /// Loads the baseline at `root/xtask/lint-baseline.toml`; a missing file
    /// is an empty baseline.
    pub fn load(root: &Path) -> io::Result<Self> {
        let path = root.join(BASELINE_PATH);
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(&path)?;
        Self::parse(&text).map_err(|msg| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {msg}", path.display()),
            )
        })
    }

    /// Parses the restricted-TOML baseline format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = Self::default();
        let mut schema_fp: Option<u64> = None;
        let mut schema_ver: Option<u32> = None;
        let mut current: Option<Section> = None;
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                Self::flush(&mut current, &mut out.entries, no)?;
                current = Some(Section::Entry(None, None, None));
                continue;
            }
            if line == "[checkpoint-schema]" {
                Self::flush(&mut current, &mut out.entries, no)?;
                current = Some(Section::CheckpointSchema);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", no + 1));
            };
            let section = current
                .as_mut()
                .ok_or_else(|| format!("line {}: key outside a table", no + 1))?;
            match section {
                Section::Entry(id, file, count) => match key.trim() {
                    "id" => *id = Some(unquote(value)?),
                    "file" => *file = Some(PathBuf::from(unquote(value)?)),
                    "count" => {
                        *count = Some(
                            value
                                .trim()
                                .parse::<usize>()
                                .map_err(|e| format!("line {}: bad count: {e}", no + 1))?,
                        )
                    }
                    other => return Err(format!("line {}: unknown key `{other}`", no + 1)),
                },
                Section::CheckpointSchema => match key.trim() {
                    "fingerprint" => {
                        let hex = unquote(value)?;
                        schema_fp = Some(u64::from_str_radix(&hex, 16).map_err(|e| {
                            format!("line {}: bad fingerprint `{hex}`: {e}", no + 1)
                        })?);
                    }
                    "format-version" => {
                        schema_ver =
                            Some(value.trim().parse::<u32>().map_err(|e| {
                                format!("line {}: bad format-version: {e}", no + 1)
                            })?);
                    }
                    other => return Err(format!("line {}: unknown key `{other}`", no + 1)),
                },
            }
        }
        Self::flush(&mut current, &mut out.entries, usize::MAX)?;
        out.checkpoint_schema = match (schema_fp, schema_ver) {
            (Some(fp), Some(ver)) => Some((fp, ver)),
            (None, None) => None,
            _ => {
                return Err(
                    "[checkpoint-schema] needs both `fingerprint` and `format-version`".to_string(),
                )
            }
        };
        Ok(out)
    }

    fn flush(
        current: &mut Option<Section>,
        entries: &mut BTreeMap<(String, PathBuf), usize>,
        line: usize,
    ) -> Result<(), String> {
        match current.take() {
            Some(Section::Entry(id, file, count)) => {
                let (Some(id), Some(file), Some(count)) = (id, file, count) else {
                    return Err(format!(
                        "entry before line {} is missing id, file or count",
                        line.saturating_add(1)
                    ));
                };
                entries.insert((id, file), count);
                Ok(())
            }
            Some(Section::CheckpointSchema) | None => Ok(()),
        }
    }

    /// Builds a baseline from observed violations. Families that are not
    /// [`LintId::baselineable`] are skipped — they must be fixed, not
    /// budgeted. The checkpoint schema pin is set separately via
    /// [`Baseline::set_checkpoint_schema`].
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, PathBuf), usize> = BTreeMap::new();
        for v in violations.iter().filter(|v| v.lint.baselineable()) {
            *entries
                .entry((v.lint.as_str().to_string(), v.file.clone()))
                .or_insert(0) += 1;
        }
        Self {
            entries,
            checkpoint_schema: None,
        }
    }

    /// The recorded `(fingerprint, format-version)` pin, if any.
    pub fn checkpoint_schema(&self) -> Option<(u64, u32)> {
        self.checkpoint_schema
    }

    /// Records the checkpoint schema pin (used by `--fix-allowlist`).
    pub fn set_checkpoint_schema(&mut self, fingerprint: u64, version: u32) {
        self.checkpoint_schema = Some((fingerprint, version));
    }

    /// Serializes back to the restricted TOML dialect.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# finrad lint baseline — violation budgets per (lint, file) and the\n\
             # pinned checkpoint schema fingerprint.\n\
             # Regenerate with `cargo xtask lint --fix-allowlist`; counts may\n\
             # only ratchet down. `rng-determinism` must never appear here.\n",
        );
        if let Some((fp, ver)) = self.checkpoint_schema {
            let _ = write!(
                out,
                "\n[checkpoint-schema]\nfingerprint = \"{fp:016x}\"\nformat-version = {ver}\n"
            );
        }
        for ((id, file), count) in &self.entries {
            let _ = write!(
                out,
                "\n[[entry]]\nid = \"{id}\"\nfile = \"{}\"\ncount = {count}\n",
                file.display()
            );
        }
        out
    }

    /// Writes the baseline under `root`.
    pub fn store(&self, root: &Path) -> io::Result<()> {
        let path = root.join(BASELINE_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_toml())
    }

    /// The budget for (lint, file), 0 when absent.
    pub fn budget(&self, lint: LintId, file: &Path) -> usize {
        self.entries
            .get(&(lint.as_str().to_string(), file.to_path_buf()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates all `(lint-id, file, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Path, usize)> {
        self.entries
            .iter()
            .map(|((id, file), count)| (id.as_str(), file.as_path(), *count))
    }

    /// Whether any entry exists for `lint`.
    pub fn has_lint(&self, lint: LintId) -> bool {
        self.entries.keys().any(|(id, _)| id == lint.as_str())
    }

    /// Total budgeted violations.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }
}

fn unquote(value: &str) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected quoted string, got `{v}`"))
    }
}

/// Outcome of checking observed violations against the baseline.
#[derive(Debug, Default)]
pub struct BaselineCheck {
    /// Violations beyond a file's budget — always fatal.
    pub new_violations: Vec<Violation>,
    /// Baselined (budgeted) violations, reported but not fatal.
    pub budgeted: Vec<Violation>,
    /// `(lint-id, file, budget, observed)` where observed < budget; fatal in
    /// `--deny-all` mode because the baseline must ratchet down.
    pub stale: Vec<(String, PathBuf, usize, usize)>,
}

/// Splits `violations` into within-budget and over-budget against
/// `baseline`, and finds stale budgets.
pub fn check(violations: &[Violation], baseline: &Baseline) -> BaselineCheck {
    let mut observed: BTreeMap<(String, PathBuf), usize> = BTreeMap::new();
    let mut result = BaselineCheck::default();
    for v in violations {
        let key = (v.lint.as_str().to_string(), v.file.clone());
        let seen = observed.entry(key).or_insert(0);
        *seen += 1;
        if *seen <= baseline.budget(v.lint, &v.file) {
            result.budgeted.push(v.clone());
        } else {
            result.new_violations.push(v.clone());
        }
    }
    for (id, file, budget) in baseline.iter() {
        let seen = observed
            .get(&(id.to_string(), file.to_path_buf()))
            .copied()
            .unwrap_or(0);
        if seen < budget {
            result
                .stale
                .push((id.to_string(), file.to_path_buf(), budget, seen));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lint: LintId, file: &str, line: usize) -> Violation {
        Violation {
            lint,
            file: PathBuf::from(file),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn round_trip() {
        let vs = vec![
            v(LintId::PanicFreedom, "crates/a/src/lib.rs", 3),
            v(LintId::PanicFreedom, "crates/a/src/lib.rs", 9),
            v(LintId::UnitSafety, "crates/b/src/lib.rs", 1),
        ];
        let mut b = Baseline::from_violations(&vs);
        b.set_checkpoint_schema(0xdead_beef_0000_0001, 3);
        let parsed = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(
            parsed.budget(LintId::PanicFreedom, Path::new("crates/a/src/lib.rs")),
            2
        );
        assert_eq!(parsed.total(), 3);
        assert_eq!(parsed.checkpoint_schema(), Some((0xdead_beef_0000_0001, 3)));
    }

    #[test]
    fn non_baselineable_families_are_never_budgeted() {
        let vs = vec![
            v(LintId::UnusedSuppression, "a.rs", 1),
            v(LintId::CheckpointSchemaDrift, "b.rs", 1),
            v(LintId::PanicFreedom, "a.rs", 2),
        ];
        let b = Baseline::from_violations(&vs);
        assert_eq!(b.total(), 1);
        assert!(!b.has_lint(LintId::UnusedSuppression));
        assert!(!b.has_lint(LintId::CheckpointSchemaDrift));
    }

    #[test]
    fn check_splits_budgeted_new_and_stale() {
        let base = Baseline::from_violations(&[
            v(LintId::PanicFreedom, "a.rs", 1),
            v(LintId::PanicFreedom, "a.rs", 2),
            v(LintId::UnitSafety, "b.rs", 1),
        ]);
        // One panic-freedom fixed (1 of 2 remains), one brand-new float hit,
        // unit-safety in b.rs untouched.
        let now = vec![
            v(LintId::PanicFreedom, "a.rs", 1),
            v(LintId::FloatDiscipline, "a.rs", 4),
            v(LintId::UnitSafety, "b.rs", 1),
        ];
        let r = check(&now, &base);
        assert_eq!(r.budgeted.len(), 2);
        assert_eq!(r.new_violations.len(), 1);
        assert_eq!(r.new_violations[0].lint, LintId::FloatDiscipline);
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].2, 2);
        assert_eq!(r.stale[0].3, 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Baseline::parse("count = 3\n").is_err());
        assert!(Baseline::parse("[[entry]]\nid = \"x\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nid = x\nfile = \"f\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("[checkpoint-schema]\nfingerprint = \"ff\"\n").is_err());
        assert!(
            Baseline::parse("[checkpoint-schema]\nfingerprint = \"zz\"\nformat-version = 1\n")
                .is_err()
        );
    }
}
