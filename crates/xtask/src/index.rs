//! Phase-1 workspace symbol index for the cross-file lints.
//!
//! Before linting individual files, the driver reads three anchor files and
//! extracts the symbols the cross-file lints check against:
//!
//! * `crates/observe/src/keys.rs` — the declared metric-key registry.
//!   `pub const NAME: &str = "...";` declares an exact key; constants whose
//!   name ends in `_PREFIX` declare a key *prefix* (call sites compose the
//!   tail at runtime, e.g. the SPICE recovery-rung names).
//! * `crates/numerics/src/rng.rs` — the sanctioned seed-derivation API.
//!   The bodies of `seed_from_u64` / `from_state` / `stream` /
//!   `salted_stream` are the only places allowed to do seed arithmetic.
//! * `crates/core/src/checkpoint.rs` — the checkpoint format version and an
//!   FNV-1a 64 fingerprint of the file's non-test token stream. The
//!   fingerprint is insensitive to comments, formatting, and `#[cfg(test)]`
//!   code, so it moves exactly when the (de)serialization logic moves.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token, TokenKind};

/// Workspace-relative path of the metric-key registry.
pub const KEYS_FILE: &str = "crates/observe/src/keys.rs";
/// Workspace-relative path of the RNG module holding the sanctioned
/// seed-derivation helpers.
pub const RNG_FILE: &str = "crates/numerics/src/rng.rs";
/// Workspace-relative path of the checkpoint codec.
pub const CHECKPOINT_FILE: &str = "crates/core/src/checkpoint.rs";
/// Constructor names whose bodies may derive seeds from arithmetic.
pub const SEED_HELPER_FNS: [&str; 4] = ["seed_from_u64", "from_state", "stream", "salted_stream"];

/// Checkpoint schema facts extracted from [`CHECKPOINT_FILE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSchema {
    /// Value of `CHECKPOINT_VERSION`.
    pub version: u32,
    /// Span of the version constant's value, for diagnostics.
    pub version_line: usize,
    /// 1-indexed column of the version constant's value.
    pub version_col: usize,
    /// FNV-1a 64 fingerprint of the file's non-test token stream.
    pub fingerprint: u64,
}

/// The phase-1 symbol index consumed by the cross-file lints.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Exact metric keys declared in the registry.
    pub metric_keys: BTreeSet<String>,
    /// Declared key prefixes (constants named `*_PREFIX`).
    pub metric_key_prefixes: Vec<String>,
    /// `(file, first_line, last_line)` spans of sanctioned seed-derivation
    /// function bodies; `seed-discipline` is silent inside them.
    pub seed_sanctioned: Vec<(PathBuf, usize, usize)>,
    /// Checkpoint schema facts, when the anchor file declares them.
    pub checkpoint: Option<CheckpointSchema>,
}

impl WorkspaceIndex {
    /// True when `key` is declared exactly or composed from a declared
    /// prefix.
    pub fn key_is_declared(&self, key: &str) -> bool {
        self.metric_keys.contains(key)
            || self
                .metric_key_prefixes
                .iter()
                .any(|p| key.starts_with(p.as_str()))
    }

    /// True when 1-indexed `line` of workspace-relative `file` lies inside a
    /// sanctioned seed-derivation helper body.
    pub fn line_is_seed_sanctioned(&self, file: &Path, line: usize) -> bool {
        self.seed_sanctioned
            .iter()
            .any(|(f, lo, hi)| f == file && (*lo..=*hi).contains(&line))
    }

    /// The declared key closest to `key` by edit distance, for "did you
    /// mean" hints.
    pub fn nearest_key(&self, key: &str) -> Option<&str> {
        self.metric_keys
            .iter()
            .map(|k| (edit_distance(key, k), k.as_str()))
            .min()
            .map(|(_, k)| k)
    }
}

/// Builds the index by reading the three anchor files under `root`.
///
/// # Errors
///
/// I/O errors reading the anchor files; a missing registry or RNG anchor is
/// an error (the cross-file lints would be vacuous without them).
pub fn build(root: &Path) -> io::Result<WorkspaceIndex> {
    let read = |rel: &str| -> io::Result<String> {
        fs::read_to_string(root.join(rel))
            .map_err(|e| io::Error::new(e.kind(), format!("reading workspace anchor {rel}: {e}")))
    };
    let keys_src = read(KEYS_FILE)?;
    let rng_src = read(RNG_FILE)?;
    let checkpoint_src = read(CHECKPOINT_FILE)?;
    Ok(from_sources(&keys_src, &rng_src, Some(&checkpoint_src)))
}

/// Builds the index from in-memory sources (the unit-test entry point).
pub fn from_sources(keys_src: &str, rng_src: &str, checkpoint_src: Option<&str>) -> WorkspaceIndex {
    let mut index = WorkspaceIndex::default();
    collect_metric_keys(&lexer::lex(keys_src).tokens, &mut index);
    collect_seed_spans(
        &lexer::lex(rng_src).tokens,
        PathBuf::from(RNG_FILE),
        &mut index,
    );
    if let Some(src) = checkpoint_src {
        index.checkpoint = checkpoint_schema(&lexer::lex(src).tokens);
    }
    index
}

/// Extracts `pub const NAME: &str = "...";` declarations.
fn collect_metric_keys(tokens: &[Token], index: &mut WorkspaceIndex) {
    for w in tokens.windows(7) {
        let is_decl = w[0].kind == TokenKind::Ident
            && w[0].text == "const"
            && w[1].kind == TokenKind::Ident
            && w[2].text == ":"
            && w[3].text == "&"
            && w[4].text == "str"
            && w[5].text == "="
            && w[6].kind == TokenKind::Str;
        if !is_decl {
            continue;
        }
        let value = w[6].text.clone();
        if w[1].text.ends_with("_PREFIX") {
            index.metric_key_prefixes.push(value);
        } else {
            index.metric_keys.insert(value);
        }
    }
}

/// Records the line span of every sanctioned seed-helper function body.
fn collect_seed_spans(tokens: &[Token], file: PathBuf, index: &mut WorkspaceIndex) {
    let mut k = 0;
    while k + 1 < tokens.len() {
        let is_helper_fn = tokens[k].kind == TokenKind::Ident
            && tokens[k].text == "fn"
            && SEED_HELPER_FNS.contains(&tokens[k + 1].text.as_str());
        if !is_helper_fn {
            k += 1;
            continue;
        }
        let first_line = tokens[k].line;
        // Walk to the body's opening brace, then to its matching close.
        let mut j = k + 2;
        while j < tokens.len() && tokens[j].text != "{" {
            j += 1;
        }
        let mut depth = 0i64;
        let mut last_line = first_line;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        last_line = tokens[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        index
            .seed_sanctioned
            .push((file.clone(), first_line, last_line));
        k = j.max(k + 1);
    }
}

/// Extracts `CHECKPOINT_VERSION` and fingerprints the non-test token
/// stream.
fn checkpoint_schema(tokens: &[Token]) -> Option<CheckpointSchema> {
    let mut version = None;
    for w in tokens.windows(7) {
        let is_decl = w[0].text == "const"
            && w[1].text == "CHECKPOINT_VERSION"
            && w[2].text == ":"
            && w[3].text == "u32"
            && w[4].text == "="
            && w[5].kind == TokenKind::Number;
        if is_decl {
            let parsed: Option<u32> = w[5].text.replace('_', "").parse().ok();
            if let Some(v) = parsed {
                version = Some((v, w[5].line, w[5].col));
            }
        }
    }
    let (version, version_line, version_col) = version?;
    Some(CheckpointSchema {
        version,
        version_line,
        version_col,
        fingerprint: fingerprint_tokens(tokens),
    })
}

/// FNV-1a 64 over the non-test token texts, newline-separated. Stable
/// across reformatting, comment edits, and test-module churn.
pub fn fingerprint_tokens(tokens: &[Token]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for token in tokens.iter().filter(|t| !t.in_test) {
        for b in token.text.bytes() {
            eat(b);
        }
        eat(b'\n');
    }
    hash
}

/// Levenshtein distance, small-string implementation for typo hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            cur.push(best);
        }
        prev = cur;
    }
    prev.last().copied().unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEYS: &str = r#"
pub const STRIKE_ITERATIONS: &str = "core.strike.iterations";
pub const SPICE_RECOVERY_RUNG_PREFIX: &str = "spice.recovery.rung.";
"#;

    const RNG: &str = "impl X {\n    pub fn seed_from_u64(seed: u64) -> Self {\n        Self { s: seed ^ 1 }\n    }\n    pub fn other(x: u64) -> u64 {\n        x\n    }\n}\n";

    #[test]
    fn keys_and_prefixes_are_extracted() {
        let idx = from_sources(KEYS, RNG, None);
        assert!(idx.key_is_declared("core.strike.iterations"));
        assert!(idx.key_is_declared("spice.recovery.rung.gmin-stepping.ok"));
        assert!(!idx.key_is_declared("core.strike.iterationz"));
        assert_eq!(
            idx.nearest_key("core.strike.iterationz"),
            Some("core.strike.iterations")
        );
    }

    #[test]
    fn seed_helper_spans_cover_bodies_only() {
        let idx = from_sources(KEYS, RNG, None);
        let rng_file = PathBuf::from(RNG_FILE);
        assert!(idx.line_is_seed_sanctioned(&rng_file, 3));
        assert!(!idx.line_is_seed_sanctioned(&rng_file, 6));
    }

    #[test]
    fn checkpoint_fingerprint_tracks_code_not_comments() {
        let base = "pub const CHECKPOINT_VERSION: u32 = 1;\nfn save() -> u64 { 41 }\n";
        let commented =
            "// a comment\npub const CHECKPOINT_VERSION: u32 = 1;\nfn save() -> u64 { 41 }\n";
        let edited = "pub const CHECKPOINT_VERSION: u32 = 1;\nfn save() -> u64 { 42 }\n";
        let with_test = format!("{base}#[cfg(test)]\nmod tests {{\n    fn t() {{}}\n}}\n");
        let schema = |src: &str| {
            from_sources(KEYS, RNG, Some(src))
                .checkpoint
                .expect("schema")
        };
        let a = schema(base);
        assert_eq!(a.version, 1);
        assert_eq!((a.version_line, a.version_col), (1, 37));
        assert_eq!(a.fingerprint, schema(commented).fingerprint);
        assert_eq!(a.fingerprint, schema(&with_test).fingerprint);
        assert_ne!(a.fingerprint, schema(edited).fingerprint);
    }

    #[test]
    fn missing_version_constant_yields_none() {
        assert!(from_sources(KEYS, RNG, Some("fn save() {}\n"))
            .checkpoint
            .is_none());
    }
}
