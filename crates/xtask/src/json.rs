//! A minimal JSON parser — just enough to validate and scrape the
//! machine-readable artifacts this workspace produces (`BENCHJSON` /
//! `METRICSJSON` lines, `BENCH_<n>.json` trajectory files).
//!
//! The build environment has no registry access, so `serde_json` is not an
//! option; the grammar here is the full RFC 8259 value grammar minus
//! `\uXXXX` surrogate-pair pedantry (lone escapes decode to the
//! replacement character rather than erroring).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (duplicate keys: last wins).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offending character.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // the boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number `{text}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            parse(r#""a\nbAº""#).unwrap(),
            Value::String("a\nbAº".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\x01\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_malformed_escapes() {
        for bad in [
            r#""\q""#,     // unknown escape
            r#""\u12""#,   // truncated \u
            r#""\u12zq""#, // non-hex \u digits
            r#""\"#,       // backslash at end of input
            r#""\u""#,     // \u with no digits at all
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_deeply_nested_values() {
        // 200 levels of arrays then objects — the recursive parser must
        // survive depths far beyond anything the lint report emits.
        let depth = 200;
        let arrays = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let mut v = parse(&arrays).unwrap();
        for _ in 0..depth {
            v = v.as_array().unwrap()[0].clone();
        }
        assert_eq!(v, Value::Number(1.0));

        let objects = format!("{}0{}", r#"{"k":"#.repeat(depth), "}".repeat(depth));
        let mut v = parse(&objects).unwrap();
        for _ in 0..depth {
            v = v.get("k").unwrap().clone();
        }
        assert_eq!(v, Value::Number(0.0));
    }

    #[test]
    fn duplicate_keys_last_one_wins() {
        // RFC 8259 leaves duplicate-name behavior undefined; this parser
        // keeps the last binding, matching serde_json and most consumers.
        let v = parse(r#"{"a":1,"a":2,"a":3}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Number(3.0)));
    }

    #[test]
    fn lone_surrogates_decode_to_replacement_char() {
        // An unpaired high surrogate cannot round-trip through char; the
        // parser substitutes U+FFFD rather than rejecting the document.
        assert_eq!(
            parse(r#""\ud800x""#).unwrap(),
            Value::String("\u{FFFD}x".into())
        );
        // Same for an unpaired low surrogate.
        assert_eq!(
            parse(r#""\udc00""#).unwrap(),
            Value::String("\u{FFFD}".into())
        );
        // A well-formed pair still decodes to the supplementary char.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn negative_zero_parses_and_is_not_u64() {
        let v = parse("-0").unwrap();
        assert_eq!(v, Value::Number(0.0)); // -0.0 == 0.0 under IEEE equality
        match v {
            Value::Number(n) => assert!(n.is_sign_negative()),
            _ => unreachable!(),
        }
        // as_u64 requires n >= 0 and integral; -0.0 satisfies both.
        assert_eq!(v.as_u64(), Some(0));
    }

    #[test]
    fn overflow_exponents_saturate_to_infinity() {
        // f64::from_str maps 1e999 to +inf rather than erroring; the parser
        // inherits that, and as_u64 correctly refuses the result.
        match parse("1e999").unwrap() {
            Value::Number(n) => assert_eq!(n, f64::INFINITY),
            v => panic!("expected number, got {v:?}"),
        }
        match parse("-1e999").unwrap() {
            Value::Number(n) => assert_eq!(n, f64::NEG_INFINITY),
            v => panic!("expected number, got {v:?}"),
        }
        assert_eq!(parse("1e999").unwrap().as_u64(), None);
    }
}
