//! `cargo xtask bench` — machine-readable benchmark trajectory files.
//!
//! Runs the dependency-free micro-benchmark harness (`crates/bench`) with
//! `FINRAD_BENCH_JSON=1`, runs the instrumented smoke pipeline
//! (`pipeline_metrics`), and composes both into one schema-versioned
//! `BENCH_<n>.json` snapshot: per-bench ns/iter, solver counters, MC
//! throughput and host parallelism. Checking a sequence of such files into
//! the repo over time gives the project a performance trajectory that a
//! human (or CI) can diff. `--check <path>` validates an existing file
//! against the schema; see `docs/observability.md` for the field
//! catalogue.

use crate::json::{self, Value};

/// Version stamped into (and required of) every trajectory file.
pub const SCHEMA_VERSION: u64 = 1;

/// One `BENCHJSON` line from the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark name as registered with the harness.
    pub name: String,
    /// Nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Scrapes `BENCHJSON {...}` lines out of harness stdout. Malformed lines
/// are returned as errors rather than skipped — a truncated write must not
/// silently shrink the trajectory.
///
/// # Errors
///
/// A description of the first malformed `BENCHJSON` line.
pub fn parse_bench_lines(stdout: &str) -> Result<Vec<BenchEntry>, String> {
    let mut out = Vec::new();
    for line in stdout.lines() {
        let Some(body) = line.strip_prefix("BENCHJSON ") else {
            continue;
        };
        let v = json::parse(body).map_err(|e| format!("bad BENCHJSON line: {e}: {body}"))?;
        let entry = (|| {
            Some(BenchEntry {
                name: v.get("name")?.as_str()?.to_owned(),
                ns_per_iter: v.get("ns_per_iter")?.as_f64()?,
                iters: v.get("iters")?.as_u64()?,
            })
        })()
        .ok_or_else(|| format!("BENCHJSON line missing name/ns_per_iter/iters: {body}"))?;
        out.push(entry);
    }
    Ok(out)
}

/// Scrapes the `METRICSJSON {...}` line out of `pipeline_metrics` stdout,
/// returning the raw JSON text (validated to parse as an object).
///
/// # Errors
///
/// When no line is present or the payload is not a JSON object.
pub fn extract_metrics(stdout: &str) -> Result<String, String> {
    let body = stdout
        .lines()
        .find_map(|l| l.strip_prefix("METRICSJSON "))
        .ok_or("pipeline_metrics printed no METRICSJSON line")?;
    let v = json::parse(body).map_err(|e| format!("bad METRICSJSON payload: {e}"))?;
    if v.as_object().is_none() {
        return Err("METRICSJSON payload is not a JSON object".into());
    }
    Ok(body.to_owned())
}

/// Composes the `BENCH_<n>.json` document.
///
/// `pipeline_json` must be the (already validated) `METRICSJSON` payload;
/// it is embedded verbatim.
pub fn compose(
    bench_ms: u64,
    smoke: bool,
    available_parallelism: u64,
    benches: &[BenchEntry],
    pipeline_json: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"bench_ms\": {bench_ms},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"host\": {{\"available_parallelism\": {available_parallelism}}},\n"
    ));
    out.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"ns_per_iter\": {}, \"iters\": {}}}{}\n",
            escape(&b.name),
            format_number(b.ns_per_iter),
            b.iters,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"pipeline\": {pipeline_json}\n"));
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// The index for the next `BENCH_<n>.json` given the names already in the
/// target directory. Numbering starts at 3 (the PR that introduced the
/// trajectory); later snapshots continue from the highest existing index.
pub fn next_index<'a>(existing_names: impl Iterator<Item = &'a str>) -> u32 {
    existing_names
        .filter_map(|name| {
            let rest = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            rest.parse::<u32>().ok()
        })
        .max()
        .map(|max| max + 1)
        .unwrap_or(3)
}

/// Validates a trajectory document against the `schema_version` 1 schema.
/// Returns every violation found (empty means valid).
pub fn validate(text: &str) -> Vec<String> {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let mut errors = Vec::new();
    let mut need = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_owned());
        }
    };

    need(doc.as_object().is_some(), "top level must be an object");
    need(
        doc.get("schema_version").and_then(Value::as_u64) == Some(SCHEMA_VERSION),
        "schema_version must be the number 1",
    );
    need(
        doc.get("bench_ms")
            .and_then(Value::as_u64)
            .is_some_and(|ms| ms >= 1),
        "bench_ms must be an integer >= 1",
    );
    need(
        matches!(doc.get("smoke"), Some(Value::Bool(_))),
        "smoke must be a boolean",
    );
    need(
        doc.get("host")
            .and_then(|h| h.get("available_parallelism"))
            .and_then(Value::as_u64)
            .is_some_and(|n| n >= 1),
        "host.available_parallelism must be an integer >= 1",
    );

    match doc.get("benches").and_then(Value::as_array) {
        None => errors.push("benches must be an array".into()),
        Some(benches) => {
            for (i, b) in benches.iter().enumerate() {
                let ok = b.get("name").and_then(Value::as_str).is_some()
                    && b.get("ns_per_iter")
                        .and_then(Value::as_f64)
                        .is_some_and(|v| v.is_finite() && v >= 0.0)
                    && b.get("iters").and_then(Value::as_u64).is_some();
                if !ok {
                    errors.push(format!(
                        "benches[{i}] needs string `name`, non-negative `ns_per_iter` \
                         and integer `iters`"
                    ));
                }
            }
        }
    }

    let counters = doc.get("pipeline").and_then(|p| p.get("counters"));
    match counters.and_then(Value::as_object) {
        None => errors.push("pipeline.counters must be an object".into()),
        Some(counters) => {
            for (k, v) in counters {
                if v.as_u64().is_none() {
                    errors.push(format!("pipeline.counters[{k:?}] must be an integer"));
                }
            }
        }
    }
    let histograms = doc.get("pipeline").and_then(|p| p.get("histograms"));
    match histograms.and_then(Value::as_object) {
        None => errors.push("pipeline.histograms must be an object".into()),
        Some(histograms) => {
            for (k, h) in histograms {
                let ok = h.get("count").and_then(Value::as_u64).is_some()
                    && ["sum", "min", "max"]
                        .iter()
                        .all(|f| h.get(f).and_then(Value::as_f64).is_some());
                if !ok {
                    errors.push(format!(
                        "pipeline.histograms[{k:?}] needs integer `count` and numeric \
                         `sum`/`min`/`max`"
                    ));
                }
            }
        }
    }
    errors
}

/// Checks that a trajectory document carries each required pipeline
/// counter with a non-zero value. Returns one message per missing or zero
/// counter (empty means all present). Used by `cargo xtask bench --check
/// --require-counter <key>` so CI can gate on the instrumented smoke run
/// actually exercising a code path (e.g. the warm-start counters) instead
/// of merely validating the file's shape.
pub fn require_counters(text: &str, required: &[String]) -> Vec<String> {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let counters = doc.get("pipeline").and_then(|p| p.get("counters"));
    required
        .iter()
        .filter_map(|key| match counters.and_then(|c| c.get(key)) {
            None => Some(format!("required pipeline counter {key:?} is missing")),
            Some(v) if v.as_u64() == Some(0) => {
                Some(format!("required pipeline counter {key:?} is zero"))
            }
            Some(_) => None,
        })
        .collect()
}

/// Benches whose `ns_per_iter` is gated by `--diff-base`: the macro
/// kernels the performance trajectory tracks round over round. Sub-µs
/// micro-benches are deliberately excluded — at that scale run-to-run
/// jitter on a shared CI host routinely exceeds the regression budget,
/// so gating them would only produce flaky failures.
pub const PINNED_BENCHES: &[&str] = &[
    "sram_strike_transient",
    "sram_hold_transient_100steps",
    "characterization/critical_charge_bisection",
];

/// Allowed fractional `ns_per_iter` growth for a pinned bench before the
/// differential check fails (0.15 = +15%).
pub const DIFF_MAX_REGRESSION: f64 = 0.15;

/// Name → ns/iter pairs of a trajectory document's bench array.
fn bench_times(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let benches = doc
        .get("benches")
        .and_then(Value::as_array)
        .ok_or("benches must be an array")?;
    benches
        .iter()
        .map(|b| {
            Some((
                b.get("name")?.as_str()?.to_owned(),
                b.get("ns_per_iter")?.as_f64()?,
            ))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| "bench entry missing name/ns_per_iter".to_owned())
}

/// Differential mode, mirroring the lint `--diff-base` design: compares
/// `current` against a baseline trajectory document and returns one
/// message per [`PINNED_BENCHES`] entry that regressed beyond
/// [`DIFF_MAX_REGRESSION`] (empty means no regressions). A pinned bench
/// present in the base but dropped from the current document is also an
/// error — deleting a bench must not silently pass the gate; a pinned
/// bench absent from the base is a fresh gate and is skipped.
pub fn diff_regressions(current: &str, base: &str) -> Vec<String> {
    let cur = match bench_times(current) {
        Ok(v) => v,
        Err(e) => return vec![format!("current document: {e}")],
    };
    let bas = match bench_times(base) {
        Ok(v) => v,
        Err(e) => return vec![format!("base document: {e}")],
    };
    let mut out = Vec::new();
    for &name in PINNED_BENCHES {
        let Some(b) = bas.iter().find(|(n, _)| n == name).map(|&(_, v)| v) else {
            continue;
        };
        match cur.iter().find(|(n, _)| n == name).map(|&(_, v)| v) {
            None => out.push(format!(
                "pinned bench {name:?} present in base but missing from current document"
            )),
            Some(c) if b > 0.0 && c > b * (1.0 + DIFF_MAX_REGRESSION) => out.push(format!(
                "pinned bench {name:?} regressed {:+.1}%: {b} -> {c} ns/iter (budget +{:.0}%)",
                (c / b - 1.0) * 100.0,
                DIFF_MAX_REGRESSION * 100.0
            )),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = r#"{"counters":{"spice.newton.iterations":42},"histograms":{"core.strike.estimate_seconds":{"count":5,"sum":0.5,"min":0.01,"max":0.3}}}"#;

    fn entries() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                name: "ray_trace_9x9".into(),
                ns_per_iter: 1234.0,
                iters: 1000,
            },
            BenchEntry {
                name: "strike \"quoted\"".into(),
                ns_per_iter: 0.5,
                iters: 2,
            },
        ]
    }

    #[test]
    fn bench_lines_round_trip() {
        let stdout = "noise\nBENCHJSON {\"name\":\"a b\",\"ns_per_iter\":12,\"iters\":3}\nmore";
        let got = parse_bench_lines(stdout).unwrap();
        assert_eq!(
            got,
            vec![BenchEntry {
                name: "a b".into(),
                ns_per_iter: 12.0,
                iters: 3
            }]
        );
        assert!(parse_bench_lines("BENCHJSON {oops").is_err());
        assert!(parse_bench_lines("BENCHJSON {\"name\":\"x\"}").is_err());
    }

    #[test]
    fn metrics_extraction_requires_object_payload() {
        assert!(extract_metrics(&format!("x\nMETRICSJSON {METRICS}\n")).is_ok());
        assert!(extract_metrics("no line here").is_err());
        assert!(extract_metrics("METRICSJSON [1,2]").is_err());
    }

    #[test]
    fn composed_document_validates() {
        let doc = compose(25, true, 8, &entries(), METRICS);
        assert_eq!(validate(&doc), Vec::<String>::new());
        // And the embedded data survives a parse round-trip.
        let parsed = json::parse(&doc).unwrap();
        let benches = parsed.get("benches").unwrap().as_array().unwrap();
        assert_eq!(
            benches[1].get("name").unwrap().as_str(),
            Some("strike \"quoted\"")
        );
        assert_eq!(
            parsed
                .get("pipeline")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("spice.newton.iterations")
                .unwrap()
                .as_u64(),
            Some(42)
        );
    }

    #[test]
    fn validation_catches_schema_breaks() {
        assert!(!validate("{}").is_empty());
        assert!(!validate("not json").is_empty());
        let doc = compose(25, false, 8, &entries(), METRICS);
        let broken = doc.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(validate(&broken)
            .iter()
            .any(|e| e.contains("schema_version")));
        let broken = doc.replace("\"ns_per_iter\": 1234", "\"ns_per_iter\": -1");
        assert!(validate(&broken).iter().any(|e| e.contains("benches[0]")));
    }

    #[test]
    fn required_counters_must_be_present_and_non_zero() {
        let doc = compose(25, true, 8, &entries(), METRICS);
        let req = |keys: &[&str]| -> Vec<String> {
            require_counters(
                &doc,
                &keys.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(req(&["spice.newton.iterations"]), Vec::<String>::new());
        let missing = req(&["spice.newton.warm_starts"]);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("missing"), "{missing:?}");
        let zeroed = doc.replace(
            "\"spice.newton.iterations\":42",
            "\"spice.newton.iterations\":0",
        );
        let zero = require_counters(&zeroed, &["spice.newton.iterations".to_string()]);
        assert_eq!(zero.len(), 1);
        assert!(zero[0].contains("zero"), "{zero:?}");
    }

    fn doc_with(pairs: &[(&str, f64)]) -> String {
        let benches: Vec<BenchEntry> = pairs
            .iter()
            .map(|&(name, ns)| BenchEntry {
                name: name.into(),
                ns_per_iter: ns,
                iters: 100,
            })
            .collect();
        compose(25, true, 8, &benches, METRICS)
    }

    #[test]
    fn diff_passes_within_budget_and_ignores_unpinned() {
        let base = doc_with(&[
            ("sram_strike_transient", 1000.0),
            ("finfet_model_eval", 10.0),
        ]);
        // +14% on a pinned bench is inside the 15% budget; the unpinned
        // micro-bench tripling must not trip the gate.
        let cur = doc_with(&[
            ("sram_strike_transient", 1140.0),
            ("finfet_model_eval", 30.0),
        ]);
        assert_eq!(diff_regressions(&cur, &base), Vec::<String>::new());
    }

    #[test]
    fn diff_fails_on_pinned_regression() {
        let base = doc_with(&[("characterization/critical_charge_bisection", 1000.0)]);
        let cur = doc_with(&[("characterization/critical_charge_bisection", 1200.0)]);
        let errs = diff_regressions(&cur, &base);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("critical_charge_bisection"), "{errs:?}");
        assert!(errs[0].contains("+20.0%"), "{errs:?}");
    }

    #[test]
    fn diff_flags_dropped_pinned_bench_but_skips_fresh_gates() {
        // Base tracks a pinned bench that current silently dropped: error.
        let base = doc_with(&[("sram_hold_transient_100steps", 500.0)]);
        let cur = doc_with(&[("finfet_model_eval", 10.0)]);
        let errs = diff_regressions(&cur, &base);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"), "{errs:?}");
        // Pinned bench new in current (absent from base): fresh gate, ok.
        assert_eq!(diff_regressions(&base, &cur), Vec::<String>::new());
    }

    #[test]
    fn diff_reports_unparseable_documents() {
        let ok = doc_with(&[("sram_strike_transient", 1.0)]);
        assert!(diff_regressions("not json", &ok)[0].contains("current document"));
        assert!(diff_regressions(&ok, "not json")[0].contains("base document"));
    }

    #[test]
    fn index_numbering_starts_at_three_and_continues() {
        assert_eq!(next_index([].into_iter()), 3);
        assert_eq!(next_index(["BENCH_0003.json"].into_iter()), 4);
        assert_eq!(
            next_index(["BENCH_0003.json", "BENCH_0010.json", "other.json"].into_iter()),
            11
        );
    }
}
