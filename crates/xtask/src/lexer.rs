//! A std-only Rust lexer producing spanned tokens.
//!
//! The scrubbed-line view in [`crate::source`] is good for substring lints,
//! but the cross-file lints (metric-key registry, seed discipline, shared
//! state, checkpoint schema) need to see *string literal contents* and match
//! multi-token patterns like `Ordering :: Relaxed` regardless of spacing.
//! This lexer tokenizes one file into [`Token`]s carrying 1-indexed
//! (line, col) spans measured in characters, so diagnostics are
//! click-through accurate in editors and CI annotations.
//!
//! It is deliberately not a full Rust lexer: comments are skipped, raw
//! identifiers and exotic suffixes degrade gracefully into adjacent tokens,
//! and numbers are kept as raw text. That is all the downstream lints need,
//! and it keeps the module dependency-free and obviously panic-free.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `static`, `Ordering`, ...).
    Ident,
    /// String literal (normal, byte, or raw); `text` holds the decoded
    /// contents without quotes.
    Str,
    /// Char literal; `text` holds the raw contents without quotes.
    Char,
    /// Lifetime (`'a`); `text` holds the name without the tick.
    Lifetime,
    /// Numeric literal, kept as raw text (`0xD6E8`, `1.5e-3`, `4096`).
    Number,
    /// Any single punctuation character (`{`, `^`, `;`, ...).
    Punct,
}

/// One token with its span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Token text; see [`TokenKind`] for per-kind conventions.
    pub text: String,
    /// 1-indexed line of the token's first character.
    pub line: usize,
    /// 1-indexed character column of the token's first character.
    pub col: usize,
    /// Whether the token sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// A lexed file.
#[derive(Debug)]
pub struct LexedFile {
    /// Tokens in source order; comments and whitespace are absent.
    pub tokens: Vec<Token>,
}

/// Lexes `src` into spanned tokens and tags `#[cfg(test)]` regions.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut lx = Lexer {
        chars: &chars,
        i: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    };
    lx.run();
    let mut tokens = lx.tokens;
    tag_test_tokens(&mut tokens);
    LexedFile { tokens }
}

struct Lexer<'a> {
    chars: &'a [char],
    i: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, updating the line/col cursor.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump();
                }
            } else if c == '/' && self.peek(1) == Some('*') {
                self.skip_block_comment();
            } else if c == '"' {
                self.bump();
                let text = self.string_body();
                self.push(TokenKind::Str, text, line, col);
            } else if self.is_raw_string_start() {
                let text = self.raw_string();
                self.push(TokenKind::Str, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                self.bump();
                let text = self.string_body();
                self.push(TokenKind::Str, text, line, col);
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if c.is_alphabetic() || c == '_' {
                let mut text = String::new();
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    text.push(self.bump().unwrap_or(' '));
                }
                self.push(TokenKind::Ident, text, line, col);
            } else if c.is_ascii_digit() {
                let text = self.number_body();
                self.push(TokenKind::Number, text, line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
    }

    fn skip_block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// Consumes a string body after the opening quote, decoding the common
    /// escapes; returns the contents.
    fn string_body(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    if !self.decode_escape(&mut out) {
                        break;
                    }
                }
                _ => out.push(c),
            }
        }
        out
    }

    /// Decodes one escape sequence (the `\` already consumed) into `out`.
    /// Returns false at end of input.
    fn decode_escape(&mut self, out: &mut String) -> bool {
        match self.bump() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('u') => {
                // \u{XXXX}
                let mut hex = String::new();
                if self.peek(0) == Some('{') {
                    self.bump();
                    while self.peek(0).is_some_and(|c| c != '}') {
                        hex.push(self.bump().unwrap_or(' '));
                    }
                    self.bump();
                }
                let decoded = u32::from_str_radix(&hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .unwrap_or('\u{fffd}');
                out.push(decoded);
            }
            Some(other) => out.push(other),
            None => return false,
        }
        true
    }

    fn is_raw_string_start(&self) -> bool {
        let mut j = 0;
        if self.peek(j) == Some('b') {
            j += 1;
        }
        if self.peek(j) != Some('r') {
            return false;
        }
        j += 1;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    fn raw_string(&mut self) -> String {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }

    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        // `'a` (not closed by `'`) is a lifetime; `'a'` / `'\n'` is a char.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        self.bump(); // tick
        if is_char {
            let mut text = String::new();
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
                if c == '\\' {
                    // Decode escapes like string bodies do, so `'\''` and
                    // `'\\'` carry their actual character values.
                    if !self.decode_escape(&mut text) {
                        break;
                    }
                } else {
                    text.push(c);
                }
            }
            self.push(TokenKind::Char, text, line, col);
        } else {
            let mut text = String::new();
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                text.push(self.bump().unwrap_or(' '));
            }
            self.push(TokenKind::Lifetime, text, line, col);
        }
    }

    fn number_body(&mut self) -> String {
        let mut text = String::new();
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'));
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap_or(' '));
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `1.max()` do not.
                text.push(self.bump().unwrap_or(' '));
            } else if (c == '+' || c == '-') && !radix_prefixed && text.ends_with(['e', 'E']) {
                text.push(self.bump().unwrap_or(' '));
            } else {
                break;
            }
        }
        text
    }
}

/// Marks tokens inside `#[cfg(test)]` modules by tracking brace depth, the
/// token-level twin of `source::tag_test_regions`.
fn tag_test_tokens(tokens: &mut [Token]) {
    let mut depth: i64 = 0;
    // A `#[cfg(test)]` was seen and its item has not opened a brace yet;
    // everything from the attribute to the item's `{` or `;` is test code.
    let mut pending_attr = false;
    let mut test_depth: Option<i64> = None;
    let mut k = 0;
    while k < tokens.len() {
        if is_cfg_test_attr(tokens, k) {
            pending_attr = true;
            for t in tokens.iter_mut().skip(k).take(7) {
                t.in_test = true;
            }
            k += 7;
            continue;
        }
        let text = tokens[k].text.as_str();
        let is_punct = tokens[k].kind == TokenKind::Punct;
        match text {
            "{" if is_punct => {
                depth += 1;
                if pending_attr && test_depth.is_none() {
                    test_depth = Some(depth);
                    pending_attr = false;
                }
                tokens[k].in_test = test_depth.is_some();
            }
            "}" if is_punct => {
                tokens[k].in_test = test_depth.is_some();
                if let Some(td) = test_depth {
                    if depth <= td {
                        test_depth = None;
                    }
                }
                depth -= 1;
            }
            ";" if is_punct => {
                tokens[k].in_test = test_depth.is_some() || pending_attr;
                // `#[cfg(test)] use ...;` — the attribute was spent on a
                // braceless item.
                if pending_attr && test_depth.is_none() {
                    pending_attr = false;
                }
            }
            _ => tokens[k].in_test = test_depth.is_some() || pending_attr,
        }
        k += 1;
    }
}

/// True when `tokens[k..]` begins the exact sequence `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(tokens: &[Token], k: usize) -> bool {
    const SEQ: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= k + SEQ.len()
        && SEQ
            .iter()
            .zip(&tokens[k..])
            .all(|(want, tok)| tok.text == *want)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn spans_are_one_indexed_chars() {
        let lexed = lex("let x = 1;\n  counter_add(\"core.sram.flips\", 1);\n");
        let key = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(key.text, "core.sram.flips");
        assert_eq!((key.line, key.col), (2, 15));
    }

    #[test]
    fn comments_and_whitespace_vanish() {
        assert_eq!(
            texts("a /* b */ c // d\ne"),
            vec!["a".to_string(), "c".into(), "e".into()]
        );
    }

    #[test]
    fn string_escapes_decode() {
        let lexed = lex(r#"let s = "a\n\t\"\u{41}";"#);
        let s = &lexed.tokens[3];
        assert_eq!(s.kind, TokenKind::Str);
        assert_eq!(s.text, "a\n\t\"A");
    }

    #[test]
    fn raw_and_byte_strings_lex() {
        let lexed = lex("let a = r#\"x\"y\"#; let b = b\"z\";");
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec!["x\"y".to_string(), "z".into()]);
    }

    #[test]
    fn lifetimes_and_chars_are_distinct() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { '\\n' }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn numbers_keep_raw_text() {
        assert_eq!(
            texts("0xD6E8_FEB8 4096 1.5e-3 1..4"),
            vec![
                "0xD6E8_FEB8".to_string(),
                "4096".into(),
                "1.5e-3".into(),
                "1".into(),
                ".".into(),
                ".".into(),
                "4".into(),
            ]
        );
    }

    #[test]
    fn cfg_test_tokens_are_tagged() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { probe(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let probe = lexed.tokens.iter().find(|t| t.text == "probe").unwrap();
        assert!(probe.in_test);
        let lib = lexed.tokens.iter().find(|t| t.text == "lib").unwrap();
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert!(!lib.in_test && !after.in_test);
    }

    #[test]
    fn multi_hash_raw_strings_lex() {
        // The terminator must match the opening hash count exactly: `"#`
        // inside an `r##"…"##` body is content, not an end.
        let lexed = lex("let a = r##\"quote \"# inside\"##; done();");
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.text, "quote \"# inside");
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn zero_hash_raw_strings_lex() {
        let lexed = lex("let a = r\"no \\n escapes\";");
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        // Raw: the backslash survives undecoded.
        assert_eq!(s.text, "no \\n escapes");
    }

    #[test]
    fn multiline_raw_strings_keep_spans() {
        let lexed = lex("let a = r#\"line one\nline two\"#;\nafter();\n");
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        // The raw string spans one newline, so `after` is on line 3.
        assert_eq!((after.line, after.col), (3, 1));
    }

    #[test]
    fn escaped_quote_char_is_a_char() {
        let lexed = lex(r"let q = '\''; let b = '\\';");
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'".to_string(), "\\".into()]);
    }

    #[test]
    fn loop_labels_lex_as_lifetimes() {
        // CFG construction depends on `'outer: loop` / `break 'outer` not
        // swallowing the following token as a char body.
        let lexed = lex("'outer: loop { break 'outer; }");
        let labels: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(labels, vec!["outer".to_string(), "outer".into()]);
        assert!(lexed.tokens.iter().any(|t| t.text == "break"));
    }

    #[test]
    fn nested_block_comments_hide_their_contents() {
        // Forbidden-looking text inside a nested comment must not reach
        // the token stream (the lint families scan tokens, not bytes).
        let src = "a /* x /* thread_rng() .unwrap() */ still /* deeper */ hidden */ b";
        assert_eq!(texts(src), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn forbidden_text_inside_literals_stays_literal() {
        let src = "let s = r#\"cfg.lock().unwrap() /* unclosed\"#; let c = '{';";
        let lexed = lex(src);
        // `unwrap` appears only inside the raw string: no Ident token.
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        // The `{` char literal must not unbalance brace tracking: it is a
        // Char token, not punct.
        let c = lexed
            .tokens
            .iter()
            .rfind(|t| t.kind == TokenKind::Char)
            .unwrap();
        assert_eq!(c.text, "{");
    }

    #[test]
    fn raw_identifiers_do_not_start_raw_strings() {
        let lexed = lex("let r#type = 1; r#match(r#type);");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Str));
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert!(idents.contains(&"type".to_string()) || idents.contains(&"r".to_string()));
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse helper::probe;\nfn real() {}\n";
        let lexed = lex(src);
        let real = lexed.tokens.iter().find(|t| t.text == "real").unwrap();
        assert!(!real.in_test);
    }
}
