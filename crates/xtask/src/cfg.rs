//! Intraprocedural control-flow graphs over token streams.
//!
//! The flow-sensitive lint families ([`crate::flow`]) need more than the
//! token scan the older families use: *in what order* do two locks get
//! taken, is a guard still live *at this call*, does *every path* through a
//! worker loop poll its cancellation token. This module builds a lightweight
//! CFG for one `fn` body straight from the [`crate::lexer`] token stream —
//! no AST. Basic blocks hold ordered token-index segments; edges follow the
//! structured control flow of `if`/`else`, `loop`/`while`/`for`, `match`,
//! `return`, `?`, `break` and `continue`.
//!
//! The builder is deliberately approximate where precision buys nothing for
//! the lint families: `else if` chains evaluate all conditions in the
//! predecessor block, labeled breaks target the innermost loop, and `let x =
//! if …` splits the statement across blocks (such bindings are simply not
//! tracked by the dataflow clients). Closure bodies stay inline in their
//! enclosing block — the families that care about deferred execution
//! (cancellation entry points) handle `spawn` sites explicitly.

use crate::lexer::{Token, TokenKind};

/// Index of the synthetic entry block.
pub const ENTRY: usize = 0;
/// Index of the synthetic exit block (`return`/`?` edges land here).
pub const EXIT: usize = 1;

/// One basic block: ordered, possibly discontiguous token-index segments.
#[derive(Debug, Default)]
pub struct Block {
    /// Half-open `[start, end)` ranges into the file's token vector.
    pub segs: Vec<(usize, usize)>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

impl Block {
    fn push_tok(&mut self, i: usize) {
        if let Some(last) = self.segs.last_mut() {
            if last.1 == i {
                last.1 = i + 1;
                return;
            }
        }
        self.segs.push((i, i + 1));
    }
}

/// The kind of a loop construct, for the cancellation-responsiveness rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }` — unconditionally unbounded.
    Loop,
    /// `while cond { … }`.
    While,
    /// `while let pat = expr { … }` — bounded by the iterator/queue.
    WhileLet,
    /// `for pat in iter { … }` — bounded by the iterator.
    For,
}

/// One loop found during CFG construction.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// What kind of loop header introduced it.
    pub kind: LoopKind,
    /// Token range of the condition (`while`) or iterator expression
    /// (`for`); empty for `loop`.
    pub cond: (usize, usize),
    /// Token range of the body, *excluding* the braces.
    pub body: (usize, usize),
    /// 1-indexed source position of the loop keyword.
    pub line: usize,
    /// Column of the loop keyword.
    pub col: usize,
}

/// A function body's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks; `blocks[ENTRY]` and `blocks[EXIT]` are synthetic.
    pub blocks: Vec<Block>,
    /// Every loop in the body, outermost first.
    pub loops: Vec<LoopInfo>,
}

impl Cfg {
    /// Iterates a block's token indices in program order.
    pub fn block_tokens<'a>(&'a self, b: usize) -> impl Iterator<Item = usize> + 'a {
        self.blocks[b].segs.iter().flat_map(|&(s, e)| s..e)
    }
}

/// Absolute `{}` nesting depth of every token (Punct braces only — brace
/// characters inside char/string literals don't count). A token's depth is
/// the depth *at* that token; a closing `}` carries the outer depth. The
/// dataflow clients use this for scope-sensitive kills: a binding made at
/// depth `d` is dead at the first token with depth `< d`.
pub fn brace_depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut depth = 0u32;
    for t in tokens {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => {
                    out.push(depth);
                    depth += 1;
                    continue;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    out.push(depth);
                    continue;
                }
                _ => {}
            }
        }
        out.push(depth);
    }
    out
}

/// Builds the CFG for a body whose braces are at token indices
/// `body.0` (`{`) and `body.1` (`}`).
pub fn build(tokens: &[Token], body: (usize, usize)) -> Cfg {
    let mut b = Builder {
        toks: tokens,
        blocks: vec![Block::default(), Block::default()],
        loops: Vec::new(),
        loop_stack: Vec::new(),
    };
    let cur = b.new_block();
    b.blocks[ENTRY].succs.push(cur);
    let out = b.walk(body.0 + 1, body.1, cur);
    b.blocks[out].succs.push(EXIT);
    Cfg {
        blocks: b.blocks,
        loops: b.loops,
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    loops: Vec<LoopInfo>,
    /// `(header, exit)` block indices of the enclosing loops.
    loop_stack: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    /// First `{` at paren/bracket depth 0 in `[from, end)`; Rust forbids
    /// struct literals in this position, so it is the body opener.
    fn find_body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for i in from..end {
            if self.toks[i].kind != TokenKind::Punct {
                continue;
            }
            match self.toks[i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(i),
                _ => {}
            }
        }
        None
    }

    /// The matching close for the open delimiter at `open`.
    fn matching(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.toks[open].text.as_str() {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            _ => ("[", "]"),
        };
        let mut depth = 0i32;
        for i in open..end {
            if self.toks[i].kind != TokenKind::Punct {
                continue;
            }
            if self.toks[i].text == o {
                depth += 1;
            } else if self.toks[i].text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        end.saturating_sub(1)
    }

    /// Appends the statement tail (up to and including the `;` that ends
    /// it, at delimiter depth 0) to `blk`; returns the next index.
    fn eat_stmt_tail(&mut self, mut i: usize, end: usize, blk: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            self.blocks[blk].push_tok(i);
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => return i + 1,
                    "," if depth == 0 => return i + 1,
                    _ => {}
                }
            }
            if depth < 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Walks `[i, end)` appending straight-line tokens to `cur`, splitting
    /// at control-flow constructs. Returns the block that falls through.
    fn walk(&mut self, mut i: usize, end: usize, mut cur: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        // A whole `if / else if / else` chain.
                        let join = self.new_block();
                        let mut has_final_else = false;
                        let mut j = i;
                        loop {
                            // `j` is at `if`: condition up to the body `{`.
                            let Some(open) = self.find_body_open(j + 1, end) else {
                                // Malformed; bail out of the construct.
                                self.blocks[cur].push_tok(j);
                                i = j + 1;
                                break;
                            };
                            for k in j..open {
                                self.blocks[cur].push_tok(k);
                            }
                            let close = self.matching(open, end);
                            let arm = self.new_block();
                            self.blocks[cur].succs.push(arm);
                            let out = self.walk(open + 1, close, arm);
                            self.blocks[out].succs.push(join);
                            i = close + 1;
                            if self.is_ident(i, "else") {
                                if self.is_ident(i + 1, "if") {
                                    j = i + 1;
                                    continue;
                                }
                                if self.is_punct(i + 1, "{") {
                                    let eopen = i + 1;
                                    let eclose = self.matching(eopen, end);
                                    let arm = self.new_block();
                                    self.blocks[cur].succs.push(arm);
                                    let out = self.walk(eopen + 1, eclose, arm);
                                    self.blocks[out].succs.push(join);
                                    has_final_else = true;
                                    i = eclose + 1;
                                }
                            }
                            break;
                        }
                        if !has_final_else {
                            self.blocks[cur].succs.push(join);
                        }
                        cur = join;
                        continue;
                    }
                    "match" => {
                        let Some(open) = self.find_body_open(i + 1, end) else {
                            self.blocks[cur].push_tok(i);
                            i += 1;
                            continue;
                        };
                        for k in i..open {
                            self.blocks[cur].push_tok(k);
                        }
                        let close = self.matching(open, end);
                        let join = self.new_block();
                        let mut j = open + 1;
                        while j < close {
                            // Pattern (with any guard) up to `=>`.
                            let mut depth = 0i32;
                            let mut arrow = None;
                            let mut k = j;
                            while k < close {
                                let tk = &self.toks[k];
                                if tk.kind == TokenKind::Punct {
                                    match tk.text.as_str() {
                                        "(" | "[" | "{" => depth += 1,
                                        ")" | "]" | "}" => depth -= 1,
                                        "=" if depth == 0 && self.is_punct(k + 1, ">") => {
                                            arrow = Some(k);
                                        }
                                        _ => {}
                                    }
                                }
                                if arrow.is_some() {
                                    break;
                                }
                                k += 1;
                            }
                            let Some(arrow) = arrow else { break };
                            for p in j..arrow {
                                self.blocks[cur].push_tok(p);
                            }
                            let arm = self.new_block();
                            self.blocks[cur].succs.push(arm);
                            let body_start = arrow + 2;
                            let next = if self.is_punct(body_start, "{") {
                                let bclose = self.matching(body_start, close);
                                let out = self.walk(body_start + 1, bclose, arm);
                                self.blocks[out].succs.push(join);
                                // Skip an optional trailing comma.
                                if self.is_punct(bclose + 1, ",") {
                                    bclose + 2
                                } else {
                                    bclose + 1
                                }
                            } else {
                                // Expression arm: up to `,` at depth 0.
                                let out = {
                                    let stop = self.expr_arm_end(body_start, close);
                                    let out = self.walk(body_start, stop, arm);
                                    self.blocks[out].succs.push(join);
                                    if self.is_punct(stop, ",") {
                                        stop + 1
                                    } else {
                                        stop
                                    }
                                };
                                out
                            };
                            j = next;
                        }
                        cur = join;
                        i = close + 1;
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        let kw = t.text.clone();
                        let Some(open) = self.find_body_open(i + 1, end) else {
                            self.blocks[cur].push_tok(i);
                            i += 1;
                            continue;
                        };
                        let close = self.matching(open, end);
                        let (kind, cond) = match kw.as_str() {
                            "loop" => (LoopKind::Loop, (i + 1, i + 1)),
                            "while" if self.is_ident(i + 1, "let") => {
                                (LoopKind::WhileLet, (i + 1, open))
                            }
                            "while" => (LoopKind::While, (i + 1, open)),
                            _ => (LoopKind::For, (i + 1, open)),
                        };
                        self.loops.push(LoopInfo {
                            kind,
                            cond,
                            body: (open + 1, close),
                            line: t.line,
                            col: t.col,
                        });
                        let header = self.new_block();
                        let exit = self.new_block();
                        self.blocks[cur].succs.push(header);
                        // Condition / iterator tokens live in the header.
                        for k in cond.0..cond.1 {
                            self.blocks[header].push_tok(k);
                        }
                        if kind != LoopKind::Loop {
                            self.blocks[header].succs.push(exit);
                        }
                        self.loop_stack.push((header, exit));
                        let body_blk = self.new_block();
                        self.blocks[header].succs.push(body_blk);
                        let out = self.walk(open + 1, close, body_blk);
                        self.blocks[out].succs.push(header);
                        self.loop_stack.pop();
                        cur = exit;
                        i = close + 1;
                        continue;
                    }
                    "return" => {
                        i = self.eat_stmt_tail(i, end, cur);
                        self.blocks[cur].succs.push(EXIT);
                        cur = self.new_block();
                        continue;
                    }
                    "break" | "continue" => {
                        let target = self.loop_stack.last().copied();
                        let is_break = t.text == "break";
                        i = self.eat_stmt_tail(i, end, cur);
                        if let Some((header, exit)) = target {
                            self.blocks[cur]
                                .succs
                                .push(if is_break { exit } else { header });
                        }
                        cur = self.new_block();
                        continue;
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        // Plain nested block: same control flow, new scope
                        // (the depth map handles the scope).
                        let close = self.matching(i, end);
                        cur = self.walk(i + 1, close, cur);
                        i = close + 1;
                        continue;
                    }
                    "?" => {
                        self.blocks[cur].push_tok(i);
                        if !self.blocks[cur].succs.contains(&EXIT) {
                            self.blocks[cur].succs.push(EXIT);
                        }
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            self.blocks[cur].push_tok(i);
            i += 1;
        }
        cur
    }

    /// End of an expression match arm starting at `i`: the `,` at depth 0,
    /// or `close`.
    fn expr_arm_end(&self, i: usize, close: usize) -> usize {
        let mut depth = 0i32;
        for k in i..close {
            let t = &self.toks[k];
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return k,
                _ => {}
            }
        }
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn body_of(src: &str) -> (Vec<Token>, (usize, usize)) {
        let lexed = lex(src);
        let open = lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Punct && t.text == "{")
            .expect("body open");
        let close = lexed.tokens.len() - 1;
        (lexed.tokens, (open, close))
    }

    fn reachable(cfg: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![ENTRY];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        (0..cfg.blocks.len()).filter(|&b| seen[b]).collect()
    }

    #[test]
    fn straight_line_is_one_block() {
        let (toks, body) = body_of("fn f() { a(); b(); }");
        let cfg = build(&toks, body);
        // entry → one code block → exit.
        let code: Vec<_> = (2..cfg.blocks.len())
            .filter(|&b| !cfg.blocks[b].segs.is_empty())
            .collect();
        assert_eq!(code.len(), 1);
        assert!(cfg.blocks[code[0]].succs.contains(&EXIT));
    }

    #[test]
    fn if_else_diamonds_join() {
        let (toks, body) = body_of("fn f() { if c { a(); } else { b(); } d(); }");
        let cfg = build(&toks, body);
        // Both arm blocks exist and the exit stays reachable.
        assert!(reachable(&cfg).contains(&EXIT));
        // `d` appears exactly once across all blocks.
        let d_count = cfg
            .blocks
            .iter()
            .flat_map(|b| b.segs.iter().flat_map(|&(s, e)| s..e))
            .filter(|&i| toks[i].text == "d")
            .count();
        assert_eq!(d_count, 1);
    }

    #[test]
    fn if_without_else_falls_through() {
        let (toks, body) = body_of("fn f() { if c { a(); } b(); }");
        let cfg = build(&toks, body);
        // The condition block must have two successors (arm + join).
        let cond_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.segs
                    .iter()
                    .flat_map(|&(s, e)| s..e)
                    .any(|i| toks[i].text == "c")
            })
            .unwrap();
        assert_eq!(cfg.blocks[cond_block].succs.len(), 2);
    }

    #[test]
    fn loops_have_back_edges_and_are_recorded() {
        let (toks, body) = body_of("fn f() { loop { a(); if done { break; } } b(); }");
        let cfg = build(&toks, body);
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].kind, LoopKind::Loop);
        assert!(reachable(&cfg).contains(&EXIT));
        // The break target (loop exit) leads to `b()`.
        let b_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.segs
                    .iter()
                    .flat_map(|&(s, e)| s..e)
                    .any(|i| toks[i].text == "b")
            })
            .unwrap();
        assert!(reachable(&cfg).contains(&b_block));
    }

    #[test]
    fn while_and_for_and_while_let_classify() {
        let (toks, body) =
            body_of("fn f() { while x < n { a(); } for i in it { b(); } while let Some(v) = q.pop() { c(); } }");
        let cfg = build(&toks, body);
        let kinds: Vec<_> = cfg.loops.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![LoopKind::While, LoopKind::For, LoopKind::WhileLet]
        );
        // Condition range of the `while` covers `x < n`.
        let cond = cfg.loops[0].cond;
        let cond_text: Vec<_> = (cond.0..cond.1).map(|i| toks[i].text.as_str()).collect();
        assert_eq!(cond_text, vec!["x", "<", "n"]);
    }

    #[test]
    fn match_arms_branch_and_join() {
        let (toks, body) = body_of("fn f() { match v { Some(x) => { a(x); } None => b(), } c(); }");
        let cfg = build(&toks, body);
        assert!(reachable(&cfg).contains(&EXIT));
        for name in ["a", "b", "c"] {
            let count = cfg
                .blocks
                .iter()
                .flat_map(|b| b.segs.iter().flat_map(|&(s, e)| s..e))
                .filter(|&i| toks[i].text == name)
                .count();
            assert_eq!(count, 1, "token `{name}` placed once");
        }
    }

    #[test]
    fn return_and_question_mark_reach_exit() {
        let (toks, body) = body_of("fn f() { if c { return 1; } let x = g()?; x }");
        let cfg = build(&toks, body);
        // The `return` arm and the `?` block both have EXIT edges.
        let exit_preds = cfg
            .blocks
            .iter()
            .filter(|b| b.succs.contains(&EXIT))
            .count();
        assert!(exit_preds >= 2, "{cfg:#?}");
        let _ = toks;
    }

    #[test]
    fn nested_loop_breaks_target_innermost() {
        let (toks, body) = body_of("fn f() { loop { loop { break; } continue; } }");
        let cfg = build(&toks, body);
        assert_eq!(cfg.loops.len(), 2);
        assert!(cfg.loops[0].body.0 < cfg.loops[1].body.0);
        let _ = toks;
    }

    #[test]
    fn brace_depths_ignore_literal_braces() {
        let lexed = lex("fn f() { let c = '{'; let s = \"}}}\"; g(); }");
        let depths = brace_depths(&lexed.tokens);
        let g = lexed.tokens.iter().position(|t| t.text == "g").unwrap();
        assert_eq!(depths[g], 1);
    }
}
