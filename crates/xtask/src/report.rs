//! Machine-readable JSON report of a lint run.

use std::fmt::Write as _;

use crate::baseline::BaselineCheck;
use crate::lints::{LintId, Violation};

/// Serializes the outcome of a lint run as a JSON document.
///
/// Schema:
///
/// ```json
/// {
///   "files_scanned": 42,
///   "pass": true,
///   "counts": {"unit-safety": 0, "rng-determinism": 0, ...},
///   "new_violations": [{"lint": "...", "file": "...", "line": 1, "message": "..."}],
///   "budgeted_violations": [...],
///   "stale_baseline": [{"lint": "...", "file": "...", "budget": 2, "observed": 1}]
/// }
/// ```
pub fn to_json(files_scanned: usize, pass: bool, check: &BaselineCheck) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"pass\": {pass},");

    out.push_str("  \"counts\": {");
    for (i, lint) in LintId::ALL.iter().enumerate() {
        let n = check
            .new_violations
            .iter()
            .chain(&check.budgeted)
            .filter(|v| v.lint == *lint)
            .count();
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{lint}\": {n}");
    }
    out.push_str("},\n");

    write_violation_array(&mut out, "new_violations", &check.new_violations);
    out.push_str(",\n");
    write_violation_array(&mut out, "budgeted_violations", &check.budgeted);
    out.push_str(",\n");

    out.push_str("  \"stale_baseline\": [");
    for (i, (id, file, budget, observed)) in check.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"lint\": {}, \"file\": {}, \"budget\": {budget}, \"observed\": {observed}}}",
            json_string(id),
            json_string(&file.display().to_string()),
        );
    }
    if !check.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn write_violation_array(out: &mut String, key: &str, violations: &[Violation]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(v.lint.as_str()),
            json_string(&v.file.display().to_string()),
            v.line,
            json_string(&v.message),
        );
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push(']');
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn report_is_valid_shape() {
        let check = BaselineCheck {
            new_violations: vec![Violation {
                lint: LintId::PanicFreedom,
                file: PathBuf::from("a.rs"),
                line: 3,
                message: "say \"no\" to panics".to_string(),
            }],
            budgeted: vec![],
            stale: vec![("unit-safety".to_string(), PathBuf::from("b.rs"), 2, 1)],
        };
        let json = to_json(7, false, &check);
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"pass\": false"));
        assert!(json.contains("\"panic-freedom\": 1"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"budget\": 2"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
