//! Machine-readable JSON report of a lint run (SARIF-lite).
//!
//! The document is schema-versioned so CI consumers can reject drift, and
//! it is validated through the in-tree JSON parser ([`crate::json`]) both
//! by the emitter (before writing) and by `cargo xtask lint
//! --check-report` (after, in CI).

use std::fmt::Write as _;

use crate::baseline::BaselineCheck;
use crate::lints::LintId;

/// Schema identifier of the report format. Bump the `/N` suffix on any
/// field change.
pub const REPORT_SCHEMA: &str = "finrad-lint-report/3";

/// Diagnostic severity: over-budget violations are `error`, baselined ones
/// are `note`.
const LEVELS: [&str; 2] = ["error", "note"];

/// Serializes the outcome of a lint run as a JSON document.
///
/// Schema (`finrad-lint-report/3` — `/3` widened `counts` to the four
/// flow-sensitive concurrency families):
///
/// ```json
/// {
///   "schema": "finrad-lint-report/3",
///   "files_scanned": 42,
///   "pass": true,
///   "counts": {"unit-safety": 0, "rng-determinism": 0, ...},
///   "diagnostics": [
///     {"lint": "...", "level": "error", "file": "...", "line": 1,
///      "col": 5, "message": "..."}
///   ],
///   "stale_baseline": [{"lint": "...", "file": "...", "budget": 2, "observed": 1}]
/// }
/// ```
///
/// `counts` has one member per lint family (all fourteen, zero included);
/// `diagnostics` holds over-budget violations (`"level": "error"`) followed
/// by baselined ones (`"level": "note"`), each ordered by (file, line, col).
pub fn to_json(files_scanned: usize, pass: bool, check: &BaselineCheck) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(REPORT_SCHEMA));
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"pass\": {pass},");

    out.push_str("  \"counts\": {");
    for (i, lint) in LintId::ALL.iter().enumerate() {
        let n = check
            .new_violations
            .iter()
            .chain(&check.budgeted)
            .filter(|v| v.lint == *lint)
            .count();
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{lint}\": {n}");
    }
    out.push_str("},\n");

    out.push_str("  \"diagnostics\": [");
    let mut first = true;
    for (level, violations) in LEVELS.iter().zip([&check.new_violations, &check.budgeted]) {
        for v in violations {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"lint\": {}, \"level\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_string(v.lint.as_str()),
                json_string(level),
                json_string(&v.file.display().to_string()),
                v.line,
                v.col,
                json_string(&v.message),
            );
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"stale_baseline\": [");
    for (i, (id, file, budget, observed)) in check.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"lint\": {}, \"file\": {}, \"budget\": {budget}, \"observed\": {observed}}}",
            json_string(id),
            json_string(&file.display().to_string()),
        );
    }
    if !check.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Validates `text` against the `finrad-lint-report/3` schema using the
/// in-tree JSON parser. Returns the list of problems (empty = valid).
pub fn validate(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let doc = match crate::json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let Some(obj) = doc.as_object() else {
        return vec!["report root is not an object".to_string()];
    };

    match obj.get("schema").and_then(|v| v.as_str()) {
        Some(REPORT_SCHEMA) => {}
        Some(other) => problems.push(format!(
            "schema mismatch: expected `{REPORT_SCHEMA}`, found `{other}`"
        )),
        None => problems.push("missing string member `schema`".to_string()),
    }
    if obj.get("files_scanned").and_then(|v| v.as_u64()).is_none() {
        problems.push("missing non-negative integer `files_scanned`".to_string());
    }
    if !matches!(obj.get("pass"), Some(crate::json::Value::Bool(_))) {
        problems.push("missing boolean `pass`".to_string());
    }

    match obj.get("counts").and_then(|v| v.as_object()) {
        None => problems.push("missing object `counts`".to_string()),
        Some(counts) => {
            for lint in LintId::ALL {
                if counts.get(lint.as_str()).and_then(|v| v.as_u64()).is_none() {
                    problems.push(format!("counts is missing integer `{lint}`"));
                }
            }
            for key in counts.keys() {
                if !LintId::ALL.iter().any(|l| l.as_str() == key) {
                    problems.push(format!("counts has unknown lint `{key}`"));
                }
            }
        }
    }

    match obj.get("diagnostics").and_then(|v| v.as_array()) {
        None => problems.push("missing array `diagnostics`".to_string()),
        Some(diags) => {
            for (i, d) in diags.iter().enumerate() {
                let ok = d
                    .get("lint")
                    .and_then(|v| v.as_str())
                    .is_some_and(|id| LintId::ALL.iter().any(|l| l.as_str() == id))
                    && d.get("level")
                        .and_then(|v| v.as_str())
                        .is_some_and(|l| LEVELS.contains(&l))
                    && d.get("file").and_then(|v| v.as_str()).is_some()
                    && d.get("line")
                        .and_then(|v| v.as_u64())
                        .is_some_and(|n| n >= 1)
                    && d.get("col")
                        .and_then(|v| v.as_u64())
                        .is_some_and(|n| n >= 1)
                    && d.get("message").and_then(|v| v.as_str()).is_some();
                if !ok {
                    problems.push(format!("diagnostics[{i}] is malformed"));
                }
            }
        }
    }

    match obj.get("stale_baseline").and_then(|v| v.as_array()) {
        None => problems.push("missing array `stale_baseline`".to_string()),
        Some(stale) => {
            for (i, s) in stale.iter().enumerate() {
                let ok = s.get("lint").and_then(|v| v.as_str()).is_some()
                    && s.get("file").and_then(|v| v.as_str()).is_some()
                    && s.get("budget").and_then(|v| v.as_u64()).is_some()
                    && s.get("observed").and_then(|v| v.as_u64()).is_some();
                if !ok {
                    problems.push(format!("stale_baseline[{i}] is malformed"));
                }
            }
        }
    }

    problems
}

/// Differential mode (`cargo xtask lint --diff-base <report.json>`): splits
/// `current` into (fresh, absorbed) against the diagnostics recorded in a
/// prior report. Matching is keyed on (lint, file, message) — not line — so
/// unrelated edits that shift code don't resurrect known findings; it is
/// multiplicity-aware, so a *second* occurrence of an already-known
/// diagnostic still counts as fresh.
///
/// Returns `Err` when `base_text` fails [`validate`] — a differential gate
/// against a malformed base would silently pass everything.
pub fn diff_new(
    current: &[crate::lints::Violation],
    base_text: &str,
) -> Result<(Vec<crate::lints::Violation>, Vec<crate::lints::Violation>), Vec<String>> {
    let problems = validate(base_text);
    if !problems.is_empty() {
        return Err(problems);
    }
    // validate() guarantees the shape below, so the unwraps cannot fire.
    let doc = crate::json::parse(base_text).map_err(|e| vec![e.to_string()])?;
    let mut known: std::collections::BTreeMap<(String, String, String), usize> =
        std::collections::BTreeMap::new();
    if let Some(diags) = doc.get("diagnostics").and_then(|v| v.as_array()) {
        for d in diags {
            let key = (
                d.get("lint")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
                d.get("file")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
                d.get("message")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
            );
            *known.entry(key).or_insert(0) += 1;
        }
    }

    let mut fresh = Vec::new();
    let mut absorbed = Vec::new();
    for v in current {
        let key = (
            v.lint.as_str().to_string(),
            v.file.display().to_string(),
            v.message.clone(),
        );
        match known.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                absorbed.push(v.clone());
            }
            _ => fresh.push(v.clone()),
        }
    }
    Ok((fresh, absorbed))
}

/// Escapes `s` as a JSON string literal (shared with [`crate::sarif`]).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Violation;
    use std::path::PathBuf;

    fn sample_check() -> BaselineCheck {
        BaselineCheck {
            new_violations: vec![Violation {
                lint: LintId::PanicFreedom,
                file: PathBuf::from("a.rs"),
                line: 3,
                col: 7,
                message: "say \"no\" to panics".to_string(),
            }],
            budgeted: vec![Violation {
                lint: LintId::FloatDiscipline,
                file: PathBuf::from("c.rs"),
                line: 9,
                col: 2,
                message: "tolerances".to_string(),
            }],
            stale: vec![("unit-safety".to_string(), PathBuf::from("b.rs"), 2, 1)],
        }
    }

    #[test]
    fn report_round_trips_through_own_parser_and_validates() {
        let json = to_json(7, false, &sample_check());
        let doc = crate::json::parse(&json).expect("self-emitted report must parse");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(doc.get("files_scanned").and_then(|v| v.as_u64()), Some(7));
        let diags = doc.get("diagnostics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(
            diags[0].get("level").and_then(|v| v.as_str()),
            Some("error")
        );
        assert_eq!(diags[1].get("level").and_then(|v| v.as_str()), Some("note"));
        assert_eq!(diags[0].get("col").and_then(|v| v.as_u64()), Some(7));
        assert!(validate(&json).is_empty(), "{:?}", validate(&json));
    }

    #[test]
    fn counts_cover_all_families() {
        let json = to_json(1, true, &BaselineCheck::default());
        let doc = crate::json::parse(&json).unwrap();
        let counts = doc.get("counts").and_then(|v| v.as_object()).unwrap();
        assert_eq!(counts.len(), LintId::ALL.len());
    }

    #[test]
    fn diff_of_a_report_against_itself_is_empty() {
        let check = sample_check();
        let json = to_json(7, false, &check);
        let current: Vec<Violation> = check
            .new_violations
            .iter()
            .chain(&check.budgeted)
            .cloned()
            .collect();
        let (fresh, absorbed) = diff_new(&current, &json).expect("valid base");
        assert!(fresh.is_empty(), "{fresh:?}");
        assert_eq!(absorbed.len(), current.len());
    }

    #[test]
    fn diff_is_line_insensitive_but_multiplicity_aware() {
        let check = sample_check();
        let json = to_json(7, false, &check);
        // Same diagnostic, shifted by an unrelated edit: absorbed.
        let mut moved = check.new_violations[0].clone();
        moved.line += 40;
        // A second copy of it: fresh (the base records only one).
        let (fresh, absorbed) = diff_new(&[moved.clone(), moved], &json).expect("valid base");
        assert_eq!(absorbed.len(), 1);
        assert_eq!(fresh.len(), 1);
        // A genuinely new diagnostic is fresh.
        let novel = Violation {
            lint: LintId::RngDeterminism,
            file: PathBuf::from("d.rs"),
            line: 1,
            col: 1,
            message: "entropy".to_string(),
        };
        let (fresh, absorbed) = diff_new(&[novel], &json).expect("valid base");
        assert!(absorbed.is_empty());
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn diff_rejects_a_malformed_base() {
        assert!(diff_new(&[], "not json").is_err());
        assert!(diff_new(&[], "{}").is_err());
    }

    #[test]
    fn validate_rejects_drifted_documents() {
        assert!(!validate("{}").is_empty());
        assert!(!validate("not json").is_empty());
        let wrong_schema = to_json(1, true, &BaselineCheck::default())
            .replace(REPORT_SCHEMA, "finrad-lint-report/1");
        assert!(validate(&wrong_schema)
            .iter()
            .any(|p| p.contains("schema mismatch")));
        let bad_diag = to_json(1, false, &sample_check()).replace("\"col\": 7", "\"col\": 0");
        assert!(validate(&bad_diag)
            .iter()
            .any(|p| p.contains("diagnostics[0]")));
    }
}
