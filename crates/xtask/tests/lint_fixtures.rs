//! End-to-end tests of the lint engine over the seeded fixtures: each lint
//! family fires with the right ID at the right (line, col) span, allow()
//! suppresses (and unused allows are flagged), and clean code stays clean.

use std::path::{Path, PathBuf};

use xtask::flow::FileUnit;
use xtask::index::{self, WorkspaceIndex};
use xtask::lints::{self, LintId, Violation};

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"))
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    xtask::lint_file_source(Path::new(name), &read_fixture(name), true)
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

/// Lints a fixture against the *real* workspace index, so the declared
/// metric-key set comes from `crates/observe/src/keys.rs`.
fn lint_fixture_indexed(name: &str) -> (Vec<Violation>, WorkspaceIndex) {
    let index = index::build(workspace_root()).expect("index build");
    let v = xtask::lint_file_source_with_index(Path::new(name), &read_fixture(name), true, &index);
    (v, index)
}

/// Runs the flow-sensitive (phase-3) families over one fixture, through
/// the same suppression pass `scan_tree` applies — so `allow(...)`
/// directives in flow fixtures behave exactly as they do in real code.
fn flow_fixture(name: &str) -> Vec<Violation> {
    let text = read_fixture(name);
    let unit = FileUnit {
        path: PathBuf::from("crates/core/src").join(name),
        lexed: xtask::lexer::lex(&text),
    };
    let scrubbed = xtask::source::scrub(&text);
    let raw = xtask::flow::analyze(std::slice::from_ref(&unit));
    lints::apply_suppressions(&unit.path, &scrubbed, raw)
}

#[test]
fn unit_safety_fixture() {
    let v = lint_fixture("unit_safety.rs");
    // Only the parameter-side check remains; the return site on line 11 is
    // the type system's (and raw-escape-audit's) problem now.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::UnitSafety);
    // `pub fn set_supply(vdd: f64)` — param violation on line 4.
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("vdd: f64"));
}

#[test]
fn raw_escape_fixture() {
    let v = lint_fixture("raw_escape.rs");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::RawEscapeAudit));
    // `energy.si_value()` on line 6, `Charge::from_si(..)` on line 11.
    assert_eq!((v[0].line, v[0].col), (6, 12));
    assert!(v[0].message.contains("si_value"));
    assert_eq!((v[1].line, v[1].col), (11, 13));
    assert!(v[1].message.contains("from_si"));
}

#[test]
fn rng_determinism_fixture() {
    let v = lint_fixture("rng_determinism.rs");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::RngDeterminism);
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("thread_rng"));
}

#[test]
fn panic_freedom_fixture() {
    let v = lint_fixture("panic_freedom.rs");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::PanicFreedom));
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("unwrap"));
    assert_eq!(v[1].line, 9);
    assert!(v[1].message.contains("pair_lut"));
}

#[test]
fn float_discipline_fixture() {
    let v = lint_fixture("float_discipline.rs");
    // f32 fires on both the return type (line 4) and the cast (line 5);
    // float == on line 9; partial_cmp().unwrap() + .unwrap() on line 13.
    assert!(v.len() >= 4, "{v:#?}");
    assert!(
        v.iter()
            .filter(|v| v.lint == LintId::FloatDiscipline)
            .count()
            >= 4
    );
    assert!(v.iter().any(|v| v.line == 4 && v.message.contains("f32")));
    assert!(v.iter().any(|v| v.line == 9 && v.message.contains("`==`")));
    assert!(v
        .iter()
        .any(|v| v.line == 13 && v.message.contains("total_cmp")));
}

#[test]
fn allow_directives_suppress_everything() {
    let v = lint_fixture("allow_suppression.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_fixture_stays_clean() {
    let v = lint_fixture("clean.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn metrics_key_registry_fixture() {
    let (v, index) = lint_fixture_indexed("metric_keys.rs");
    // The index must resolve the declared key set from the real registry.
    assert!(index.metric_keys.contains("core.strike.iterations"));
    assert!(index
        .metric_key_prefixes
        .iter()
        .any(|p| p == "spice.recovery.rung."));
    // The round-2 hot-path keys are part of the real registry, so the
    // fixture's uses of them must not fire.
    assert!(index.metric_keys.contains("spice.newton.jacobian_reuses"));
    assert!(index.metric_keys.contains("spice.newton.refactorizations"));
    assert!(index
        .metric_keys
        .contains("spice.transient.lte_step_growths"));
    assert!(index.metric_keys.contains("finfet.model.batched_evals"));
    // Declared key (line 5), prefix-composed key (line 9) and the round-2
    // keys (lines 17-20) pass; only the typo'd key fires, with the span on
    // the string literal.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::MetricsKeyRegistry);
    assert_eq!((v[0].line, v[0].col), (13, 33));
    assert!(v[0].message.contains("core.strike.iterationz"));
    assert!(
        v[0].message
            .contains("did you mean `core.strike.iterations`"),
        "{}",
        v[0].message
    );
}

#[test]
fn service_keys_fixture() {
    let (v, index) = lint_fixture_indexed("service_keys.rs");
    // The campaign-service namespace is part of the real registry.
    assert!(index.metric_keys.contains("core.service.cache_hits"));
    assert!(index.metric_keys.contains("core.service.bins_quarantined"));
    // The registered key (line 6) passes; only the unregistered one fires.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::MetricsKeyRegistry);
    assert_eq!((v[0].line, v[0].col), (10, 33));
    assert!(v[0].message.contains("core.service.cache_evictions"));
}

#[test]
fn seed_discipline_fixture() {
    let (v, _) = lint_fixture_indexed("seed_discipline.rs");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::SeedDiscipline);
    // The ad-hoc derivation on line 15; span on the `seed_from_u64` call.
    assert_eq!((v[0].line, v[0].col), (15, 19));
}

#[test]
fn shared_state_fixture() {
    let (v, _) = lint_fixture_indexed("shared_state.rs");
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::SharedStateAudit));
    assert_eq!((v[0].line, v[0].col), (6, 5));
    assert!(v[0].message.contains("static mut"));
    assert_eq!((v[1].line, v[1].col), (9, 36));
    assert!(v[1].message.contains("Relaxed"));
    assert_eq!((v[2].line, v[2].col), (12, 1));
    assert!(v[2].message.contains("thread_local"));
}

#[test]
fn unused_suppression_fixture() {
    let (v, _) = lint_fixture_indexed("unused_suppression.rs");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::UnusedSuppression);
    // The stale standalone directive on line 9, span on the directive text.
    assert_eq!((v[0].line, v[0].col), (9, 4));
    assert!(v[0].message.contains("panic-freedom"));
}

#[test]
fn lock_order_fixture() {
    let v = flow_fixture("lock_order.rs");
    // Exactly the seeded alpha/beta cycle; the consistent alpha->gamma pair
    // must not fire, and no other family may piggy-back on this fixture.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::LockOrderAudit);
    assert!(v[0].message.contains("alpha"), "{}", v[0].message);
    assert!(v[0].message.contains("beta"), "{}", v[0].message);
    assert!(v[0].message.contains("deadlock"), "{}", v[0].message);
    assert!(!v[0].message.contains("gamma"), "{}", v[0].message);
}

#[test]
fn guard_lifetime_fixture() {
    let v = flow_fixture("guard_lifetime.rs");
    // Only `held_across_sleep` fires; drop-first, inner-scope, and
    // guard-consuming condvar wait are the sanctioned shapes.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::GuardLifetimeAudit);
    assert_eq!(v[0].line, 14);
    assert!(v[0].message.contains("`g`"), "{}", v[0].message);
    assert!(v[0].message.contains("`state`"), "{}", v[0].message);
    assert!(v[0].message.contains("sleep"), "{}", v[0].message);
}

#[test]
fn cancellation_fixture() {
    let v = flow_fixture("cancellation.rs");
    // Only the unpolled `pump` loop fires; the polled twin and the
    // never-spawned `standalone` loop stay clean.
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::CancellationResponsiveness);
    assert_eq!(v[0].line, 12);
    assert!(v[0].message.contains("pump"), "{}", v[0].message);
    assert!(v[0].message.contains("step_blocking"), "{}", v[0].message);
}

#[test]
fn result_discard_fixture() {
    let v = flow_fixture("result_discard.rs");
    // `let _ = produce()` (line 10) and the unused `outcome` binding
    // (line 11); the `?`, `_`-prefixed, read, and macro shapes are clean.
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::ResultDiscardAudit));
    assert_eq!(v[0].line, 10);
    assert!(v[0].message.contains("let _ ="), "{}", v[0].message);
    assert_eq!(v[1].line, 11);
    assert!(v[1].message.contains("`outcome`"), "{}", v[1].message);
}

#[test]
fn allow_directive_suppresses_flow_families() {
    // The inline poison-recovery idiom, wrapped in a standalone allow —
    // the suppression pass must absorb the flow-family violation just as
    // it does per-file ones.
    let src = "impl S {\n    fn recover(&self) {\n        // finrad-lint: allow(lock-order-audit)\n        let g = self.m.lock().unwrap_or_else(|p| p.into_inner());\n        drop(g);\n    }\n}\n";
    let unit = FileUnit {
        path: PathBuf::from("crates/core/src/inline_allow.rs"),
        lexed: xtask::lexer::lex(src),
    };
    let scrubbed = xtask::source::scrub(src);
    let raw = xtask::flow::analyze(std::slice::from_ref(&unit));
    assert_eq!(raw.len(), 1, "{raw:#?}");
    let v = lints::apply_suppressions(&unit.path, &scrubbed, raw);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn lexer_edges_fixture_stays_clean() {
    // Raw strings, escapes, and nested block comments: clean through both
    // the per-file families and the flow families.
    let v = lint_fixture("lexer_edges.rs");
    assert!(v.is_empty(), "{v:#?}");
    let v = flow_fixture("lexer_edges.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn checkpoint_drift_fires_on_unbumped_serializer_edit() {
    let keys = read_fixture("../../../observe/src/keys.rs");
    let v1 = "pub const CHECKPOINT_VERSION: u32 = 1;\n\
              pub fn to_text(x: u64) -> u64 { x.wrapping_mul(3) }\n";
    let v1_edited = "pub const CHECKPOINT_VERSION: u32 = 1;\n\
              pub fn to_text(x: u64) -> u64 { x.wrapping_mul(5) }\n";
    let v2_edited = "pub const CHECKPOINT_VERSION: u32 = 2;\n\
              pub fn to_text(x: u64) -> u64 { x.wrapping_mul(5) }\n";

    let schema_of = |src: &str| {
        index::from_sources(&keys, "", Some(src))
            .checkpoint
            .clone()
            .expect("fixture declares CHECKPOINT_VERSION")
    };
    let recorded = schema_of(v1);
    let pin = Some((recorded.fingerprint, recorded.version));

    // Unchanged codec: quiet.
    assert!(lints::checkpoint_drift(&index::from_sources(&keys, "", Some(v1)), pin).is_empty());

    // Serializer edited, version NOT bumped: the drift lint fails with a
    // span on the version constant.
    let drifted = lints::checkpoint_drift(&index::from_sources(&keys, "", Some(v1_edited)), pin);
    assert_eq!(drifted.len(), 1, "{drifted:#?}");
    assert_eq!(drifted[0].lint, LintId::CheckpointSchemaDrift);
    assert!(drifted[0]
        .message
        .contains("without a CHECKPOINT_VERSION bump"));
    assert_eq!((drifted[0].line, drifted[0].col), (1, 37));

    // Serializer edited WITH a version bump: the lint asks for a pin
    // refresh (`--fix-allowlist`) instead of rejecting the edit.
    let bumped = lints::checkpoint_drift(&index::from_sources(&keys, "", Some(v2_edited)), pin);
    assert_eq!(bumped.len(), 1, "{bumped:#?}");
    assert!(bumped[0].message.contains("refresh the recorded schema"));
    // And refreshing the pin silences it.
    let refreshed = schema_of(v2_edited);
    assert!(lints::checkpoint_drift(
        &index::from_sources(&keys, "", Some(v2_edited)),
        Some((refreshed.fingerprint, refreshed.version)),
    )
    .is_empty());
}

#[test]
fn scan_tree_skips_xtask_and_reports_relative_paths() {
    let scan = xtask::scan_tree(workspace_root()).expect("scan");
    assert!(scan.files_scanned > 20, "only {} files", scan.files_scanned);
    assert!(scan
        .violations
        .iter()
        .all(|v| !v.file.starts_with("crates/xtask")));
    assert!(scan.violations.iter().all(|v| v.file.is_relative()));
    // The index phase resolved real symbols.
    assert!(!scan.index.metric_keys.is_empty());
    assert!(!scan.index.seed_sanctioned.is_empty());
    assert!(scan.index.checkpoint.is_some());
    // The repo-wide policy: these classes are fully fixed and must stay so.
    for extinct in [
        LintId::RngDeterminism,
        LintId::MetricsKeyRegistry,
        LintId::SeedDiscipline,
        LintId::SharedStateAudit,
        LintId::UnusedSuppression,
        // The flow families: in particular, the real lock-acquisition graph
        // (campaign service included) must be cycle-free, and every
        // supervised loop must poll cancellation.
        LintId::LockOrderAudit,
        LintId::GuardLifetimeAudit,
        LintId::CancellationResponsiveness,
        LintId::ResultDiscardAudit,
    ] {
        let hits: Vec<_> = scan
            .violations
            .iter()
            .filter(|v| v.lint == extinct)
            .collect();
        assert!(hits.is_empty(), "[{extinct}] resurfaced: {hits:#?}");
    }
}

#[test]
fn real_scan_report_round_trips_and_validates() {
    let root = workspace_root();
    let scan = xtask::scan_tree(root).expect("scan");
    let base = xtask::baseline::Baseline::load(root).expect("baseline");
    let mut all = scan.violations.clone();
    all.extend(lints::checkpoint_drift(
        &scan.index,
        base.checkpoint_schema(),
    ));
    let check = xtask::baseline::check(&all, &base);
    let json = xtask::report::to_json(scan.files_scanned, true, &check);
    let problems = xtask::report::validate(&json);
    assert!(problems.is_empty(), "{problems:#?}");
    let doc = xtask::json::parse(&json).expect("report parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(xtask::report::REPORT_SCHEMA)
    );

    // The same run as SARIF: validates, advertises every family as a rule,
    // and carries one result per diagnostic.
    let sarif = xtask::sarif::to_sarif(&check);
    let problems = xtask::sarif::validate(&sarif);
    assert!(problems.is_empty(), "{problems:#?}");
    let doc = xtask::json::parse(&sarif).expect("SARIF parses");
    let runs = doc.get("runs").and_then(|v| v.as_array()).expect("runs");
    let results = runs[0]
        .get("results")
        .and_then(|v| v.as_array())
        .expect("results");
    assert_eq!(
        results.len(),
        check.new_violations.len() + check.budgeted.len()
    );

    // Differential mode against the report we just emitted: an unchanged
    // tree produces zero fresh diagnostics.
    let current: Vec<Violation> = check
        .new_violations
        .iter()
        .chain(&check.budgeted)
        .cloned()
        .collect();
    let (fresh, absorbed) =
        xtask::report::diff_new(&current, &json).expect("self-report is a valid base");
    assert!(fresh.is_empty(), "{fresh:#?}");
    assert_eq!(absorbed.len(), current.len());
}
