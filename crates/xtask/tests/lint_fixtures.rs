//! End-to-end tests of the lint engine over the seeded fixtures: each lint
//! family fires with the right ID on the right line, allow() suppresses,
//! and clean code stays clean.

use std::path::Path;

use xtask::lints::{LintId, Violation};

fn lint_fixture(name: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    xtask::lint_file_source(Path::new(name), &text, true)
}

#[test]
fn unit_safety_fixture() {
    let v = lint_fixture("unit_safety.rs");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::UnitSafety));
    // `pub fn set_supply(vdd: f64)` — param violation on line 4.
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("vdd: f64"));
    // `pub fn vdd(&self) -> f64` — return violation on line 11.
    assert_eq!(v[1].line, 11);
    assert!(v[1].message.contains("returns bare `f64`"));
}

#[test]
fn rng_determinism_fixture() {
    let v = lint_fixture("rng_determinism.rs");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].lint, LintId::RngDeterminism);
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("thread_rng"));
}

#[test]
fn panic_freedom_fixture() {
    let v = lint_fixture("panic_freedom.rs");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.lint == LintId::PanicFreedom));
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("unwrap"));
    assert_eq!(v[1].line, 9);
    assert!(v[1].message.contains("pair_lut"));
}

#[test]
fn float_discipline_fixture() {
    let v = lint_fixture("float_discipline.rs");
    // f32 fires on both the return type (line 4) and the cast (line 5);
    // float == on line 9; partial_cmp().unwrap() + .unwrap() on line 13.
    assert!(v.len() >= 4, "{v:#?}");
    assert!(
        v.iter()
            .filter(|v| v.lint == LintId::FloatDiscipline)
            .count()
            >= 4
    );
    assert!(v.iter().any(|v| v.line == 4 && v.message.contains("f32")));
    assert!(v.iter().any(|v| v.line == 9 && v.message.contains("`==`")));
    assert!(v
        .iter()
        .any(|v| v.line == 13 && v.message.contains("total_cmp")));
}

#[test]
fn allow_directives_suppress_everything() {
    let v = lint_fixture("allow_suppression.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_fixture_stays_clean() {
    let v = lint_fixture("clean.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn scan_tree_skips_xtask_and_reports_relative_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let scan = xtask::scan_tree(root).expect("scan");
    assert!(scan.files_scanned > 20, "only {} files", scan.files_scanned);
    assert!(scan
        .violations
        .iter()
        .all(|v| !v.file.starts_with("crates/xtask")));
    assert!(scan.violations.iter().all(|v| v.file.is_relative()));
    // The repo-wide policy: the rng-determinism class is fully fixed.
    assert!(scan
        .violations
        .iter()
        .all(|v| v.lint != LintId::RngDeterminism));
}
