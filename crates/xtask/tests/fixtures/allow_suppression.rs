// Fixture: every violation here carries an allow directive, so the lint
// pass must report nothing.

pub fn checked_sentinel(x: f64) -> bool {
    // finrad-lint: allow(float-discipline)
    x == 0.0
}

// finrad-lint: allow(panic-freedom)
pub fn head(values: &[f64]) -> f64 {
    *values.first().unwrap() // finrad-lint: allow(panic-freedom)
}
