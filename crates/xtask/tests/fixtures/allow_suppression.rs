// Fixture: every violation here carries an allow directive, so the lint
// pass must report nothing — and every directive fires, so the
// unused-suppression audit must stay quiet too.

pub fn checked_sentinel(x: f64) -> bool {
    // finrad-lint: allow(float-discipline)
    x == 0.0
}

pub fn head(values: &[f64]) -> f64 {
    *values.first().unwrap() // finrad-lint: allow(panic-freedom)
}
