//! Fixture: unused-suppression — the first allow suppresses a real
//! violation; the second can never fire and must be flagged.

pub fn sentinel(x: f64) -> bool {
    // finrad-lint: allow(float-discipline)
    x == 0.0
}

// finrad-lint: allow(panic-freedom)
pub fn answer() -> u64 {
    42
}
