//! Lexer edge cases that must stay clean through the full lint pipeline:
//! raw strings with hashes, escaped quotes and control characters, and
//! nested block comments — none of the `unwrap()`/`panic!` text below is
//! code.

/* outer /* nested */ block comment mentioning "unwrap()" and panic! */

pub fn edge_cases() -> String {
    let raw = r#"contains "unwrap()" and panic! text"#;
    let hashes = r##"raw with "# inside"##;
    let escaped = "quote \" backslash \\ newline \n";
    let quote_char = '\'';
    let nul = '\0';
    let tab = '\t';
    format!("{raw}{hashes}{escaped}{quote_char}{nul}{tab}")
}
