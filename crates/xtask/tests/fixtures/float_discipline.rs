// Fixture: float-discipline violations — f32, float equality, and
// partial_cmp().unwrap().

pub fn truncate(x: f64) -> f32 {
    x as f32
}

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn sort(values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
