//! Fixture: seed-discipline — bare seeds and the sanctioned helpers pass;
//! inline derivation arithmetic fails.

use finrad_numerics::rng::Xoshiro256pp;

pub fn ok_bare(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(seed)
}

pub fn ok_helper(seed: u64, chunk: u64) -> Xoshiro256pp {
    Xoshiro256pp::salted_stream(seed, chunk + 1, 0xD6E8_FEB8_6659_FD93)
}

pub fn bad_adhoc(seed: u64, worker: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
