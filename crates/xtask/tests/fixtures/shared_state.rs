//! Fixture: shared-state-audit — unsynchronized globals, relaxed
//! orderings, and thread-local state are flagged with spans.

use std::sync::atomic::{AtomicU64, Ordering};

pub static mut GLOBAL_TALLY: u64 = 0;

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

thread_local! {
    pub static SCRATCH: u64 = 0;
}
