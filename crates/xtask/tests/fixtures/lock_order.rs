//! Seeded fixture: `lock-order-audit`. `a_then_b` and `b_then_a` acquire
//! the same two locks in opposite orders — the classic deadlock shape the
//! cycle detector must catch. `consistent_first`/`consistent_second` take
//! alpha before gamma in both callers and must stay clean.

pub struct Pools {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
    gamma: std::sync::Mutex<u32>,
}

impl Pools {
    pub fn a_then_b(&self) {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        drop(gb);
        drop(ga);
    }

    pub fn b_then_a(&self) {
        let gb = self.beta.lock().unwrap();
        let ga = self.alpha.lock().unwrap();
        drop(ga);
        drop(gb);
    }

    pub fn consistent_first(&self) {
        let ga = self.alpha.lock().unwrap();
        let gc = self.gamma.lock().unwrap();
        drop(gc);
        drop(ga);
    }

    pub fn consistent_second(&self) {
        let ga = self.alpha.lock().unwrap();
        let gc = self.gamma.lock().unwrap();
        drop(gc);
        drop(ga);
    }
}
