// Fixture: unit-safety violations — bare f64 where a newtype exists.
// Not compiled; consumed by the lint integration tests.

pub fn set_supply(vdd: f64) {
    let _ = vdd;
}

pub struct Meter;

impl Meter {
    pub fn vdd(&self) -> f64 {
        0.8
    }
}

pub fn scale(factor: f64) -> f64 {
    // Dimensionless — must NOT be flagged.
    factor
}
