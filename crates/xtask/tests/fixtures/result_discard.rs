//! Seeded fixture: `result-discard-audit`. The `let _ =` drop and the
//! never-read `outcome` binding must fire; the propagated (`?`),
//! `_`-prefixed, genuinely-read, and macro-RHS shapes must stay clean.

fn produce() -> Result<u32, String> {
    Ok(1)
}

pub fn caller() -> Result<(), String> {
    let _ = produce();
    let outcome = produce();
    let used = produce();
    if used.is_ok() {
        let value = produce().map_err(|e| e)?;
        let _ignored = produce();
        let _ = format!("{value}");
    }
    Ok(())
}
