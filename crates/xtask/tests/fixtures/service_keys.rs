//! Fixture: metrics-key-registry over the campaign-service namespace — a
//! registered `core.service.*` key passes; an unregistered one fails so
//! new service metrics cannot bypass `finrad_observe::keys`.

pub fn registered() {
    finrad_observe::counter_add("core.service.cache_hits", 1);
}

pub fn unregistered() {
    finrad_observe::counter_add("core.service.cache_evictions", 1);
}
