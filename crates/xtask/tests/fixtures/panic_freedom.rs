// Fixture: panic-freedom violations — unwrap and LUT slice indexing.

pub fn lookup(values: &[f64]) -> f64 {
    let first = values.first().unwrap();
    *first
}

pub fn raw_index(pair_lut: &[f64], i: usize) -> f64 {
    pair_lut[i]
}
