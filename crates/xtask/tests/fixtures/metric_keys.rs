//! Fixture: metrics-key-registry — declared keys and prefix-composed keys
//! pass; a typo'd key fails with a span on the string literal.

pub fn good() {
    finrad_observe::counter_add("core.strike.iterations", 1);
}

pub fn prefixed() {
    finrad_observe::record("spice.recovery.rung.gmin-stepping.ok", 1.0);
}

pub fn typo() {
    finrad_observe::counter_add("core.strike.iterationz", 1);
}
