//! Fixture: metrics-key-registry — declared keys and prefix-composed keys
//! pass; a typo'd key fails with a span on the string literal.

pub fn good() {
    finrad_observe::counter_add("core.strike.iterations", 1);
}

pub fn prefixed() {
    finrad_observe::record("spice.recovery.rung.gmin-stepping.ok", 1.0);
}

pub fn typo() {
    finrad_observe::counter_add("core.strike.iterationz", 1);
}

pub fn round_two_hot_path_keys() {
    finrad_observe::counter_add("spice.newton.jacobian_reuses", 1);
    finrad_observe::counter_add("spice.newton.refactorizations", 1);
    finrad_observe::counter_add("spice.transient.lte_step_growths", 1);
    finrad_observe::counter_add("finfet.model.batched_evals", 1);
}
