// Fixture: rng-determinism violation — entropy-seeded generator.

pub fn sample() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
