//! Seeded fixture: `cancellation-responsiveness`. `pump` is reachable from
//! a `spawn` entry point and blocks forever without polling — it must
//! fire. `polled_pump` checks its token each iteration; `standalone` is
//! never spawned; both must stay clean.

pub fn boot(token: CancelToken) {
    std::thread::spawn(move || pump());
    std::thread::spawn(move || polled_pump(token));
}

fn pump() {
    loop {
        step_blocking();
    }
}

fn polled_pump(token: CancelToken) {
    loop {
        if token.is_cancelled() {
            break;
        }
        step_blocking();
    }
}

fn standalone() {
    loop {
        step_blocking();
    }
}

fn step_blocking() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
