//! Seeded fixture: `guard-lifetime-audit`. `held_across_sleep` keeps the
//! state guard live over a blocking call and must fire; the other three
//! shapes (explicit drop, inner scope, condvar wait that consumes the
//! guard) are the sanctioned patterns and must stay clean.

pub struct Store {
    state: std::sync::Mutex<u32>,
    cv: std::sync::Condvar,
}

impl Store {
    pub fn held_across_sleep(&self) {
        let g = self.state.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }

    pub fn dropped_first(&self) {
        let g = self.state.lock().unwrap();
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    pub fn scoped(&self) {
        {
            let g = self.state.lock().unwrap();
            g.touch();
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    pub fn wait_consumes(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.ready() {
            st = self.cv.wait(st).unwrap();
        }
        drop(st);
    }
}
