// Fixture: raw-escape-audit violations — the raw-f64 escape hatches used
// outside a sanctioned site. Not compiled; consumed by the lint tests.

pub fn collected_fraction(energy: Energy) -> f64 {
    // Raw read-out in physics code: flagged at the call site.
    energy.si_value() * 0.5
}

pub fn make_charge(raw: f64) -> Charge {
    // Raw construction in physics code: flagged at the call site.
    Charge::from_si(raw)
}
