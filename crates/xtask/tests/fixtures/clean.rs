// Fixture: idiomatic finrad library code — the lint pass must stay silent.
// Mentions of thread_rng() or x.unwrap() in comments don't count, and
// "panic!" inside a string literal is data, not code.

pub fn pof(qcrit_sorted: &[f64], qc: f64) -> f64 {
    let below = qcrit_sorted.partition_point(|&sample| sample <= qc);
    below as f64 / qcrit_sorted.len().max(1) as f64
}

pub fn describe() -> &'static str {
    "never panic!, never unwrap()"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_tests_unwrap_is_fine() {
        let p = pof(&[1.0, 2.0], 1.5);
        assert!((p - 0.5).abs() < 1e-12);
        let v: Option<f64> = Some(p);
        let _ = v.unwrap();
    }
}
