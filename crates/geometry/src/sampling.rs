//! Random direction and position sampling for the strike Monte Carlo.
//!
//! The paper generates "a random particle with a random direction and
//! position" (Section 5.1, step 1). Two direction laws are provided:
//!
//! * [`isotropic_direction`] — uniform over the full sphere; appropriate for
//!   alpha particles emitted by package contamination on all sides.
//! * [`cosine_law_hemisphere`] — Lambertian flux through a horizontal plane;
//!   the standard model for atmospheric particles arriving at a surface
//!   (intensity ∝ cos θ from the zenith).

use crate::{Aabb, Vec3};
use finrad_numerics::rng::Rng;

/// Samples a direction uniformly distributed over the unit sphere.
///
/// # Examples
///
/// ```
/// use finrad_numerics::rng::Xoshiro256pp;
/// let mut rng = Xoshiro256pp::seed_from_u64(7);
/// let d = finrad_geometry::sampling::isotropic_direction(&mut rng);
/// assert!((d.norm() - 1.0).abs() < 1e-12);
/// ```
pub fn isotropic_direction<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    // Marsaglia (1972): uniform on the sphere via the cylinder map.
    let z: f64 = rng.gen_range(-1.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

/// Samples a downward direction with the cosine (Lambert) law relative to
/// the `-z` axis: the polar angle satisfies `cos²θ ~ U(0,1)`, which weights
/// directions by the flux they carry through a horizontal surface.
pub fn cosine_law_hemisphere<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let cos_theta = u.sqrt(); // pdf ∝ cosθ·sinθ
    let sin_theta = (1.0 - cos_theta * cos_theta).max(0.0).sqrt();
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    Vec3::new(sin_theta * phi.cos(), sin_theta * phi.sin(), -cos_theta)
}

/// Samples a point uniformly inside a box.
pub fn point_in_box<R: Rng + ?Sized>(rng: &mut R, aabb: &Aabb) -> Vec3 {
    let min = aabb.min_corner();
    let max = aabb.max_corner();
    Vec3::new(
        sample_coord(rng, min.x, max.x),
        sample_coord(rng, min.y, max.y),
        sample_coord(rng, min.z, max.z),
    )
}

/// Samples a point uniformly on the top (`z = max`) face of a box — the
/// natural launch surface for particles arriving from above the die.
pub fn point_on_top_face<R: Rng + ?Sized>(rng: &mut R, aabb: &Aabb) -> Vec3 {
    let min = aabb.min_corner();
    let max = aabb.max_corner();
    Vec3::new(
        sample_coord(rng, min.x, max.x),
        sample_coord(rng, min.y, max.y),
        max.z,
    )
}

fn sample_coord<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_numerics::rng::Xoshiro256pp;

    #[test]
    fn isotropic_is_unit_and_covers_both_hemispheres() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut up = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let d = isotropic_direction(&mut rng);
            assert!((d.norm() - 1.0).abs() < 1e-12);
            if d.z > 0.0 {
                up += 1;
            }
        }
        // Roughly half of the directions point up.
        let frac = up as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "up fraction {frac}");
    }

    #[test]
    fn isotropic_mean_is_near_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 20_000;
        let mut acc = Vec3::ZERO;
        for _ in 0..n {
            acc = acc + isotropic_direction(&mut rng);
        }
        let mean = acc / n as f64;
        assert!(mean.norm() < 0.02, "mean direction {mean}");
    }

    #[test]
    fn cosine_law_points_down_with_cos2_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 20_000;
        let mut sum_cos = 0.0;
        for _ in 0..n {
            let d = cosine_law_hemisphere(&mut rng);
            assert!(d.z < 0.0, "cosine-law direction must point down");
            assert!((d.norm() - 1.0).abs() < 1e-12);
            sum_cos += -d.z;
        }
        // E[cosθ] with pdf 2cosθ·sinθ is 2/3.
        let mean = sum_cos / n as f64;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean cosθ {mean}");
    }

    #[test]
    fn points_in_box_are_contained() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let b = Aabb::new(Vec3::new(-2.0, 1.0, 0.0), Vec3::new(3.0, 4.0, 0.5));
        for _ in 0..1000 {
            assert!(b.contains(point_in_box(&mut rng, &b)));
        }
    }

    #[test]
    fn top_face_points_have_max_z() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        for _ in 0..100 {
            let p = point_on_top_face(&mut rng, &b);
            assert_eq!(p.z, 3.0);
            assert!(b.contains(p));
        }
    }

    #[test]
    fn degenerate_box_sampling() {
        // Zero-thickness box (a plane) must not panic.
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 0.0));
        let p = point_in_box(&mut rng, &b);
        assert_eq!(p.z, 0.0);
    }
}
