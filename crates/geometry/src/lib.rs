//! 3-D geometry for particle tracing through FinFET memory layouts.
//!
//! The array-level Monte Carlo of the paper (Section 5.1, step 1) generates
//! a random particle with a random direction and position, then finds the
//! struck fins "by a simple 3-D analysis considering the 3-D layout of
//! [the] SRAM array and the position of Fins/transistors inside the layout".
//! This crate provides that analysis:
//!
//! * [`Vec3`] / [`Ray`] — minimal 3-D vector algebra (lengths in metres).
//! * [`Aabb`] — axis-aligned boxes with the slab-method ray intersection;
//!   fins, cells and the array bounding volume are all AABBs.
//! * [`sampling`] — isotropic and cosine-law random directions, random
//!   points on boxes and rectangles.
//! * [`trace`] — chord extraction: given a ray and a collection of boxes,
//!   the ordered list of (box index, entry, exit, chord length) crossings.
//!
//! # Examples
//!
//! ```
//! use finrad_geometry::{Aabb, Ray, Vec3};
//!
//! let fin = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(8e-9, 20e-9, 30e-9));
//! let ray = Ray::new(Vec3::new(-1e-8, 1e-8, 1.5e-8), Vec3::new(1.0, 0.0, 0.0));
//! let hit = fin.intersect(&ray).expect("ray crosses the fin");
//! assert!((hit.chord_length() - 8e-9).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod sampling;
pub mod trace;

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-D vector. Coordinates are metres when used as a position.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm, avoiding the square root.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector has (near-)zero length.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        assert!(n > 1.0e-300, "cannot normalize a zero-length vector");
        self / n
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        Self::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        Self::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Whether all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, k: f64) -> Self {
        Self::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn div(self, k: f64) -> Self {
        Self::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A half-infinite ray: origin plus unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ray {
    origin: Vec3,
    direction: Vec3,
}

impl Ray {
    /// Creates a ray; the direction is normalized.
    ///
    /// # Panics
    ///
    /// Panics if `direction` has (near-)zero length or is non-finite.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        assert!(
            origin.is_finite() && direction.is_finite(),
            "non-finite ray"
        );
        Self {
            origin,
            direction: direction.normalized(),
        }
    }

    /// Ray origin.
    #[inline]
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Unit direction.
    #[inline]
    pub fn direction(&self) -> Vec3 {
        self.direction
    }

    /// Point at parameter `t` (metres along the ray).
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }
}

/// Parametric interval over which a ray is inside a box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayHit {
    /// Entry parameter (metres along the ray; clamped to ≥ 0).
    pub t_enter: f64,
    /// Exit parameter.
    pub t_exit: f64,
}

impl RayHit {
    /// Length of the chord the ray cuts through the box, in metres.
    #[inline]
    pub fn chord_length(&self) -> f64 {
        (self.t_exit - self.t_enter).max(0.0)
    }
}

/// An axis-aligned bounding box.
///
/// Fins, gates, cells and the array envelope are all axis-aligned in a
/// standard-cell SRAM layout, so AABBs are an exact representation, not an
/// approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        assert!(a.is_finite() && b.is_finite(), "non-finite box corners");
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box from a minimum corner and (non-negative) dimensions.
    pub fn from_min_size(min: Vec3, size: Vec3) -> Self {
        assert!(
            size.x >= 0.0 && size.y >= 0.0 && size.z >= 0.0,
            "box dimensions must be non-negative"
        );
        Self::new(min, min + size)
    }

    /// Minimum corner.
    #[inline]
    pub fn min_corner(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max_corner(&self) -> Vec3 {
        self.max
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box dimensions.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume in cubic metres.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Translates the box by `offset`.
    pub fn translated(&self, offset: Vec3) -> Aabb {
        Aabb {
            min: self.min + offset,
            max: self.max + offset,
        }
    }

    /// Slab-method ray/box intersection.
    ///
    /// Returns the parametric interval during which the ray is inside the
    /// box, or `None` if it misses. The entry parameter is clamped to zero
    /// so that rays starting inside the box report the chord from the origin
    /// to the exit face.
    pub fn intersect(&self, ray: &Ray) -> Option<RayHit> {
        let o = ray.origin();
        let d = ray.direction();
        let mut t_lo = 0.0f64;
        let mut t_hi = f64::INFINITY;

        for axis in 0..3 {
            let (omin, omax, oo, dd) = match axis {
                0 => (self.min.x, self.max.x, o.x, d.x),
                1 => (self.min.y, self.max.y, o.y, d.y),
                _ => (self.min.z, self.max.z, o.z, d.z),
            };
            if dd.abs() < 1.0e-300 {
                // Ray parallel to this slab: must already be inside it.
                if oo < omin || oo > omax {
                    return None;
                }
            } else {
                let inv = 1.0 / dd;
                let (mut t1, mut t2) = ((omin - oo) * inv, (omax - oo) * inv);
                if t1 > t2 {
                    std::mem::swap(&mut t1, &mut t2);
                }
                t_lo = t_lo.max(t1);
                t_hi = t_hi.min(t2);
                if t_lo > t_hi {
                    return None;
                }
            }
        }
        if t_hi <= 0.0 {
            return None; // Box entirely behind the origin.
        }
        Some(RayHit {
            t_enter: t_lo,
            t_exit: t_hi,
        })
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!((a.dot(b) - (-1.0f64 + 1.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn cross_product_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        assert_eq!(
            Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(0.0, 0.0, 1.0)
        );
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-14);
        assert!((v.x - 0.6).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn axis_aligned_crossing_chord() {
        let hit = unit_box()
            .intersect(&Ray::new(
                Vec3::new(-1.0, 0.5, 0.5),
                Vec3::new(1.0, 0.0, 0.0),
            ))
            .unwrap();
        assert!((hit.t_enter - 1.0).abs() < 1e-14);
        assert!((hit.t_exit - 2.0).abs() < 1e-14);
        assert!((hit.chord_length() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn diagonal_chord_length() {
        // Corner-to-corner diagonal of the unit cube has length sqrt(3).
        let dir = Vec3::new(1.0, 1.0, 1.0);
        let hit = unit_box()
            .intersect(&Ray::new(Vec3::new(-0.5, -0.5, -0.5), dir))
            .unwrap();
        assert!((hit.chord_length() - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn miss_returns_none() {
        assert!(unit_box()
            .intersect(&Ray::new(
                Vec3::new(-1.0, 2.0, 0.5),
                Vec3::new(1.0, 0.0, 0.0)
            ))
            .is_none());
        // Pointing away.
        assert!(unit_box()
            .intersect(&Ray::new(
                Vec3::new(-1.0, 0.5, 0.5),
                Vec3::new(-1.0, 0.0, 0.0)
            ))
            .is_none());
    }

    #[test]
    fn ray_starting_inside_clamps_entry() {
        let hit = unit_box()
            .intersect(&Ray::new(
                Vec3::new(0.25, 0.5, 0.5),
                Vec3::new(1.0, 0.0, 0.0),
            ))
            .unwrap();
        assert_eq!(hit.t_enter, 0.0);
        assert!((hit.chord_length() - 0.75).abs() < 1e-14);
    }

    #[test]
    fn parallel_ray_inside_slab() {
        // Parallel to x slabs at y=0.5,z=0.5: crosses full cube in x.
        let hit = unit_box()
            .intersect(&Ray::new(
                Vec3::new(0.5, 0.5, -3.0),
                Vec3::new(0.0, 0.0, 1.0),
            ))
            .unwrap();
        assert!((hit.chord_length() - 1.0).abs() < 1e-14);
        // Parallel but outside the slab: miss.
        assert!(unit_box()
            .intersect(&Ray::new(
                Vec3::new(1.5, 0.5, -3.0),
                Vec3::new(0.0, 0.0, 1.0)
            ))
            .is_none());
    }

    #[test]
    fn grazing_corner() {
        // Ray along an edge of the box still reports a (degenerate) hit.
        let hit = unit_box().intersect(&Ray::new(
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 0.0, 1.0),
        ));
        assert!(hit.is_some());
    }

    #[test]
    fn box_constructors_and_queries() {
        let b = Aabb::new(Vec3::new(2.0, 3.0, 4.0), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.min_corner(), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.max_corner(), Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.size(), Vec3::new(3.0, 2.0, 4.0));
        assert!((b.volume() - 24.0).abs() < 1e-12);
        assert!(b.contains(b.center()));
        assert!(!b.contains(Vec3::new(5.0, 0.0, 0.0)));

        let fs = Aabb::from_min_size(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(fs, unit_box());
    }

    #[test]
    fn union_and_translate() {
        let a = unit_box();
        let b = a.translated(Vec3::new(2.0, 0.0, 0.0));
        let u = a.union(&b);
        assert_eq!(u.min_corner(), Vec3::ZERO);
        assert_eq!(u.max_corner(), Vec3::new(3.0, 1.0, 1.0));
    }

    #[test]
    fn nanometer_scale_fin_intersection() {
        // The real use case: an 8 nm x 20 nm x 30 nm fin.
        let fin = Aabb::from_min_size(Vec3::ZERO, Vec3::new(8e-9, 20e-9, 30e-9));
        let ray = Ray::new(Vec3::new(4e-9, 10e-9, 1e-6), Vec3::new(0.0, 0.0, -1.0));
        let hit = fin.intersect(&ray).unwrap();
        assert!((hit.chord_length() - 30e-9).abs() < 1e-18);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use finrad_numerics::rng::{Rng, Xoshiro256pp};

    fn rand_dir(rng: &mut Xoshiro256pp) -> Vec3 {
        loop {
            let v = Vec3::new(
                rng.gen_range(-1.0..=1.0),
                rng.gen_range(-1.0..=1.0),
                rng.gen_range(-1.0..=1.0),
            );
            if v.norm() > 1e-3 {
                return v;
            }
        }
    }

    #[test]
    fn chord_bounded_by_diagonal() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC0DE);
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        for _ in 0..500 {
            let o = Vec3::new(
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
            );
            let ray = Ray::new(o, rand_dir(&mut rng));
            if let Some(hit) = b.intersect(&ray) {
                assert!(hit.t_exit >= hit.t_enter);
                assert!(hit.t_enter >= 0.0);
                assert!(hit.chord_length() <= b.size().norm() + 1e-9);
            }
        }
    }

    #[test]
    fn hit_points_lie_on_boundary_or_origin() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xB0A);
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        for _ in 0..500 {
            let o = Vec3::new(
                rng.gen_range(-5.0..-1.5),
                rng.gen_range(-0.9..0.9),
                rng.gen_range(-0.9..0.9),
            );
            let ray = Ray::new(o, rand_dir(&mut rng));
            if let Some(hit) = b.intersect(&ray) {
                let eps = 1e-9;
                let big = Aabb::new(
                    b.min_corner() - Vec3::new(eps, eps, eps),
                    b.max_corner() + Vec3::new(eps, eps, eps),
                );
                assert!(big.contains(ray.at(hit.t_enter)));
                assert!(big.contains(ray.at(hit.t_exit)));
            }
        }
    }

    #[test]
    fn containment_implies_hit() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x517E);
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        for _ in 0..500 {
            let p = Vec3::new(
                rng.gen_range(-0.99..0.99),
                rng.gen_range(-0.99..0.99),
                rng.gen_range(-0.99..0.99),
            );
            let ray = Ray::new(p, rand_dir(&mut rng));
            assert!(b.intersect(&ray).is_some());
        }
    }

    #[test]
    fn normalized_ray_direction() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xD1);
        for _ in 0..500 {
            let ray = Ray::new(Vec3::ZERO, rand_dir(&mut rng));
            assert!((ray.direction().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn union_contains_operands() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x0410);
        for _ in 0..500 {
            let (ax, ay, az) = (
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            );
            let (bx, by, bz) = (
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            );
            let a = Aabb::new(
                Vec3::ZERO,
                Vec3::new(ax.abs() + 0.1, ay.abs() + 0.1, az.abs() + 0.1),
            );
            let b = Aabb::new(
                Vec3::new(bx, by, bz),
                Vec3::new(bx + 1.0, by + 1.0, bz + 1.0),
            );
            let u = a.union(&b);
            assert!(u.contains(a.min_corner()) && u.contains(a.max_corner()));
            assert!(u.contains(b.min_corner()) && u.contains(b.max_corner()));
        }
    }
}
