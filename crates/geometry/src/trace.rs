//! Chord extraction: tracing one ray through a collection of boxes.
//!
//! Given the fin boxes of an SRAM array and a particle ray, [`trace_boxes`]
//! returns every crossing ordered by entry parameter. The transport layer
//! then walks these crossings in order, degrading the particle energy and
//! depositing charge fin by fin — exactly the "simple 3-D analysis" of the
//! paper's Section 5.1.

use crate::{Aabb, Ray, RayHit};
use finrad_units::Length;

/// One ray/box crossing, tagged with the index of the box that was hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Index of the box in the traced collection.
    pub index: usize,
    /// Parametric interval of the crossing.
    pub hit: RayHit,
}

impl Crossing {
    /// Chord length through the box, as a typed length.
    pub fn chord(&self) -> Length {
        Length::from_meters(self.hit.chord_length())
    }
}

/// Traces `ray` through `boxes`, returning all crossings sorted by entry
/// parameter (ties broken by box index, so the result is deterministic).
///
/// This is a linear scan: SRAM arrays of the size studied in the paper
/// (9×9 cells ⇒ ≈ 650 fin boxes) are far below the size where a BVH would
/// pay off, and the scan is branch-predictable and allocation-light.
///
/// # Examples
///
/// ```
/// use finrad_geometry::{Aabb, Ray, Vec3};
/// use finrad_geometry::trace::trace_boxes;
///
/// let boxes = vec![
///     Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0)),
///     Aabb::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 1.0)),
/// ];
/// let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
/// let crossings = trace_boxes(&ray, &boxes);
/// assert_eq!(crossings.len(), 2);
/// assert_eq!(crossings[0].index, 0);
/// assert_eq!(crossings[1].index, 1);
/// ```
pub fn trace_boxes(ray: &Ray, boxes: &[Aabb]) -> Vec<Crossing> {
    let mut crossings: Vec<Crossing> = boxes
        .iter()
        .enumerate()
        .filter_map(|(index, b)| {
            b.intersect(ray)
                .and_then(|hit| (hit.chord_length() > 0.0).then_some(Crossing { index, hit }))
        })
        .collect();
    crossings.sort_by(|a, b| {
        a.hit
            .t_enter
            .total_cmp(&b.hit.t_enter)
            .then(a.index.cmp(&b.index))
    });
    crossings
}

/// Total chord length the ray cuts through all boxes.
pub fn total_chord(ray: &Ray, boxes: &[Aabb]) -> Length {
    trace_boxes(ray, boxes).iter().map(Crossing::chord).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn row_of_boxes(n: usize, pitch: f64, size: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                Aabb::from_min_size(
                    Vec3::new(i as f64 * pitch, 0.0, 0.0),
                    Vec3::new(size, 1.0, 1.0),
                )
            })
            .collect()
    }

    #[test]
    fn crossings_sorted_by_entry() {
        let boxes = row_of_boxes(5, 2.0, 1.0);
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let crossings = trace_boxes(&ray, &boxes);
        assert_eq!(crossings.len(), 5);
        for (i, c) in crossings.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!((c.chord().meters() - 1.0).abs() < 1e-12);
        }
        assert!(crossings
            .windows(2)
            .all(|w| w[0].hit.t_enter <= w[1].hit.t_enter));
    }

    #[test]
    fn reverse_ray_reverses_order() {
        let boxes = row_of_boxes(3, 2.0, 1.0);
        let ray = Ray::new(Vec3::new(10.0, 0.5, 0.5), Vec3::new(-1.0, 0.0, 0.0));
        let crossings = trace_boxes(&ray, &boxes);
        let order: Vec<usize> = crossings.iter().map(|c| c.index).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn miss_everything() {
        let boxes = row_of_boxes(4, 2.0, 1.0);
        let ray = Ray::new(Vec3::new(0.0, 5.0, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(trace_boxes(&ray, &boxes).is_empty());
        assert_eq!(total_chord(&ray, &boxes).meters(), 0.0);
    }

    #[test]
    fn partial_hits() {
        let boxes = row_of_boxes(4, 2.0, 1.0);
        // Steep diagonal ray that only clips the first two boxes.
        let ray = Ray::new(Vec3::new(0.5, 0.5, 2.0), Vec3::new(1.0, 0.0, -1.0));
        let crossings = trace_boxes(&ray, &boxes);
        assert!(!crossings.is_empty() && crossings.len() < 4);
    }

    #[test]
    fn total_chord_sums() {
        let boxes = row_of_boxes(3, 3.0, 2.0);
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!((total_chord(&ray, &boxes).meters() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_boxes_both_reported() {
        let boxes = vec![
            Aabb::from_min_size(Vec3::ZERO, Vec3::new(2.0, 1.0, 1.0)),
            Aabb::from_min_size(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0)),
        ];
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let crossings = trace_boxes(&ray, &boxes);
        assert_eq!(crossings.len(), 2);
    }

    #[test]
    fn empty_collection() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!(trace_boxes(&ray, &[]).is_empty());
    }
}
