//! Special functions.
//!
//! Only what the workspace needs: the error function, used by the
//! conditional-expectation straggling treatment (Moyal survival
//! probabilities) and by normal-distribution utilities.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Uses the Maclaurin series for `|x| < 0.5` (machine-accurate there) and
/// the Abramowitz–Stegun 7.1.26 rational approximation elsewhere
/// (|error| < 1.5·10⁻⁷).
///
/// # Examples
///
/// ```
/// use finrad_numerics::special::erf;
///
/// assert!(erf(0.0).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd function
/// assert!(erf(5.0) > 0.999999);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 0.5 {
        // Maclaurin series: erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1) / (n! (2n+1)).
        const TWO_OVER_SQRT_PI: f64 = 1.128_379_167_095_512_6;
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        for n in 1..24 {
            term *= -x2 / n as f64;
            let add = term / (2.0 * n as f64 + 1.0);
            sum += add;
            if add.abs() < 1e-18 * sum.abs() {
                break;
            }
        }
        return TWO_OVER_SQRT_PI * sum;
    }
    // Abramowitz & Stegun 7.1.26.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    1.0 - poly * (-x * x).exp()
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal CDF `Φ(x)`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::special::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let table = [
            (0.0, 0.0),
            (0.1, 0.112_462_916),
            (0.5, 0.520_499_878),
            (1.0, 0.842_700_793),
            (1.5, 0.966_105_146),
            (2.0, 0.995_322_265),
            (3.0, 0.999_977_910),
        ];
        for (x, v) in table {
            assert!((erf(x) - v).abs() < 2e-7, "erf({x}) = {} vs {v}", erf(x));
        }
    }

    #[test]
    fn small_argument_linear_regime() {
        // erf(x) ~ 2x/sqrt(pi) for tiny x (the tail-probability regime).
        for x in [1e-12, 1e-8, 1e-4] {
            let expect = 2.0 * x / std::f64::consts::PI.sqrt();
            assert!((erf(x) - expect).abs() / expect < 1e-6, "erf({x})");
        }
    }

    #[test]
    fn oddness_and_limits() {
        for x in [0.2, 0.7, 1.3, 2.5] {
            assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
        assert!(erf(10.0) <= 1.0);
        assert!(erfc(10.0) >= 0.0);
        assert!((erfc(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn monotone() {
        let mut prev = -1.0;
        for i in 0..100 {
            let v = erf(-3.0 + i as f64 * 0.06);
            assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.3, 1.0, 2.2] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        }
    }
}
