//! Bracketed root finding: bisection and the superlinear ITP method.
//!
//! Used for critical-charge extraction in `finrad-sram`: the injected pulse
//! charge at which the cell state flips is the root of
//! `f(q) = flip_margin(q)`, a monotone but non-smooth function. Every
//! objective evaluation there is a full transient simulation, so the two
//! design rules of this module are
//!
//! 1. **never waste an evaluation** — endpoint values the caller already
//!    computed are threaded in through the `*_from` variants instead of
//!    being recomputed, and
//! 2. **never trust a NaN** — a non-finite objective value is a typed
//!    [`NumericsError::NonFiniteEvaluation`] error, not a silent steering
//!    input (NaN compares false against everything, so the old code treated
//!    it as a sign change and "converged" to garbage).
//!
//! [`itp`] implements the ITP method (Oliveira & Takahashi, ACM TOMS 2021):
//! superlinear on smooth functions, while guaranteeing no more iterations
//! than bisection plus a small constant — the right trade for flip-margin
//! curves that are step-like near the threshold.

use crate::NumericsError;

/// Result of a bracketed root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Approximate root location.
    pub x: f64,
    /// Residual `f(x)` at the returned point (0.0 for exact endpoint hits;
    /// for interval-converged searches, the value at the last evaluated
    /// point inside the final bracket).
    pub residual: f64,
    /// Number of objective evaluations performed *by the search* (endpoint
    /// values supplied by the caller are not counted).
    pub iterations: usize,
}

/// A bracket endpoint with its already-computed objective value.
///
/// Threading known values through saves one objective call per endpoint —
/// a full transient simulation each in the critical-charge use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Endpoint {
    /// Abscissa.
    pub x: f64,
    /// Objective value `f(x)`.
    pub fx: f64,
}

impl Endpoint {
    /// Bundles an abscissa with its known objective value.
    pub fn new(x: f64, fx: f64) -> Self {
        Self { x, fx }
    }
}

/// Rejects non-finite objective values with a typed error.
fn finite(x: f64, fx: f64) -> Result<f64, NumericsError> {
    if fx.is_finite() {
        Ok(fx)
    } else {
        Err(NumericsError::NonFiniteEvaluation { x, fx })
    }
}

/// Validates a bracket: finite endpoint values with opposite signs.
/// Returns `Ok(Some(root))` for an exact zero at either endpoint.
fn check_bracket(a: Endpoint, b: Endpoint) -> Result<Option<Root>, NumericsError> {
    finite(a.x, a.fx)?;
    finite(b.x, b.fx)?;
    // Exact-zero endpoint hits are meaningful sentinels, not comparisons.
    // finrad-lint: allow(float-discipline)
    if a.fx == 0.0 {
        return Ok(Some(Root {
            x: a.x,
            residual: 0.0,
            iterations: 0,
        }));
    }
    // finrad-lint: allow(float-discipline)
    if b.fx == 0.0 {
        return Ok(Some(Root {
            x: b.x,
            residual: 0.0,
            iterations: 0,
        }));
    }
    if a.fx.signum() == b.fx.signum() {
        return Err(NumericsError::RootNotBracketed { lo: a.x, hi: b.x });
    }
    Ok(None)
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// The function values at the endpoints must have opposite signs (a value of
/// exactly zero at either endpoint is returned immediately).
///
/// # Errors
///
/// * [`NumericsError::RootNotBracketed`] if `f(lo)` and `f(hi)` have the
///   same sign.
/// * [`NumericsError::NonFiniteEvaluation`] if any evaluation of `f`
///   returns NaN or ±∞.
///
/// # Examples
///
/// ```
/// use finrad_numerics::roots::bisect;
///
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root.x - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    xtol: f64,
    max_iter: usize,
) -> Result<Root, NumericsError> {
    let fa = f(lo);
    let fb = f(hi);
    bisect_from(
        f,
        Endpoint::new(lo, fa),
        Endpoint::new(hi, fb),
        xtol,
        max_iter,
    )
}

/// Like [`bisect`], but with already-known endpoint values threaded in so
/// they are not recomputed.
///
/// # Errors
///
/// Same as [`bisect`] (the supplied endpoint values are validated too).
pub fn bisect_from(
    mut f: impl FnMut(f64) -> f64,
    a: Endpoint,
    b: Endpoint,
    xtol: f64,
    max_iter: usize,
) -> Result<Root, NumericsError> {
    if let Some(root) = check_bracket(a, b)? {
        return Ok(root);
    }
    let (mut a, mut b) = (a, b);
    let mut iterations = 0;
    let mut last = a;
    while (b.x - a.x).abs() > xtol && iterations < max_iter {
        let mid = 0.5 * (a.x + b.x);
        let fm = finite(mid, f(mid))?;
        iterations += 1;
        last = Endpoint::new(mid, fm);
        // finrad-lint: allow(float-discipline)
        if fm == 0.0 {
            return Ok(Root {
                x: mid,
                residual: 0.0,
                iterations,
            });
        }
        if fm.signum() == a.fx.signum() {
            a = last;
        } else {
            b = last;
        }
    }
    Ok(Root {
        x: 0.5 * (a.x + b.x),
        residual: last.fx,
        iterations,
    })
}

/// Expands `[lo, hi]` geometrically upward until `f` changes sign, then
/// bisects. Useful when only a lower bound on the root is known (e.g.
/// critical charge searches that start from an optimistic guess).
///
/// Every objective value computed during expansion is reused by the
/// refinement stage; no endpoint is evaluated twice.
///
/// # Errors
///
/// * [`NumericsError::RootNotBracketed`] if no sign change is found within
///   `max_expansions` doublings of the interval.
/// * [`NumericsError::NonFiniteEvaluation`] if any evaluation of `f`
///   returns NaN or ±∞.
pub fn bisect_with_expansion(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    xtol: f64,
    max_iter: usize,
    max_expansions: usize,
) -> Result<Root, NumericsError> {
    let flo = finite(lo, f(lo))?;
    let mut a = Endpoint::new(lo, flo);
    let mut b = Endpoint::new(hi, finite(hi, f(hi))?);
    let mut expansions = 0;
    while b.fx.signum() == a.fx.signum() {
        expansions += 1;
        if expansions > max_expansions {
            return Err(NumericsError::RootNotBracketed { lo, hi: b.x });
        }
        // The rejected upper endpoint has the lower endpoint's sign, so it
        // becomes the new lower endpoint: the eventual bracket is the last
        // scan step, not the whole scanned range, and every scan
        // evaluation is reused.
        let next = lo + (b.x - lo) * 2.0;
        a = b;
        b = Endpoint::new(next, finite(next, f(next))?);
    }
    bisect_from(f, a, b, xtol, max_iter)
}

/// Finds a root of `f` on `[lo, hi]` with the ITP method: interpolate
/// (regula falsi), truncate toward the midpoint, then project onto the
/// minmax interval that preserves bisection's worst-case guarantee.
///
/// Superlinear on smooth functions; never more than
/// `ceil(log2((hi-lo)/(2·xtol))) + 1` evaluations — one more than
/// bisection — on adversarial (e.g. step) functions.
///
/// # Errors
///
/// Same as [`bisect`].
///
/// # Examples
///
/// ```
/// use finrad_numerics::roots::itp;
///
/// let root = itp(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root.x - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
pub fn itp(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    xtol: f64,
    max_iter: usize,
) -> Result<Root, NumericsError> {
    let fa = f(lo);
    let fb = f(hi);
    itp_from(
        f,
        Endpoint::new(lo, fa),
        Endpoint::new(hi, fb),
        xtol,
        max_iter,
    )
}

/// Like [`itp`], but with already-known endpoint values threaded in so they
/// are not recomputed.
///
/// # Errors
///
/// Same as [`bisect`] (the supplied endpoint values are validated too).
pub fn itp_from(
    mut f: impl FnMut(f64) -> f64,
    a: Endpoint,
    b: Endpoint,
    xtol: f64,
    max_iter: usize,
) -> Result<Root, NumericsError> {
    if let Some(root) = check_bracket(a, b)? {
        return Ok(root);
    }
    // Work with a < b; remember the orientation for the sign updates.
    let (mut a, mut b) = if a.x <= b.x { (a, b) } else { (b, a) };
    let eps = (0.5 * xtol).max(f64::EPSILON * b.x.abs().max(a.x.abs()).max(1.0));

    // ITP tuning constants (the paper's recommendations): κ₁ scales the
    // truncation radius, κ₂ = 2 keeps the interpolant superlinear, n₀ = 1
    // extra bisection-equivalent iteration of slack.
    let kappa1 = 0.2 / (b.x - a.x).max(f64::MIN_POSITIVE);
    let n0 = 1i32;
    let n_half = ((b.x - a.x) / (2.0 * eps)).log2().ceil().max(0.0) as i32;
    let n_max = n_half + n0;

    let mut iterations = 0usize;
    let mut last = a;
    for j in 0..max_iter {
        if (b.x - a.x) <= 2.0 * eps {
            break;
        }
        let x_half = 0.5 * (a.x + b.x);
        let r = (eps * 2f64.powi((n_max - j as i32).max(0)) - 0.5 * (b.x - a.x)).max(0.0);
        let delta = kappa1 * (b.x - a.x) * (b.x - a.x);

        // Interpolation: regula falsi point (denominator nonzero — the
        // bracket guarantees opposite signs).
        let x_f = (b.fx * a.x - a.fx * b.x) / (b.fx - a.fx);
        // Truncation: move toward the midpoint by at most delta.
        let sigma = (x_half - x_f).signum();
        let x_t = if delta <= (x_half - x_f).abs() {
            x_f + sigma * delta
        } else {
            x_half
        };
        // Projection: stay within the minmax radius of the midpoint.
        let x_itp = if (x_t - x_half).abs() <= r {
            x_t
        } else {
            x_half - sigma * r
        };
        // Clamp into the open bracket so pathological rounding can't stall.
        let x_itp = x_itp.clamp(a.x + 0.25 * eps, b.x - 0.25 * eps);

        let fx = finite(x_itp, f(x_itp))?;
        iterations += 1;
        last = Endpoint::new(x_itp, fx);
        // finrad-lint: allow(float-discipline)
        if fx == 0.0 {
            return Ok(Root {
                x: x_itp,
                residual: 0.0,
                iterations,
            });
        }
        if fx.signum() == a.fx.signum() {
            a = last;
        } else {
            b = last;
        }
    }
    Ok(Root {
        x: 0.5 * (a.x + b.x),
        residual: last.fx,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(r.iterations > 10);
    }

    #[test]
    fn exact_zero_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn unbracketed_is_error() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(NumericsError::RootNotBracketed { .. })
        ));
    }

    #[test]
    fn step_function_root() {
        // Non-smooth monotone function, like a flip/no-flip indicator.
        let r = bisect(|x| if x < 0.37 { -1.0 } else { 1.0 }, 0.0, 1.0, 1e-9, 100).unwrap();
        assert!((r.x - 0.37).abs() < 1e-8);
    }

    #[test]
    fn expansion_finds_far_root() {
        let r = bisect_with_expansion(|x| x - 1000.0, 0.0, 1.0, 1e-9, 200, 30).unwrap();
        assert!((r.x - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn expansion_gives_up() {
        assert!(matches!(
            bisect_with_expansion(|_| 1.0, 0.0, 1.0, 1e-9, 100, 5),
            Err(NumericsError::RootNotBracketed { .. })
        ));
    }

    #[test]
    fn nan_midpoint_is_typed_error_not_convergence() {
        // Bracket is valid but the objective NaNs inside it: the old code
        // treated NaN as a sign change and silently bisected to garbage.
        let res = bisect(
            |x| {
                if (0.4..0.6).contains(&x) {
                    f64::NAN
                } else {
                    x - 0.55
                }
            },
            0.0,
            1.0,
            1e-12,
            100,
        );
        match res {
            Err(NumericsError::NonFiniteEvaluation { x, fx }) => {
                assert!((0.4..0.6).contains(&x));
                assert!(fx.is_nan());
            }
            other => panic!("expected NonFiniteEvaluation, got {other:?}"),
        }
    }

    #[test]
    fn nan_endpoint_is_typed_error_everywhere() {
        let nan_at = |bad: f64| move |x: f64| if x == bad { f64::NAN } else { x - 0.5 };
        assert!(matches!(
            bisect(nan_at(0.0), 0.0, 1.0, 1e-12, 100),
            Err(NumericsError::NonFiniteEvaluation { .. })
        ));
        assert!(matches!(
            itp(nan_at(1.0), 0.0, 1.0, 1e-12, 100),
            Err(NumericsError::NonFiniteEvaluation { .. })
        ));
        assert!(matches!(
            bisect_with_expansion(|_| f64::INFINITY, 0.0, 1.0, 1e-12, 100, 5),
            Err(NumericsError::NonFiniteEvaluation { .. })
        ));
        // And threaded-in endpoint values are validated too.
        assert!(matches!(
            bisect_from(
                |x| x,
                Endpoint::new(0.0, f64::NAN),
                Endpoint::new(1.0, 1.0),
                1e-12,
                100
            ),
            Err(NumericsError::NonFiniteEvaluation { .. })
        ));
    }

    #[test]
    fn threaded_endpoints_are_not_reevaluated() {
        let mut calls = 0usize;
        let r = bisect_from(
            |x| {
                calls += 1;
                assert!(x > 0.0 && x < 1.0, "endpoint re-evaluated at {x}");
                x - 0.3
            },
            Endpoint::new(0.0, -0.3),
            Endpoint::new(1.0, 0.7),
            1e-9,
            100,
        )
        .unwrap();
        assert!((r.x - 0.3).abs() < 1e-8);
        assert_eq!(calls, r.iterations);
    }

    #[test]
    fn expansion_reuses_every_scan_evaluation() {
        // Count evaluations per abscissa: the expansion scan plus the
        // refinement must never evaluate the same point twice.
        let mut seen: Vec<f64> = Vec::new();
        let r = bisect_with_expansion(
            |x| {
                assert!(!seen.iter().any(|&s| s == x), "duplicate evaluation at {x}");
                seen.push(x);
                x - 37.0
            },
            0.0,
            1.0,
            1e-9,
            200,
            30,
        )
        .unwrap();
        assert!((r.x - 37.0).abs() < 1e-6);
    }

    #[test]
    fn itp_matches_bisection_accuracy() {
        let r = itp(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn itp_is_superlinear_on_smooth_functions() {
        let xtol = 1e-12;
        let b = bisect(|x| x * x * x - 2.0 * x - 5.0, 1.0, 3.0, xtol, 200).unwrap();
        let i = itp(|x| x * x * x - 2.0 * x - 5.0, 1.0, 3.0, xtol, 200).unwrap();
        assert!((i.x - b.x).abs() < 1e-10);
        assert!(
            i.iterations * 2 < b.iterations,
            "ITP {} evals vs bisection {}",
            i.iterations,
            b.iterations
        );
    }

    #[test]
    fn itp_never_much_worse_than_bisection_on_steps() {
        // Worst case for interpolation: a step function. ITP must stay
        // within the minmax bound (bisection count + n0).
        let xtol = 1e-9;
        let n_bisect = ((1.0f64 / xtol).log2()).ceil() as usize;
        let r = itp(|x| if x < 0.37 { -1.0 } else { 1.0 }, 0.0, 1.0, xtol, 200).unwrap();
        assert!((r.x - 0.37).abs() < xtol);
        assert!(
            r.iterations <= n_bisect + 2,
            "ITP used {} evals, bisection bound {}",
            r.iterations,
            n_bisect
        );
    }

    #[test]
    fn itp_property_non_smooth_monotone_steps() {
        // Property test: random monotone step functions (the flip-margin
        // shape) with random thresholds, plateau magnitudes and
        // orientations must all converge to the threshold within xtol and
        // within the minmax evaluation bound.
        let mut state = 0x5EED_CAFE_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let xtol = 1e-8;
        for trial in 0..200 {
            let lo = next() * 10.0 - 5.0;
            let hi = lo + 0.1 + next() * 10.0;
            let thresh = lo + (0.05 + 0.9 * next()) * (hi - lo);
            let mag_lo = 0.01 + next() * 100.0;
            let mag_hi = 0.01 + next() * 100.0;
            let rising = next() < 0.5;
            let f = |x: f64| {
                if x < thresh {
                    if rising {
                        -mag_lo
                    } else {
                        mag_lo
                    }
                } else if rising {
                    mag_hi
                } else {
                    -mag_hi
                }
            };
            let n_bisect = (((hi - lo) / xtol).log2()).ceil() as usize;
            let r = itp(f, lo, hi, xtol, 500).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert!(
                (r.x - thresh).abs() <= xtol,
                "trial {trial}: root {} vs threshold {thresh} (tol {xtol})",
                r.x
            );
            assert!(
                r.iterations <= n_bisect + 2,
                "trial {trial}: {} evals vs bound {}",
                r.iterations,
                n_bisect + 2
            );
        }
    }

    #[test]
    fn itp_accepts_reversed_endpoint_order() {
        let r = itp_from(
            |x| x - 0.25,
            Endpoint::new(1.0, 0.75),
            Endpoint::new(0.0, -0.25),
            1e-10,
            100,
        )
        .unwrap();
        assert!((r.x - 0.25).abs() < 1e-9);
    }
}
