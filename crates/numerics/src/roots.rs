//! Bisection root finding.
//!
//! Used for critical-charge extraction in `finrad-sram`: the injected pulse
//! charge at which the cell state flips is the root of
//! `f(q) = flip_margin(q)`, a monotone but non-smooth function for which
//! bisection is the robust choice.

use crate::NumericsError;

/// Result of a bisection search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Approximate root location.
    pub x: f64,
    /// Residual `f(x)` at the returned point.
    pub residual: f64,
    /// Number of bisection iterations performed.
    pub iterations: usize,
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// The function values at the endpoints must have opposite signs (a value of
/// exactly zero at either endpoint is returned immediately).
///
/// # Errors
///
/// Returns [`NumericsError::RootNotBracketed`] if `f(lo)` and `f(hi)` have
/// the same sign.
///
/// # Examples
///
/// ```
/// use finrad_numerics::roots::bisect;
///
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root.x - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    xtol: f64,
    max_iter: usize,
) -> Result<Root, NumericsError> {
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let fb = f(b);
    // Exact-zero endpoint hits are meaningful sentinels, not comparisons.
    // finrad-lint: allow(float-discipline)
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    // finrad-lint: allow(float-discipline)
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::RootNotBracketed { lo, hi });
    }
    let mut iterations = 0;
    while (b - a).abs() > xtol && iterations < max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        iterations += 1;
        // finrad-lint: allow(float-discipline)
        if fm == 0.0 {
            return Ok(Root {
                x: mid,
                residual: 0.0,
                iterations,
            });
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    let x = 0.5 * (a + b);
    Ok(Root {
        x,
        residual: f(x),
        iterations,
    })
}

/// Expands `[lo, hi]` geometrically upward until `f` changes sign, then
/// bisects. Useful when only a lower bound on the root is known (e.g.
/// critical charge searches that start from an optimistic guess).
///
/// # Errors
///
/// Returns [`NumericsError::RootNotBracketed`] if no sign change is found
/// within `max_expansions` doublings of the interval.
pub fn bisect_with_expansion(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    mut hi: f64,
    xtol: f64,
    max_iter: usize,
    max_expansions: usize,
) -> Result<Root, NumericsError> {
    let flo = f(lo);
    let mut expansions = 0;
    while f(hi).signum() == flo.signum() {
        expansions += 1;
        if expansions > max_expansions {
            return Err(NumericsError::RootNotBracketed { lo, hi });
        }
        hi = lo + (hi - lo) * 2.0;
    }
    bisect(f, lo, hi, xtol, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(r.iterations > 10);
    }

    #[test]
    fn exact_zero_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn unbracketed_is_error() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(NumericsError::RootNotBracketed { .. })
        ));
    }

    #[test]
    fn step_function_root() {
        // Non-smooth monotone function, like a flip/no-flip indicator.
        let r = bisect(|x| if x < 0.37 { -1.0 } else { 1.0 }, 0.0, 1.0, 1e-9, 100).unwrap();
        assert!((r.x - 0.37).abs() < 1e-8);
    }

    #[test]
    fn expansion_finds_far_root() {
        let r = bisect_with_expansion(|x| x - 1000.0, 0.0, 1.0, 1e-9, 200, 30).unwrap();
        assert!((r.x - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn expansion_gives_up() {
        assert!(matches!(
            bisect_with_expansion(|_| 1.0, 0.0, 1.0, 1e-9, 100, 5),
            Err(NumericsError::RootNotBracketed { .. })
        ));
    }
}
