//! Dense matrices and LU factorization with partial pivoting.
//!
//! The MNA systems assembled by `finrad-spice` are small (≈ 10 unknowns for
//! a 6T SRAM cell), so a dense O(n³) factorization is the right tool; no
//! sparse machinery is warranted.

use crate::NumericsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 3.0;
/// assert_eq!(a[(0, 0)], 2.0);
/// assert_eq!(a.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericsError> {
        if data.len() != rows * cols {
            return Err(NumericsError::Dimension {
                expected: format!("{} elements", rows * cols),
                got: format!("{}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to entry `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, value: f64) {
        self[(r, c)] += value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::Dimension {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Maximum absolute entry (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::{Matrix, LuFactors};
///
/// let a = Matrix::from_rows(2, 2, vec![0.0, 2.0, 1.0, 1.0])?;
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
}

/// Pivots smaller than this (relative to the largest entry of their column)
/// are treated as exact zeros.
const PIVOT_EPS: f64 = 1.0e-300;

impl LuFactors {
    /// Factors a square matrix in place.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::Dimension`] if the matrix is not square.
    /// * [`NumericsError::SingularMatrix`] if a pivot underflows.
    pub fn factor(mut a: Matrix) -> Result<Self, NumericsError> {
        if a.rows != a.cols {
            return Err(NumericsError::Dimension {
                expected: "square matrix".to_owned(),
                got: format!("{}x{}", a.rows, a.cols),
            });
        }
        let n = a.rows;
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = a[(k, k)].abs();
            for r in (k + 1)..n {
                let v = a[(r, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = r;
                }
            }
            if pmax < PIVOT_EPS || !pmax.is_finite() {
                return Err(NumericsError::SingularMatrix { column: k });
            }
            if p != k {
                perm.swap(p, k);
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(p, c)];
                    a[(p, c)] = tmp;
                }
            }
            // Eliminate below the pivot.
            let pivot = a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / pivot;
                a[(r, k)] = factor;
                // Exact-zero skip exploits structural sparsity; a tolerance would
                // change the factorization. finrad-lint: allow(float-discipline)
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let akc = a[(k, c)];
                        a[(r, c)] -= factor * akc;
                    }
                }
            }
        }
        Ok(Self { lu: a, perm })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(NumericsError::Dimension {
                expected: format!("rhs of length {n}"),
                got: format!("{}", b.len()),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        // Backward substitution with U.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Dimension of the factored system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates factorization and dimension errors from [`LuFactors`].
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::{solve, Matrix};
///
/// let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0])?;
/// let x = solve(a, &[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
pub fn solve(a: Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    LuFactors::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = solve(a, &b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // a11 = 0 forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        match LuFactors::factor(a) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(a),
            Err(NumericsError::Dimension { .. })
        ));
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random fill (LCG) to avoid rand dependency here.
        let n = 12;
        let mut state = 0x2545F491_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += 4.0; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(a.clone(), &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn reuse_factors_for_multiple_rhs() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 1.0, 0.0, 2.0]).unwrap();
        let lu = LuFactors::factor(a.clone()).unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [3.0, -1.0, 2.0]] {
            let x = lu.solve(&b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_at(0, 0, 1.5);
        a.add_at(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn mul_vec_dimension_check() {
        let a = Matrix::zeros(2, 3);
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "matrix index out of bounds")]
    fn out_of_bounds_index_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
